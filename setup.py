"""Setuptools entry point (legacy editable installs in offline envs)."""

from setuptools import setup

setup()
