"""Ablation — the page-response race under different radio postures.

Table II's baseline is a scan-phase coin flip.  This ablation sweeps
the attacker's page-scan interval (the only knob a spoofing responder
controls) and shows (a) a stock attacker stays near 50%, (b) an
aggressive scanner biases the race but still cannot guarantee it, and
(c) only page blocking reaches 100% — which is the paper's argument
for the attack's necessity.

Every trial runs through :func:`run_baseline_trial`, so the win rate
is also recoverable from the process-wide metrics registry
(``attack.race_wins / attack.race_attempts``) — asserted below against
the trial-counted sweep.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.attacks.baseline import run_baseline_trial
from repro.devices.catalog import LG_VELVET
from repro.obs.metrics import get_global_registry

from conftest import TRIALS


def race_with_interval(interval_slots: int, seed: int) -> bool:
    trial = run_baseline_trial(
        LG_VELVET, seed=seed, attacker_scan_interval_slots=interval_slots
    )
    return trial.attacker_won


def run_sweep(trials: int) -> List[Tuple[int, float]]:
    results = []
    for interval in (0x0800, 0x0400, 0x0100, 0x0040):  # 1.28s … 40ms
        wins = sum(
            race_with_interval(interval, seed=3000 + interval + t)
            for t in range(trials)
        )
        results.append((interval, wins / trials))
    return results


def test_ablation_page_race(benchmark, save_artifact):
    trials = max(TRIALS // 2, 50)  # below ~50 the binomial noise drowns the shape
    registry = get_global_registry()
    attempts_before = registry.counter_value("attack.race_attempts")
    wins_before = registry.counter_value("attack.race_wins")
    sweep = benchmark.pedantic(run_sweep, args=(trials,), rounds=1, iterations=1)
    lines = [
        f"Page race vs attacker scan interval ({trials} trials each)",
        "",
        f"{'scan interval':>15} {'attacker win rate':>19}",
    ]
    for interval, rate in sweep:
        lines.append(f"{interval * 0.625:>12.1f} ms {rate:>18.0%}")
    save_artifact("ablation_page_race.txt", "\n".join(lines))

    rates: Dict[int, float] = dict(sweep)
    # Stock posture: a near-fair race (the Table II baseline).
    assert 0.30 <= rates[0x0800] <= 0.70
    # Aggressive scanning biases the race...
    assert rates[0x0040] > rates[0x0800]
    # ...but a moderate advantage still loses a solid share of races —
    # the race remains probabilistic, unlike page blocking.  (The
    # fastest setting may sweep a finite sample, so the guarantee is
    # asserted at the 2x-faster point where losses are statistically
    # certain.)
    assert rates[0x0400] < 1.0

    # The same experiment read back through the metrics registry: the
    # benchmark's pedantic mode runs the sweep exactly once, so the
    # counter deltas must agree with the trial-counted rates.
    attempts = registry.counter_value("attack.race_attempts") - attempts_before
    wins = registry.counter_value("attack.race_wins") - wins_before
    assert attempts == 4 * trials
    assert wins == sum(rate * trials for _, rate in sweep)
