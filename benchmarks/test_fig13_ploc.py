"""Fig. 13 — the PLOC proof-of-concept and its timing envelope.

The PoC holds the attacker host's event processing for a fixed
duration (10 s in the paper) and assumes the victim initiates pairing
inside the window.  This benchmark sweeps the victim's pairing delay
against the hold duration and the link supervision timeout, mapping
when the attack holds and when the PLOC link decays.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast


def run_sweep() -> List[Tuple[float, float, bool]]:
    """(ploc_hold, pairing_delay) → success."""
    outcomes = []
    cases = [
        (10.0, 2.0),
        (10.0, 5.0),
        (10.0, 9.0),
        (10.0, 15.0),  # user pairs *after* the hold expired — still fine
        (5.0, 3.0),
        (20.0, 18.0),
    ]
    for index, (hold, delay) in enumerate(cases):
        world = build_world(WorldConfig(seed=90 + index))
        m, c, a = standard_cast(world)
        attack = PageBlockingAttack(world, a, c, m, ploc_hold_seconds=hold)
        report = attack.run(pairing_delay=delay, run_discovery=False)
        outcomes.append((hold, delay, report.success))
    return outcomes


def run_supervision_cases() -> List[Tuple[float, float, float, bool]]:
    """(supervision_timeout, ploc_hold, pairing_delay) → success.

    With a short supervision timeout the PLOC link only survives if the
    hold (during which the attacker's host answers nothing) ends before
    the link is declared dead — the timing problem the paper works
    around with dummy SDP traffic.
    """
    outcomes = []
    for index, (supervision, hold, delay) in enumerate(
        [(20.0, 10.0, 5.0), (3.0, 10.0, 8.0), (3.0, 2.0, 1.5)]
    ):
        world = build_world(WorldConfig(seed=120 + index))
        m, c, a = standard_cast(world)
        m.controller.supervision_timeout_s = supervision
        a.controller.supervision_timeout_s = supervision
        attack = PageBlockingAttack(world, a, c, m, ploc_hold_seconds=hold)
        report = attack.run(pairing_delay=delay, run_discovery=False)
        outcomes.append((supervision, hold, delay, report.success))
    return outcomes


def test_fig13_ploc_timing(benchmark, save_artifact):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["Fig. 13: PLOC hold vs victim pairing delay", ""]
    lines.append(f"{'hold (s)':>9} {'pairing at (s)':>15} {'MITM success'}")
    for hold, delay, success in sweep:
        lines.append(f"{hold:>9.1f} {delay:>15.1f} {'YES' if success else 'no'}")
    save_artifact("fig13_ploc_timing.txt", "\n".join(lines))

    # The paper's operating point (10 s hold, pairing within 10 s):
    assert all(
        success for hold, delay, success in sweep if delay < hold
    ), "PLOC must capture every pairing initiated inside the hold window"


def test_fig13_supervision_ablation(benchmark, save_artifact):
    cases = benchmark.pedantic(run_supervision_cases, rounds=1, iterations=1)
    lines = [
        "PLOC vs link supervision timeout (the exception the paper",
        "handles with dummy SDP traffic)",
        "",
        f"{'supervision (s)':>16} {'hold (s)':>9} {'pairing at (s)':>15} "
        "MITM success",
    ]
    for supervision, hold, delay, success in cases:
        lines.append(
            f"{supervision:>16.1f} {hold:>9.1f} {delay:>15.1f} "
            f"{'YES' if success else 'no'}"
        )
    save_artifact("fig13_supervision.txt", "\n".join(lines))

    by_case = {(s, h, d): ok for s, h, d, ok in cases}
    assert by_case[(20.0, 10.0, 5.0)] is True  # generous supervision: fine
    assert by_case[(3.0, 10.0, 8.0)] is False  # idle PLOC link dies first
    assert by_case[(3.0, 2.0, 1.5)] is True  # short hold beats the decay
