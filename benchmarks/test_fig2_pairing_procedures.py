"""Fig. 2 — pairing and authentication procedures.

Regenerates both halves of the figure as HCI flows: (a) the full SSP
transaction for non-bonded devices; (b) the LMP-authentication-only
flow for bonded devices.  The benchmark measures wall-clock cost of a
complete simulated SSP pairing (ECDH + commitments + key derivation).
"""

from __future__ import annotations

from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8
from repro.snoop.hcidump import HciDump, render_dump_table


def _paired_world(seed: int):
    world = build_world(WorldConfig(seed=seed))
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    return world, m, c


def fresh_pairing(seed: int = 42):
    world, m, c = _paired_world(seed)
    dump = HciDump().attach(m.transport)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert operation.success
    return dump


def bonded_reauth(seed: int = 42):
    world, m, c = _paired_world(seed)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert operation.success
    m.host.gap.disconnect(c.bd_addr)
    world.run_for(2.0)
    dump = HciDump().attach(m.transport)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(10.0)
    assert operation.success
    return dump


def test_fig2a_fresh_ssp_pairing(benchmark, save_artifact):
    dump = benchmark.pedantic(fresh_pairing, rounds=3, iterations=1)
    table = render_dump_table(dump.entries())
    save_artifact("fig2a_ssp_pairing_flow.txt", table)
    names = [entry.packet.display_name for entry in dump.entries()]
    for required in (
        "HCI_Create_Connection",
        "HCI_Authentication_Requested",
        "HCI_Link_Key_Request_Negative_Reply",
        "HCI_IO_Capability_Request",
        "HCI_User_Confirmation_Request",
        "HCI_Simple_Pairing_Complete",
        "HCI_Link_Key_Notification",
        "HCI_Authentication_Complete",
    ):
        assert required in names, required


def test_fig2b_bonded_lmp_only(benchmark, save_artifact):
    dump = benchmark.pedantic(bonded_reauth, rounds=3, iterations=1)
    table = render_dump_table(dump.entries())
    save_artifact("fig2b_bonded_reauth_flow.txt", table)
    names = [entry.packet.display_name for entry in dump.entries()]
    assert "HCI_Link_Key_Request_Reply" in names
    assert "HCI_IO_Capability_Request" not in names  # SSP is omitted
    assert "HCI_Authentication_Complete" in names
