"""Ablation — decrypting past traffic with an extracted key (§IV-C).

Shape expectation: the extracted key decrypts a previously sniffed E0
session; a wrong key does not.  Also micro-benchmarks the E0 keystream
generator (the pure-Python bit-level cipher dominates attack replay
cost).
"""

from __future__ import annotations

from repro.attacks.eavesdrop import AirCapture, OfflineDecryptor
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.core.types import BdAddr, LinkKey
from repro.crypto.e0 import e0_keystream

MARKER = b"Personal Ad-hoc"


def full_chain(seed: int = 300):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    bond(world, c, m)

    capture = AirCapture().attach(world.medium)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(10.0)
    assert operation.success
    m.host.gap.enable_encryption(c.bd_addr)
    world.run_for(2.0)
    m.host.sdp.query(c.bd_addr)
    world.run_for(5.0)
    m.host.gap.disconnect(c.bd_addr)
    world.run_for(2.0)

    report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
    assert report.extraction_success

    decryptor = OfflineDecryptor(
        capture,
        report.extracted_key,
        prover_addr=c.bd_addr,
        master_addr=m.bd_addr,
        master_name=m.name,
    )
    plaintexts = decryptor.decrypt_all()
    wrong = decryptor.try_wrong_key(LinkKey(b"\x00" * 16))
    return {
        "captured_frames": len(capture.encrypted_acl_frames()),
        "decrypted_hit": any(MARKER in p for p in plaintexts),
        "wrong_key_hit": any(MARKER in p for p in wrong),
    }


def test_ablation_eavesdrop_full_chain(benchmark, save_artifact):
    outcome = benchmark.pedantic(full_chain, rounds=1, iterations=1)
    save_artifact(
        "ablation_eavesdrop.txt",
        f"encrypted frames captured from the air: {outcome['captured_frames']}\n"
        f"extracted key decrypts the session:     {outcome['decrypted_hit']}\n"
        f"wrong key decrypts the session:         {outcome['wrong_key_hit']}",
    )
    assert outcome["captured_frames"] > 0
    assert outcome["decrypted_hit"] is True
    assert outcome["wrong_key_hit"] is False


def test_e0_keystream_throughput(benchmark):
    """Keystream bytes per second of the bit-level E0 implementation."""
    addr = BdAddr.parse("aa:bb:cc:dd:ee:ff")
    stream = benchmark(e0_keystream, b"\x11" * 16, addr, 42, 256)
    assert len(stream) == 256
