"""Table II — MITM connection success rates with and without page
blocking.

Paper result: 42–60% success without page blocking (a scan-phase race
the attacker cannot control) and 100% with page blocking, across all
seven victim devices.

Expected shape here: the baseline scatters around ~50% (the paper
itself concludes the race is "quite random"), and page blocking is a
deterministic 100%.

Both conditions run through the campaign engine — same seeds, same
worlds as the old hand-rolled loops (the CampaignRunner equivalence
tests pin this), but shardable across workers via
``BLAP_CAMPAIGN_WORKERS``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.campaign import CampaignRunner, CampaignSpec
from repro.devices.catalog import TABLE2_DEVICE_SPECS
from repro.devices.device import DeviceSpec

from conftest import TRIALS, campaign_runner

# Paper Table II: baseline success rates measured on real hardware.
PAPER_BASELINE = {
    "iphone_xs_ios1442": 0.52,
    "nexus_5x_android8": 0.52,
    "lg_v50_android9": 0.57,
    "galaxy_s8_android9": 0.42,
    "pixel_2_xl_android11": 0.60,
    "lg_velvet_android11": 0.60,
    "galaxy_s21_android11": 0.51,
}


def measure_device(
    runner: CampaignRunner, spec: DeviceSpec, trials: int, seed_base: int
) -> Tuple[float, float]:
    baseline = runner.run(
        CampaignSpec(
            "baseline-race",
            seeds=range(seed_base, seed_base + trials),
            params={"m_spec": spec.key},
        )
    )
    blocked = runner.run(
        CampaignSpec(
            "page-blocking",
            seeds=range(seed_base + 50_000, seed_base + 50_000 + trials),
            params={"m_spec": spec.key},
        )
    )
    return baseline.success_rate, blocked.success_rate


def run_table2(trials: int) -> List[Tuple[DeviceSpec, float, float]]:
    runner = campaign_runner()
    rows = []
    for index, spec in enumerate(TABLE2_DEVICE_SPECS):
        baseline, blocked = measure_device(
            runner, spec, trials, seed_base=2000 + index * 10_000
        )
        rows.append((spec, baseline, blocked))
    return rows


def render(rows, trials: int) -> str:
    lines = [
        f"Table II: MITM connection success rates ({trials} trials/cell)",
        f"{'Device':<28} {'Paper w/o':<10} {'Ours w/o':<10} "
        f"{'Paper with':<11} {'Ours with'}",
    ]
    lines.append("-" * len(lines[1]))
    for spec, baseline, blocked in rows:
        paper = PAPER_BASELINE[spec.key]
        lines.append(
            f"{spec.marketing_name + ' (' + spec.os + ')':<28} "
            f"{paper:>7.0%}   {baseline:>7.0%}   {1.0:>8.0%}   {blocked:>7.0%}"
        )
    return "\n".join(lines)


def test_table2_page_blocking(benchmark, save_artifact):
    rows = benchmark.pedantic(run_table2, args=(TRIALS,), rounds=1, iterations=1)
    save_artifact("table2_page_blocking.txt", render(rows, TRIALS))

    assert len(rows) == 7
    # The baseline race is a scan-phase coin flip: at the paper's 100
    # trials the 42–60% band (plus binomial slack) applies; the 8-trial
    # CI smoke slice quantises to 12.5% steps, so the band widens.
    low, high = (0.30, 0.70) if TRIALS >= 50 else (0.125, 0.875)
    for spec, baseline, blocked in rows:
        # Page blocking is deterministic: 100% on every device.
        assert blocked == 1.0, f"{spec.key}: page blocking not deterministic"
        # The baseline race stays strictly inside (0, 1): the attacker
        # can neither guarantee nor be locked out of the connection...
        assert 0.0 < baseline < 1.0
        # ...and lands in the paper's qualitative band (a near-fair
        # race; we allow binomial slack around it).
        assert low <= baseline <= high, f"{spec.key}: baseline={baseline}"
