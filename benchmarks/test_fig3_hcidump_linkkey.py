"""Fig. 3 — a link key inside an HCI packet and its HCI dump.

Bonds two devices, re-authenticates, captures the victim's btsnoop
log, and regenerates the figure's content: the raw packet bytes of the
HCI_Link_Key_Request_Reply (with the key visible) and the parsed dump
view.  The benchmark measures extractor throughput over the capture.
"""

from __future__ import annotations

from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.hci.commands import LinkKeyRequestReply
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import HciDump, render_dump_table


def build_capture(seed: int = 5):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    bond(world, c, m)
    dump = HciDump().attach(c.transport)
    operation = c.host.gap.pair(m.bd_addr)
    world.run_for(10.0)
    assert operation.success
    expected = c.host.security.bond_for(m.bd_addr).link_key
    return dump.to_btsnoop_bytes(), dump, expected


def test_fig3_link_key_in_hci_dump(benchmark, save_artifact):
    capture, dump, expected = build_capture()

    findings = benchmark(extract_link_keys, capture)

    hits = [f for f in findings if f.link_key == expected]
    assert hits, "bonded key not found in the HCI dump"

    reply_entries = [
        entry
        for entry in dump.entries()
        if isinstance(entry.packet, LinkKeyRequestReply)
    ]
    assert reply_entries
    raw = reply_entries[0].packet.to_h4_bytes()

    lines = [
        "Fig. 3: a link key in an HCI packet and its HCI dump",
        "",
        "Raw HCI_Link_Key_Request_Reply packet (H4 framing):",
        "  " + raw.hex(" "),
        "  ^^ '01' = command, '0b 04' = opcode, '16' = length,",
        "     6 bytes peer BD_ADDR, 16 bytes plaintext link key",
        "",
        f"Bonded link key (host database): {expected.hex()}",
        f"Extracted from dump:             {hits[0].link_key.hex()}",
        "",
        "Parsed dump view:",
        render_dump_table(dump.entries(), max_rows=20),
    ]
    save_artifact("fig3_linkkey_in_dump.txt", "\n".join(lines))

    # The figure's claim: the on-disk log contains the key verbatim.
    assert expected.to_hci_bytes() in capture
