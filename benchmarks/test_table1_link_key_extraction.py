"""Table I — devices vulnerable to the link key extraction attack.

Paper result: all nine tested systems (six Android phones, two Windows
10 stacks, Ubuntu 20.04/BlueZ) leak the bonded link key through HCI
data, and only Ubuntu requires superuser privilege.

This benchmark runs the complete Fig. 5 attack — via the ``extraction``
campaign scenario — against each catalog device acting as C and
regenerates the table: OS | host stack | device | channel | SU
privilege | vulnerable.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.campaign import CampaignSpec, TrialResult
from repro.devices.catalog import TABLE1_DEVICE_SPECS
from repro.devices.device import DeviceSpec

from conftest import campaign_runner

# Paper Table I ground truth: (marketing name fragment, su_required).
PAPER_SU_COLUMN = {
    "nexus_5x_android8": False,
    "lg_v50_android9": False,
    "galaxy_s8_android9": False,
    "pixel_2_xl_android11": False,
    "lg_velvet_android11": False,
    "galaxy_s21_android11": False,
    "windows10_microsoft": False,
    "windows10_csr_harmony": False,
    "ubuntu_2004_bluez": True,
}


def run_table1() -> List[Tuple[DeviceSpec, TrialResult]]:
    runner = campaign_runner()
    rows = []
    for index, spec in enumerate(TABLE1_DEVICE_SPECS):
        campaign = runner.run(
            CampaignSpec(
                "extraction",
                seeds=[1000 + index],
                params={"c_spec": spec.key},
            )
        )
        rows.append((spec, campaign.results[0]))
    return rows


def render(rows) -> str:
    lines = [
        "Table I: devices vulnerable to link key extraction attack",
        f"{'OS':<14} {'Host stack':<14} {'Device':<42} "
        f"{'Channel':<10} {'SU':<4} {'Vulnerable'}",
    ]
    lines.append("-" * len(lines[1]))
    for spec, trial in rows:
        detail = trial.detail
        lines.append(
            f"{spec.os:<14} {spec.stack_profile.name:<14} "
            f"{spec.marketing_name:<42} {detail['extraction_channel']:<10} "
            f"{'Y' if detail['su_required'] else 'N':<4} "
            f"{'YES' if detail['vulnerable'] else 'no'}"
        )
    return "\n".join(lines)


def test_table1_link_key_extraction(benchmark, save_artifact):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_artifact("table1_link_key_extraction.txt", render(rows))

    assert len(rows) == 9
    for spec, trial in rows:
        assert trial.error is None, f"{spec.key}: {trial.error}"
        # Paper: every tested device is vulnerable.
        assert trial.success, f"{spec.marketing_name} not vulnerable?!"
        # Paper: the extracted key validates against M.
        assert trial.detail["validated_against_m"] is not False
        # Paper: the SU column matches.
        assert trial.detail["su_required"] == PAPER_SU_COLUMN[spec.key], spec.key
