"""Table I — devices vulnerable to the link key extraction attack.

Paper result: all nine tested systems (six Android phones, two Windows
10 stacks, Ubuntu 20.04/BlueZ) leak the bonded link key through HCI
data, and only Ubuntu requires superuser privilege.

This benchmark runs the complete Fig. 5 attack against each catalog
device acting as C and regenerates the table: OS | host stack | device
| channel | SU privilege | vulnerable.
"""

from __future__ import annotations

from typing import List

from repro.attacks.link_key_extraction import (
    ExtractionReport,
    LinkKeyExtractionAttack,
)
from repro.attacks.scenario import bond, build_world, standard_cast
from repro.devices.catalog import TABLE1_DEVICE_SPECS

# Paper Table I ground truth: (marketing name fragment, su_required).
PAPER_SU_COLUMN = {
    "nexus_5x_android8": False,
    "lg_v50_android9": False,
    "galaxy_s8_android9": False,
    "pixel_2_xl_android11": False,
    "lg_velvet_android11": False,
    "galaxy_s21_android11": False,
    "windows10_microsoft": False,
    "windows10_csr_harmony": False,
    "ubuntu_2004_bluez": True,
}


def run_table1() -> List[ExtractionReport]:
    reports = []
    for index, spec in enumerate(TABLE1_DEVICE_SPECS):
        world = build_world(seed=1000 + index)
        m, c, a = standard_cast(world, c_spec=spec)
        bond(world, c, m)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=True)
        reports.append((spec, report))
    return reports


def render(rows) -> str:
    lines = [
        "Table I: devices vulnerable to link key extraction attack",
        f"{'OS':<14} {'Host stack':<14} {'Device':<42} "
        f"{'Channel':<10} {'SU':<4} {'Vulnerable'}",
    ]
    lines.append("-" * len(lines[1]))
    for spec, report in rows:
        lines.append(
            f"{spec.os:<14} {spec.stack_profile.name:<14} "
            f"{spec.marketing_name:<42} {report.extraction_channel:<10} "
            f"{'Y' if report.su_required else 'N':<4} "
            f"{'YES' if report.vulnerable else 'no'}"
        )
    return "\n".join(lines)


def test_table1_link_key_extraction(benchmark, save_artifact):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_artifact("table1_link_key_extraction.txt", render(rows))

    assert len(rows) == 9
    for spec, report in rows:
        # Paper: every tested device is vulnerable.
        assert report.vulnerable, f"{spec.marketing_name} not vulnerable?!"
        # Paper: the extracted key validates against M.
        assert report.validated_against_m is not False
        # Paper: the SU column matches.
        assert report.su_required == PAPER_SU_COLUMN[spec.key], spec.key
