"""Scalability benchmarks: many devices, one simulator.

Measures how the discrete-event world scales with fleet size —
discovery over N devices, N sequential pairings, and a busy piconet —
to keep the simulator fast enough for the 1400-trial Table II run.
"""

from __future__ import annotations

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8


def _fleet(world, count: int):
    hub = world.add_device("hub", LG_VELVET)
    peers = [
        world.add_device(f"peer-{index}", NEXUS_5X_A8)
        for index in range(count)
    ]
    hub.power_on()
    for peer in peers:
        peer.power_on()
    world.run_for(0.5)
    return hub, peers


@pytest.mark.parametrize("count", [4, 16])
def test_discovery_over_n_devices(benchmark, count):
    def run():
        world = build_world(WorldConfig(seed=700 + count))
        hub, peers = _fleet(world, count)
        operation = hub.host.gap.start_discovery()
        world.run_for(8.0)
        assert operation.success
        return operation.result

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(results) == count


@pytest.mark.parametrize("count", [2, 6])
def test_n_sequential_pairings(benchmark, count):
    def run():
        world = build_world(WorldConfig(seed=800 + count))
        hub, peers = _fleet(world, count)
        hub.controller.supervision_timeout_s = 600.0
        for peer in peers:
            peer.controller.supervision_timeout_s = 600.0
            peer.user.note_pairing_initiated(
                hub.bd_addr, world.simulator.now
            )
            operation = hub.host.gap.pair(peer.bd_addr)
            world.run_for(15.0)
            assert operation.success, peer.name
        return len(hub.host.security.keys)

    bonded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bonded == count


def test_busy_piconet_event_throughput(benchmark):
    """Simulator events per second with 6 concurrent SDP chatterboxes."""

    def run():
        world = build_world(WorldConfig(seed=900))
        hub, peers = _fleet(world, 6)
        for device in [hub] + peers:
            device.controller.supervision_timeout_s = 600.0
        for peer in peers:
            operation = hub.host.gap.connect(peer.bd_addr)
            world.run_for(5.0)
            assert operation.success

        chatter_until = world.simulator.now + 30.0

        def chatter():
            for peer in peers:
                hub.host.sdp.query(peer.bd_addr)
            if world.simulator.now < chatter_until:
                world.simulator.schedule(1.0, chatter)

        chatter()
        world.run_for(35.0)
        return world.simulator.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events > 1000
