"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper and
writes the rendered artifact to ``benchmarks/results/`` (in addition to
printing it), so the reproduced outputs survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: trials per Table II cell — the paper uses 100; override with
#: BLAP_TRIALS for quicker smoke runs.
TRIALS = int(os.environ.get("BLAP_TRIALS", "100"))

#: worker processes for the campaign sweeps — 1 keeps the benchmarks
#: in-process (stable timings); override with BLAP_CAMPAIGN_WORKERS to
#: shard across cores.
WORKERS = int(os.environ.get("BLAP_CAMPAIGN_WORKERS", "1"))


def campaign_runner():
    """The CampaignRunner the benchmarks sweep with (no cache: every
    run measures real trial cost)."""
    from repro.campaign import CampaignRunner

    return CampaignRunner(workers=WORKERS)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write (and echo) a rendered table/figure."""

    def _save(name: str, text: str) -> None:
        (artifact_dir / name).write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====\n{text}\n")

    return _save
