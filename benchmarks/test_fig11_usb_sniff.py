"""Fig. 11 — link key recovered from a USB sniff equals the key in the
peer's HCI dump.

Reproduces §VI-B1's Windows experiment: C is a Windows 10 PC with a
QSENN CSR V4.0 USB dongle; the attacker sniffs the USB bus with a free
analyzer, converts the binary stream to hex (the authors' BinaryToHex
port) and greps for '0b 04 16'.  The recovered key is compared against
the key logged on the Android peer's HCI dump — they must be
identical, which is the figure's cross-validation.
"""

from __future__ import annotations

from repro.attacks.attacker import Attacker
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.devices.catalog import WINDOWS_MS_DRIVER
from repro.snoop.extractor import keys_by_peer
from repro.snoop.usb_extract import bin2hex, extract_link_keys_from_usb


def run_cross_validation(seed: int = 65):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world, c_spec=WINDOWS_MS_DRIVER)
    bond(world, c, m)

    # M's own HCI dump (the Android side of Fig. 11b).
    m_dump = m.enable_hci_snoop()

    # The USB analyzer on C's dongle (Fig. 11a).
    sniffer = c.attach_usb_sniffer()

    # Drive a bonded re-authentication so both sides serve their keys.
    operation = c.host.gap.pair(m.bd_addr)
    world.run_for(10.0)
    assert operation.success

    usb_findings = extract_link_keys_from_usb(sniffer)
    usb_keys = {f.link_key for f in usb_findings if f.peer == m.bd_addr}
    dump_key = keys_by_peer(m.pull_bugreport()).get(c.bd_addr)
    hex_excerpt = bin2hex(sniffer.raw_stream())[:600]
    return usb_keys, dump_key, hex_excerpt


def test_fig11_usb_sniff_matches_peer_dump(benchmark, save_artifact):
    usb_keys, dump_key, hex_excerpt = benchmark.pedantic(
        run_cross_validation, rounds=1, iterations=1
    )
    assert dump_key is not None
    assert usb_keys == {dump_key}, (usb_keys, dump_key)

    save_artifact(
        "fig11_usb_sniff.txt",
        "Fig. 11: link keys in HCI data from USB sniff and HCI dump\n\n"
        f"Key from USB sniff on C : {sorted(k.hex() for k in usb_keys)[0]}\n"
        f"Key from HCI dump on M  : {dump_key.hex()}\n"
        "MATCH: the extraction via the physical interface is correct.\n\n"
        "Converted hex stream excerpt (BinaryToHex output):\n"
        + hex_excerpt,
    )
