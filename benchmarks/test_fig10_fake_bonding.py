"""Fig. 10 — fake bonding information installed on the attacker device.

Regenerates the bt_config.conf entry (BD_ADDR section, name, PAN
service UUIDs, the extracted LinkKey) and verifies the install →
Bluetooth power-cycle → live-bond pipeline the validation procedure
uses.
"""

from __future__ import annotations

from repro.attacks.attacker import Attacker
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.core.types import BdAddr, LinkKey

FAKE_KEY = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")


def install_fake_bonding(seed: int = 60):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    attacker = Attacker(a)
    attacker.install_fake_bonding(
        m.bd_addr, FAKE_KEY, name="VELVET", services=[0x1115, 0x1116]
    )
    config_text = a.filesystem.read_text(
        "/data/misc/bluedroid/bt_config.conf", su=True
    )
    return a, m.bd_addr, config_text


def test_fig10_fake_bonding_info(benchmark, save_artifact):
    device, m_addr, config_text = benchmark.pedantic(
        install_fake_bonding, rounds=1, iterations=1
    )
    save_artifact("fig10_fake_bonding.txt", config_text)

    # The file holds exactly the Fig. 10 ingredients.
    assert f"[{m_addr}]" in config_text
    assert "Name = VELVET" in config_text
    assert "00001115-0000-1000-8000-00805f9b34fb" in config_text
    assert "00001116-0000-1000-8000-00805f9b34fb" in config_text
    assert f"LinkKey = {FAKE_KEY.hex()}" in config_text

    # And after the power cycle the stack serves it as a live bond.
    assert device.bonded_key_for(m_addr) == FAKE_KEY
