"""Ablation — offline PIN cracking of sniffed legacy pairing.

Historical contrast for the paper's §II: before SSP, a passive sniffer
could recover the link key by brute-forcing the PIN offline (refs
[14][15]).  SSP closed that hole — and the paper shows the SSP-era key
then leaks through the HCI instead.

Shape expectation: a 4-digit numeric PIN falls in at most 10,000
E22/E21/E1 evaluations; the recovered key equals the bonded key.
"""

from __future__ import annotations

from repro.attacks.eavesdrop import AirCapture
from repro.attacks.pin_crack import (
    crack_pin,
    numeric_pins,
    transcript_from_capture,
)
from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8

PIN = "8341"


def sniff_legacy_pairing(seed: int = 400):
    world = build_world(WorldConfig(seed=seed))
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    m.host.ssp_enabled = False
    c.host.ssp_enabled = False
    m.user.pin_code = PIN
    c.user.pin_code = PIN
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    capture = AirCapture().attach(world.medium)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert operation.success
    truth = m.host.security.bond_for(c.bd_addr).link_key
    return transcript_from_capture(capture, "M", m.bd_addr, c.bd_addr), truth


def test_ablation_pin_crack(benchmark, save_artifact):
    transcript, truth = sniff_legacy_pairing()

    result = benchmark.pedantic(
        crack_pin, args=(transcript, numeric_pins(4)), rounds=1, iterations=1
    )

    assert result is not None
    assert result.pin == PIN.encode()
    assert result.link_key == truth
    assert result.candidates_tried <= 10_000

    save_artifact(
        "ablation_pin_crack.txt",
        "Offline PIN crack of a sniffed legacy pairing\n"
        f"  PIN space        : 4-digit numeric (10,000 candidates)\n"
        f"  candidates tried : {result.candidates_tried}\n"
        f"  recovered PIN    : {result.pin.decode()}\n"
        f"  recovered key    : {result.link_key}\n"
        f"  matches bond     : {result.link_key == truth}",
    )


def test_pin_candidate_throughput(benchmark):
    """E22+E21+E1 evaluations per second (the search's unit cost)."""
    from repro.attacks.pin_crack import candidate_key

    transcript, _ = sniff_legacy_pairing(seed=401)
    key = benchmark(candidate_key, transcript, b"0000")
    assert len(key.value) == 16
