"""Fig. 12 — HCI dump logs for normal pairing vs page-blocked pairing.

Regenerates both frame tables exactly as the paper presents them (Fra
| Type | Opcode Command | Event | Handle | Status) and asserts the
distinguishing invariant: under the attack, the victim is the pairing
initiator (HCI_Authentication_Requested command) *and* the connection
responder (HCI_Connection_Request event) simultaneously.
"""

from __future__ import annotations

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.snoop.hcidump import HciDump, render_dump_table


def capture_normal(seed: int = 70):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    dump = HciDump().attach(m.transport)
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert operation.success
    return dump


def capture_blocked(seed: int = 71):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    report = PageBlockingAttack(world, a, c, m).run(run_discovery=False)
    assert report.success and report.paired
    return report.m_dump


def test_fig12_hci_flows(benchmark, save_artifact):
    normal, blocked = benchmark.pedantic(
        lambda: (capture_normal(), capture_blocked()), rounds=1, iterations=1
    )
    normal_table = render_dump_table(normal.entries(), max_rows=14)
    blocked_table = render_dump_table(blocked.entries(), max_rows=14)
    save_artifact(
        "fig12_hci_flows.txt",
        "(a) HCI dump for normal pairing\n"
        + normal_table
        + "\n\n(b) HCI dump for pairing under page blocking attack\n"
        + blocked_table,
    )

    normal_names = [e.packet.display_name for e in normal.entries()]
    blocked_names = [e.packet.display_name for e in blocked.entries()]

    # Fig. 12a: M created the connection, then got a Link_Key_Request
    # answered negatively, then the IO capability exchange began.
    assert normal_names.index("HCI_Create_Connection") < normal_names.index(
        "HCI_Authentication_Requested"
    )
    assert normal_names.index("HCI_Link_Key_Request") < normal_names.index(
        "HCI_Link_Key_Request_Negative_Reply"
    )
    assert "HCI_IO_Capability_Request" in normal_names
    assert "HCI_Connection_Request" not in normal_names

    # Fig. 12b: the page-blocked flow starts with an *incoming*
    # connection, yet M still issues Authentication_Requested.
    assert blocked_names[0] == "HCI_Connection_Request"
    assert "HCI_Accept_Connection_Request" in blocked_names
    assert "HCI_Authentication_Requested" in blocked_names
    assert "HCI_Create_Connection" not in blocked_names
    # The paper's detection signature, in one predicate:
    assert blocked_names.index("HCI_Connection_Request") < blocked_names.index(
        "HCI_Authentication_Requested"
    )
