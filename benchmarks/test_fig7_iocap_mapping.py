"""Fig. 7 — IO capability mapping for authentication stage 1.

Regenerates both halves of the figure (v4.2-and-lower vs v5.0-and-
higher) from the host stack's actual policy code, and asserts the one
cell the attack leans on: a NoInputNoOutput *responder* with a
DisplayYesNo *initiator* yields Just Works — silent on ≤4.2, a bare
Yes/No popup (no confirmation value) on ≥5.0.
"""

from __future__ import annotations

from repro.core.types import BluetoothVersion, IoCapability
from repro.host.iocap import (
    ConfirmationBehavior,
    confirmation_behavior,
    confirmation_matrix,
    render_confirmation_matrix,
)


def build_both_matrices():
    return (
        render_confirmation_matrix(BluetoothVersion.V4_2),
        render_confirmation_matrix(BluetoothVersion.V5_0),
    )


def test_fig7_iocap_mapping(benchmark, save_artifact):
    old_table, new_table = benchmark(build_both_matrices)
    save_artifact("fig7_iocap_mapping.txt", old_table + "\n\n" + new_table)

    dyn = IoCapability.DISPLAY_YES_NO
    nio = IoCapability.NO_INPUT_NO_OUTPUT

    # The attack cell: initiator=victim (DisplayYesNo), responder=
    # attacker (NoInputNoOutput).
    assert (
        confirmation_behavior(BluetoothVersion.V4_2, dyn, nio, True)
        is ConfirmationBehavior.AUTO_CONFIRM
    )
    v5 = confirmation_behavior(BluetoothVersion.V5_0, dyn, nio, True)
    assert v5 is ConfirmationBehavior.POPUP_YES_NO
    # Crucially the 5.0 popup carries no confirmation value.
    assert v5 is not ConfirmationBehavior.POPUP_WITH_NUMBER

    # Structure: both matrices enumerate the same 4 cells.
    assert len(confirmation_matrix(BluetoothVersion.V4_2)) == 4
    assert len(confirmation_matrix(BluetoothVersion.V5_0)) == 4
