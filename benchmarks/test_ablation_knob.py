"""Ablation — KNOB-style low-entropy session brute force (§VIII context).

Shape expectation: a session negotiated down to 1 byte of encryption
key entropy falls in ≤256 candidates; the same session at 16 bytes is
infeasible; a peer enforcing the post-KNOB minimum (7 bytes) refuses
the negotiation outright.
"""

from __future__ import annotations

from repro.attacks.eavesdrop import AirCapture
from repro.attacks.knob import brute_force_low_entropy_session
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast

MARKER = b"Personal Ad-hoc"


def knobbed_session(seed: int = 500, min_key_size_on_c: int = 1):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    bond(world, c, m)
    m.controller.max_encryption_key_size = 1  # the KNOB'd proposal
    c.controller.min_encryption_key_size = min_key_size_on_c
    capture = AirCapture().attach(world.medium)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(10.0)
    assert operation.success
    encryption = m.host.gap.enable_encryption(c.bd_addr)
    world.run_for(2.0)
    m.host.sdp.query(c.bd_addr)
    world.run_for(5.0)
    return world, m, c, capture, encryption


def test_ablation_knob_brute_force(benchmark, save_artifact):
    world, m, c, capture, encryption = knobbed_session()
    assert encryption.success

    result = benchmark.pedantic(
        brute_force_low_entropy_session,
        args=(capture, m.bd_addr, m.name, 1),
        kwargs={
            "plaintext_predicate": lambda ps: any(MARKER in p for p in ps)
        },
        rounds=1,
        iterations=1,
    )
    assert result is not None
    save_artifact(
        "ablation_knob.txt",
        "KNOB-style 1-byte-entropy session brute force\n"
        f"  candidates tried : {result.candidates_tried} (max 256)\n"
        f"  recovered Kc'    : {result.kc_prime.hex()}\n"
        f"  session decrypted: "
        f"{any(MARKER in p for p in result.plaintexts)}",
    )


def test_ablation_knob_mitigation_refuses(benchmark, save_artifact):
    def run():
        _, _, _, _, encryption = knobbed_session(
            seed=501, min_key_size_on_c=7
        )
        return encryption

    encryption = benchmark.pedantic(run, rounds=1, iterations=1)
    assert encryption.done and not encryption.success
    save_artifact(
        "ablation_knob_mitigation.txt",
        "Post-KNOB minimum key size (7 bytes) enforced by the peer:\n"
        f"  encryption established: {encryption.success}\n"
        f"  status: {encryption.status:#04x} (insufficient security)",
    )
