"""Ablation — both attacks re-run under the §VII mitigations.

Shape expectation: each mitigation defeats its attack, none breaks
legitimate operation, and the dump filter's per-packet overhead is
small (it only inspects headers).
"""

from __future__ import annotations

from repro.attacks.attacker import Attacker
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.mitigations.dump_filter import FilteredHciDump, redact_record
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import HciDump

ADDR = BdAddr.parse("48:90:11:22:33:44")
KEY = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")


def extraction_with_filtered_dump(seed: int = 200):
    """Run the extraction scenario but with the filtering dump module
    installed on C (the mitigation-deployed world)."""
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    bond(world, c, m)
    truth = c.bonded_key_for(m.bd_addr)

    filtered = FilteredHciDump().attach(c.transport)
    attacker = Attacker(a)
    attacker.patch_drop_link_key_requests()
    attacker.spoof_device(m)
    attacker.go_connectable()
    world.set_in_range(c, m, False)
    world.run_for(0.5)
    c.host.gap.pair(m.bd_addr)
    world.run_for(12.0)

    findings = extract_link_keys(filtered.to_btsnoop_bytes())
    leaked = any(f.link_key == truth for f in findings)
    return leaked, filtered.redactions


def page_blocking_with_guard(seed: int = 201):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    m.host.security.page_blocking_guard = True
    report = PageBlockingAttack(world, a, c, m).run()
    return report, m


def legitimate_pairing_with_guard(seed: int = 202):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    m.host.security.page_blocking_guard = True
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    return operation, m


def test_mitigation_dump_filter_stops_extraction(benchmark, save_artifact):
    leaked, redactions = benchmark.pedantic(
        extraction_with_filtered_dump, rounds=1, iterations=1
    )
    save_artifact(
        "ablation_mitigation_dump_filter.txt",
        f"link key leaked through filtered dump: {leaked}\n"
        f"payloads redacted during the attack:   {redactions}",
    )
    assert not leaked
    assert redactions >= 1


def test_mitigation_guard_stops_page_blocking(benchmark, save_artifact):
    report, m = benchmark.pedantic(
        page_blocking_with_guard, rounds=1, iterations=1
    )
    save_artifact(
        "ablation_mitigation_guard.txt",
        f"attack paired: {report.paired}\n"
        f"guard rejections on M: {m.host.security.guard_rejections}",
    )
    assert not report.paired
    assert m.host.security.guard_rejections >= 1


def test_mitigation_guard_no_false_positive(benchmark):
    operation, m = benchmark.pedantic(
        legitimate_pairing_with_guard, rounds=1, iterations=1
    )
    assert operation.success
    assert m.host.security.guard_rejections == 0


def test_mitigation_secure_hci_device(benchmark, save_artifact):
    """The §VII-A long-term fix deployed device-wide: the full USB
    extraction attack fails against a secure-HCI Windows victim."""
    import dataclasses

    from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
    from repro.devices.catalog import WINDOWS_MS_DRIVER

    hardened = dataclasses.replace(
        WINDOWS_MS_DRIVER, key="windows10_secure_hci", secure_hci=True
    )

    def run():
        world = build_world(WorldConfig(seed=210))
        m, c, a = standard_cast(world, c_spec=hardened)
        bond(world, c, m)
        return LinkKeyExtractionAttack(world, a, c, m).run(validate=False)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_mitigation_secure_hci.txt",
        "USB extraction vs a secure-HCI (encrypted payload) victim\n"
        f"  ground truth key : {report.ground_truth_key}\n"
        f"  'extracted' key  : {report.extracted_key} (ciphertext bytes)\n"
        f"  attack succeeded : {report.extraction_success}",
    )
    assert not report.extraction_success


def test_overhead_dump_filter_per_packet(benchmark):
    """Micro-benchmark: header inspection + redaction per packet."""
    raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_h4_bytes()
    safe, redacted = benchmark(redact_record, raw)
    assert redacted and safe != raw


def test_overhead_plain_dump_append(benchmark):
    """Baseline for the filter overhead comparison: a plain append."""
    from repro.transport.base import Direction

    dump = HciDump()
    raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_h4_bytes()
    benchmark(dump.writer.append, 0.0, Direction.HOST_TO_CONTROLLER, raw)
