"""Fig. 5 — the seven-step link key extraction procedure.

Runs the attack step by step and checks the paper's claims at each
stage: the key is logged during step 3-4, the link drops by timeout in
step 5 (no auth failure, key survives), extraction succeeds in step 6
and impersonation validates in step 7.
"""

from __future__ import annotations

from repro.attacks.attacker import Attacker
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.hci.constants import ErrorCode
from repro.snoop.extractor import extract_link_keys


def run_stepwise(seed: int = 77):
    log = []
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    bond(world, c, m)
    truth = c.bonded_key_for(m.bd_addr)
    log.append(f"pre-state: C and M bonded, key={truth.hex()}")

    # Step 1: record HCI data on C.
    dump = c.enable_hci_snoop()
    log.append("step 1: HCI snoop enabled on C (developer options)")

    # Step 2: spoof M.
    attacker = Attacker(a)
    attacker.patch_drop_link_key_requests()
    attacker.spoof_device(m)
    attacker.go_connectable()
    world.set_in_range(c, m, False)
    world.run_for(0.5)
    log.append(f"step 2: A spoofed BD_ADDR {a.bd_addr} (= M)")

    # Step 3: C connects and initiates LMP authentication with "M".
    operation = c.host.gap.pair(m.bd_addr)
    world.run_for(12.0)
    log.append(
        "step 3-5: C authenticated toward A; outcome status="
        f"{operation.status:#x} (0x22 = LMP response timeout)"
    )
    timeout_not_failure = operation.status == ErrorCode.LMP_RESPONSE_TIMEOUT
    key_survived = c.bonded_key_for(m.bd_addr) == truth
    log.append(f"        key survived on C: {key_survived}")

    # Step 6: extract from the bug report.
    findings = extract_link_keys(c.pull_bugreport())
    extracted = [f.link_key for f in findings if f.peer == m.bd_addr]
    log.append(
        f"step 6: extracted {len(findings)} finding(s); "
        f"key match: {bool(extracted and extracted[-1] == truth)}"
    )

    return {
        "log": log,
        "timeout_not_failure": timeout_not_failure,
        "key_survived": key_survived,
        "extracted_ok": bool(extracted and extracted[-1] == truth),
    }


def test_fig5_stepwise_procedure(benchmark, save_artifact):
    outcome = benchmark.pedantic(run_stepwise, rounds=1, iterations=1)
    save_artifact("fig5_extraction_steps.txt", "\n".join(outcome["log"]))
    assert outcome["timeout_not_failure"]
    assert outcome["key_survived"]
    assert outcome["extracted_ok"]


def test_fig5_step7_impersonation(benchmark, save_artifact):
    """Step 7 measured end-to-end through the attack driver."""

    def full_attack():
        world = build_world(WorldConfig(seed=78))
        m, c, a = standard_cast(world)
        bond(world, c, m)
        return LinkKeyExtractionAttack(world, a, c, m).run(validate=True)

    report = benchmark.pedantic(full_attack, rounds=1, iterations=1)
    save_artifact(
        "fig5_step7_validation.txt",
        "step 7: impersonation of C toward M over PAN\n"
        f"  extracted key : {report.extracted_key}\n"
        f"  ground truth  : {report.ground_truth_key}\n"
        f"  PAN connected without new pairing: {report.validated_against_m}",
    )
    assert report.vulnerable and report.validated_against_m
