"""Micro-benchmarks of the substrate's hot paths.

Not a paper artifact — these exist so regressions in the pure-Python
crypto and packet machinery are visible, and to quantify the cost of
the heavy pieces (E1 per authentication, ECDH per pairing, packet
parse per dump line).
"""

from __future__ import annotations

import random

from repro.core.types import BdAddr, LinkKey
from repro.crypto.ecc import P256, ecdh_shared_secret, generate_keypair
from repro.crypto.legacy import e1, e3
from repro.crypto.safer import SaferPlus
from repro.crypto.ssp import f1_p256, f2_p256, KEY_ID_BTLK
from repro.hci import commands as cmd
from repro.hci.parser import parse_command
from repro.snoop.btsnoop import BtsnoopReader, BtsnoopWriter
from repro.transport.base import Direction

ADDR = BdAddr.parse("aa:bb:cc:dd:ee:ff")
KEY = LinkKey(bytes(range(16)))
RAND = b"\x5a" * 16


def test_saferplus_block(benchmark):
    cipher = SaferPlus(KEY.value)
    out = benchmark(cipher.encrypt, RAND)
    assert len(out) == 16


def test_e1_authentication(benchmark):
    sres, aco = benchmark(e1, KEY, RAND, ADDR)
    assert len(sres) == 4 and len(aco) == 12


def test_e3_key_generation(benchmark):
    kc = benchmark(e3, KEY, RAND, b"\x07" * 12)
    assert len(kc) == 16


def test_ecdh_p256_keygen(benchmark):
    rng = random.Random(1)
    pair = benchmark(generate_keypair, P256, rng)
    assert pair.public is not None


def test_ecdh_p256_shared_secret(benchmark):
    rng = random.Random(2)
    alice = generate_keypair(P256, rng)
    bob = generate_keypair(P256, rng)
    secret = benchmark(ecdh_shared_secret, alice.private, bob.public)
    assert len(secret) == 32


def test_ssp_f1_commitment(benchmark):
    value = benchmark(f1_p256, b"\x01" * 32, b"\x02" * 32, RAND, b"\x00")
    assert len(value) == 16


def test_ssp_f2_key_derivation(benchmark):
    key = benchmark(
        f2_p256, b"\x06" * 32, RAND, RAND, KEY_ID_BTLK, ADDR, ADDR
    )
    assert len(key.value) == 16


def test_hci_command_serialize(benchmark):
    command = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY)
    raw = benchmark(command.to_bytes)
    assert raw[:3] == bytes.fromhex("0b0416")


def test_hci_command_parse(benchmark):
    raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_bytes()
    parsed = benchmark(parse_command, raw)
    assert parsed.link_key == KEY


def test_btsnoop_write_1000_records(benchmark):
    packet = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_h4_bytes()

    def build() -> bytes:
        writer = BtsnoopWriter()
        for index in range(1000):
            writer.append(index * 0.001, Direction.HOST_TO_CONTROLLER, packet)
        return writer.to_bytes()

    raw = benchmark(build)
    assert len(raw) > 1000 * len(packet)


def test_btsnoop_parse_1000_records(benchmark):
    packet = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_h4_bytes()
    writer = BtsnoopWriter()
    for index in range(1000):
        writer.append(index * 0.001, Direction.HOST_TO_CONTROLLER, packet)
    raw = writer.to_bytes()
    records = benchmark(lambda: BtsnoopReader(raw).records())
    assert len(records) == 1000
