"""Fig. 6 — normal pairing vs pairing under page blocking.

Regenerates both message sequences (as the victim M observes them) and
checks the structural difference the figure shows: in the attack, the
connection is inbound (attacker-initiated) and the pairing request is
sent down the *existing* link without any new page.
"""

from __future__ import annotations

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.snoop.hcidump import HciDump, render_dump_table


def normal_pairing(seed: int = 50):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    dump = HciDump().attach(m.transport)
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    discovery = m.host.gap.start_discovery(inquiry_length=2)
    world.run_for(5.0)
    assert discovery.success
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert operation.success
    return dump


def blocked_pairing(seed: int = 51):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    attack = PageBlockingAttack(world, a, c, m)
    report = attack.run()
    assert report.success and report.paired
    return report


def test_fig6a_normal_pairing_sequence(benchmark, save_artifact):
    dump = benchmark.pedantic(normal_pairing, rounds=1, iterations=1)
    save_artifact(
        "fig6a_normal_pairing.txt", render_dump_table(dump.entries())
    )
    names = [entry.packet.display_name for entry in dump.entries()]
    # Fig. 6a: M discovers, M pages, M pairs.
    assert names.index("HCI_Inquiry") < names.index("HCI_Create_Connection")
    assert names.index("HCI_Create_Connection") < names.index(
        "HCI_Authentication_Requested"
    )
    assert "HCI_Connection_Request" not in names  # nobody paged M


def test_fig6b_page_blocked_sequence(benchmark, save_artifact):
    report = benchmark.pedantic(blocked_pairing, rounds=1, iterations=1)
    save_artifact(
        "fig6b_page_blocked_pairing.txt",
        render_dump_table(report.m_dump.entries()),
    )
    flow = report.m_flow
    # Fig. 6b: inbound connection first, then the victim's own pairing
    # rides the existing link — no Create_Connection ever happens.
    assert flow.index("HCI_Connection_Request") < flow.index("HCI_Inquiry")
    assert "HCI_Create_Connection" not in flow
    assert flow.index("HCI_Inquiry") < flow.index("HCI_Authentication_Requested")
