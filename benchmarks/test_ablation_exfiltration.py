"""Ablation — the full kill chain, timed end to end.

Paper §III's goal state: the attacker mines M's phone book and
messages.  This benchmark times the composite attack — legitimate
bond, key extraction from the accessory, impersonation, PBAP + MAP
exfiltration — and asserts the victim saw zero pairing UI throughout.
"""

from __future__ import annotations

from repro.attacks.exfiltration import exfiltrate
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.host.map_profile import Message
from repro.host.pbap import Contact

CONTACTS = [Contact(f"Contact {i:02d}", f"+1-555-{i:04d}") for i in range(25)]
MESSAGES = [Message(f"Contact {i:02d}", f"message body {i}") for i in range(25)]


def full_kill_chain(seed: int = 600):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    m.host.pbap.load_phonebook(CONTACTS)
    m.host.map.load_messages(MESSAGES)
    bond(world, c, m)

    extraction = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
    assert extraction.extraction_success

    world.set_in_range(c, m, False)
    a.host.drop_link_key_requests = False
    c.host.gap.set_scan_mode(connectable=False, discoverable=False)
    report = exfiltrate(
        world,
        a,
        m,
        trusted_c_addr=c.bd_addr,
        trusted_c_cod=c.controller.class_of_device,
        trusted_c_name=c.controller.local_name,
        link_key=extraction.extracted_key,
    )
    return report


def test_ablation_full_kill_chain(benchmark, save_artifact):
    report = benchmark.pedantic(full_kill_chain, rounds=1, iterations=1)
    assert report.success, report.notes
    assert len(report.phonebook) == len(CONTACTS)
    assert len(report.messages) == len(MESSAGES)
    assert report.silent

    save_artifact(
        "ablation_exfiltration.txt",
        "Full kill chain: bond → extract → impersonate → exfiltrate\n"
        f"  phonebook entries stolen : {len(report.phonebook)}\n"
        f"  messages stolen          : {len(report.messages)}\n"
        f"  pairing popups on victim : {report.pairing_popups_on_m}\n"
        f"  first stolen contact     : {report.phonebook[0].name} "
        f"({report.phonebook[0].phone})",
    )
