"""Guard: the ``build_world`` API migration stays finished.

The world-construction redesign moved every caller onto
``build_world(WorldConfig(...))``; the legacy
``build_world(seed, registry, max_trace_records)`` spelling survives
only as a deprecation shim.  This test walks every Python file in the
repo and fails if any callsite outside the shim's own tests still uses
the legacy form — so the migration cannot silently regress as new
scenarios, benchmarks, or docs-driven snippets land.

Belt and braces with the pytest ``filterwarnings = error:...`` entries:
the AST scan also covers files pytest never imports (benchmarks under
``-m 'not perf'``, unreferenced helpers).
"""

from __future__ import annotations

import ast
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: files that intentionally exercise the deprecated spelling
ALLOWED_LEGACY = {
    Path("tests") / "test_campaign_scenarios.py",
}

LEGACY_KEYWORDS = {"seed", "registry", "max_trace_records"}


def _is_world_config(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
    return name == "WorldConfig"


def _legacy_calls(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name != "build_world":
            continue
        legacy_positional = any(
            not _is_world_config(arg) for arg in node.args
        )
        legacy_keyword = any(
            kw.arg in LEGACY_KEYWORDS for kw in node.keywords
        )
        if legacy_positional or legacy_keyword:
            yield node.lineno


def test_no_legacy_build_world_callsites():
    offenders = []
    for directory in ("src", "tests", "benchmarks"):
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            relative = path.relative_to(REPO_ROOT)
            if relative in ALLOWED_LEGACY:
                continue
            for lineno in _legacy_calls(path):
                offenders.append(f"{relative}:{lineno}")
    assert not offenders, (
        "legacy build_world(seed, registry, max_trace_records) callsites "
        "remain; pass build_world(WorldConfig(...)) instead:\n  "
        + "\n  ".join(offenders)
    )


def test_shim_exercised_only_where_allowed():
    """The allowlist must stay honest: every allowed file still exists
    and still contains at least one legacy call (else shrink it)."""
    for relative in sorted(ALLOWED_LEGACY):
        path = REPO_ROOT / relative
        assert path.exists(), f"allowlisted file vanished: {relative}"
        assert list(_legacy_calls(path)), (
            f"{relative} no longer uses the legacy spelling; "
            "remove it from ALLOWED_LEGACY"
        )
