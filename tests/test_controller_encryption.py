"""Controller tests: E0 link encryption over the simulated air."""

import pytest

from repro.attacks.eavesdrop import AirCapture


@pytest.fixture
def encrypted_session(bonded_pair):
    """Bonded pair, reconnected, authenticated and encrypted."""
    world, m, c = bonded_pair
    capture = AirCapture().attach(world.medium)
    op = m.host.gap.pair(c.bd_addr)
    world.run_for(10.0)
    assert op.success
    enc = m.host.gap.enable_encryption(c.bd_addr)
    world.run_for(2.0)
    assert enc.success
    return world, m, c, capture


class TestEncryptionSetup:
    def test_encryption_change_reaches_both_hosts(self, encrypted_session):
        world, m, c, _ = encrypted_session
        assert m.host.gap.connections[c.bd_addr].encrypted
        assert c.host.gap.connections[m.bd_addr].encrypted

    def test_controllers_derive_identical_kc(self, encrypted_session):
        world, m, c, _ = encrypted_session
        m_link = m.controller.link_by_handle(
            m.host.gap.handle_for(c.bd_addr)
        )
        c_link = c.controller.link_by_handle(
            c.host.gap.handle_for(m.bd_addr)
        )
        assert m_link.kc is not None and m_link.kc == c_link.kc

    def test_encryption_requires_prior_authentication(self, device_pair):
        world, m, c = device_pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        op = m.host.gap.enable_encryption(c.bd_addr)
        world.run_for(2.0)
        # No link key / ACO yet: the controller refuses.
        assert not op.success


class TestEncryptedData:
    def test_acl_data_still_arrives_intact(self, encrypted_session):
        world, m, c, _ = encrypted_session
        op = m.host.sdp.query(c.bd_addr)
        world.run_for(5.0)
        assert op.success
        assert len(op.result) >= 1  # C's registered PAN records

    def test_air_frames_are_ciphertext(self, encrypted_session):
        world, m, c, capture = encrypted_session
        frames_before = len(capture.encrypted_acl_frames())
        m.host.sdp.query(c.bd_addr)
        world.run_for(5.0)
        encrypted = capture.encrypted_acl_frames()
        assert len(encrypted) > frames_before
        # The SDP wire bytes must not appear in the air frames.
        for captured in encrypted:
            assert b"Personal Ad-hoc" not in captured.frame.payload.data

    def test_plaintext_without_encryption(self, bonded_pair):
        world, m, c = bonded_pair
        capture = AirCapture().attach(world.medium)
        m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        m.host.sdp.query(c.bd_addr)
        world.run_for(5.0)
        assert capture.encrypted_acl_frames() == []
        plain = [
            f
            for f in capture.frames
            if f.frame.kind == "acl" and b"Personal Ad-hoc" in f.frame.payload.data
        ]
        assert plain, "expected plaintext SDP response on the air"
