"""The ctkd-anomaly detector: fires on BLURtooth, silent on benign use.

Unit-level checks feed synthetic trace records through the detector;
integration checks run the full detection-attack/benign scenarios and
assert the TPR/FPR contract at the 0.7 operating threshold.
"""

from __future__ import annotations

import pytest

from repro.campaign import run_trial
from repro.detect import CtkdAnomalyDetector, create_detector
from repro.detect.feed import DetectionEvent
from repro.sim.trace import TraceRecord


def _event(kind, time=1.0, **detail):
    record = TraceRecord(
        time=time, source="M", category=kind, message="", detail=detail
    )
    return DetectionEvent(
        time=time,
        seq=0,
        monitor="M",
        channel="trace",
        kind=kind,
        record=record,
    )


@pytest.fixture
def detector():
    detector = create_detector("ctkd-anomaly")
    detector.reset()
    return detector


class TestUnit:
    def test_registered_under_its_name(self):
        assert isinstance(
            create_detector("ctkd-anomaly"), CtkdAnomalyDetector
        )

    def test_overwrite_scores_highest(self, detector):
        alerts = detector.on_event(
            _event(
                "ble-ctkd",
                peer="aa", direction="le-to-bredr",
                association="just_works", overwrote=True,
            )
        )
        assert len(alerts) == 1 and alerts[0].score == 0.95

    def test_just_works_minting_crosses_threshold(self, detector):
        alerts = detector.on_event(
            _event(
                "ble-ctkd",
                peer="aa", direction="le-to-bredr",
                association="just_works", overwrote=False,
            )
        )
        assert len(alerts) == 1 and alerts[0].score == 0.75

    def test_routine_ctkd_stays_below_threshold(self, detector):
        alerts = detector.on_event(
            _event(
                "ble-ctkd",
                peer="aa", direction="le-to-bredr",
                association="numeric_comparison", overwrote=False,
            )
        )
        assert len(alerts) == 1 and alerts[0].score < 0.7

    def test_ctkd_origin_session_alerts_once_per_peer(self, detector):
        event = _event("ble-enc", peer="aa", ltk_origin="ctkd")
        first = detector.on_event(event)
        assert len(first) == 1 and first[0].score == 0.75
        assert detector.on_event(event) == []  # deduplicated
        other = detector.on_event(
            _event("ble-enc", peer="bb", ltk_origin="ctkd")
        )
        assert len(other) == 1

    def test_pairing_origin_session_is_silent(self, detector):
        assert (
            detector.on_event(
                _event("ble-enc", peer="aa", ltk_origin="pairing")
            )
            == []
        )

    def test_other_categories_are_ignored(self, detector):
        assert detector.on_event(_event("ble-smp", peer="aa")) == []
        assert detector.on_event(_event("phy-inquiry")) == []


class TestScenarioIntegration:
    @pytest.mark.parametrize(
        "attack", ["blurtooth-bredr-to-le", "blurtooth-le-to-bredr"]
    )
    def test_fires_on_both_blurtooth_directions(self, attack):
        result, _ = run_trial(
            "detection-attack", seed=3, params={"attack": attack}
        )
        assert result.error is None, result.error
        assert result.detail["expected_detector"] == "ctkd-anomaly"
        assert result.detail["attack_succeeded"] is True
        assert result.success, result.detail
        assert result.detail["scores"]["ctkd-anomaly"] >= 0.7

    def test_silent_on_benign_traffic(self):
        result, _ = run_trial("detection-benign", seed=3)
        assert result.error is None, result.error
        assert result.success, result.detail["false_alerts"]
        assert result.detail["scores"].get("ctkd-anomaly", 0.0) < 0.7

    def test_replay_stability(self):
        params = {"attack": "blurtooth-le-to-bredr"}
        first, _ = run_trial("detection-attack", seed=8, params=params)
        second, _ = run_trial("detection-attack", seed=8, params=params)
        assert first.detail["scores"] == second.detail["scores"]
        assert (
            first.detail["first_alert_s"] == second.detail["first_alert_s"]
        )
