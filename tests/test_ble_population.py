"""LE-aware populations: the street-fair mix and its ambient traffic.

Determinism matters more than anything else here: adding LE behaviour
must not move a single RNG draw for classic-only crowds, so every
pre-LE preset replays byte-identically (pinned by comparing summaries
and metrics across runs), while LE-capable kinds take their extra
draws from their own per-device streams.
"""

from __future__ import annotations

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.population import populate
from repro.population.spec import (
    PopulationSpec,
    get_population,
    le_mix,
    table_mix,
)


def _run(preset, seed=21, run_s=60.0):
    world = build_world(WorldConfig(seed=seed))
    population = populate(world, preset)
    world.run_for(run_s)
    return world, population


class TestLeMix:
    def test_supersets_the_table_mix(self):
        table = dict(table_mix())
        le = dict(le_mix())
        for key, weight in table.items():
            assert le[key] == weight

    def test_adds_le_kinds(self):
        keys = dict(le_mix())
        assert "generic_fitness_tracker" in keys
        assert "generic_earbuds" in keys
        assert "galaxy_s21_dual" in keys

    def test_table_mix_untouched_by_le_kinds(self):
        # classic presets must keep their historical sampling table
        for key, _ in table_mix():
            assert "dual" not in key
            assert not key.startswith("generic_fitness")
            assert not key.startswith("generic_earbuds")
            assert not key.startswith("generic_smart")

    def test_street_fair_preset_registered(self):
        spec = get_population("street-fair")
        assert spec.size == 30
        assert dict(spec.mix) == dict(le_mix())


class TestStreetFair:
    def test_samples_le_devices(self):
        _world, population = _run("street-fair", run_s=0.0)
        summary = population.summary()
        assert summary["le_devices"] > 0
        assert summary["size"] == 30

    def test_le_only_devices_never_run_bredr_behaviour(self):
        _world, population = _run("street-fair", run_s=0.0)
        for agent in population.agents:
            if agent.device.spec.le_only:
                assert not agent.inquirer and not agent.talker
                assert agent.device.ble is not None

    def test_le_centrals_only_on_dual_mode_kinds(self):
        _world, population = _run("street-fair", run_s=0.0)
        for agent in population.agents:
            if agent.le_central:
                assert agent.device.spec.le_capable
            if agent.le_partner is not None:
                assert agent.le_partner.spec.has_le

    def test_ambient_le_traffic_flows(self):
        world, population = _run("street-fair", seed=7, run_s=120.0)
        metrics = world.obs.metrics
        assert metrics.counter("phy.le_advertisements").value > 0
        # seed 7 produces LE centrals with partners (pinned above in
        # the smoke run this test was written against)
        if population.summary()["le_centrals"]:
            assert metrics.counter("population.ambient_le_connects").value > 0

    def test_replays_identically(self):
        def fingerprint(seed):
            world, population = _run("street-fair", seed=seed, run_s=45.0)
            return (
                population.summary(),
                world.simulator.events_processed,
                [device.name for device in population.ambient],
            )

        assert fingerprint(33) == fingerprint(33)


class TestClassicPresetsUnperturbed:
    """The LE code path must not shift draws for classic crowds."""

    @pytest.mark.parametrize("preset", ["cafe", "office-floor"])
    def test_no_le_devices_sampled(self, preset):
        _world, population = _run(preset, run_s=0.0)
        assert population.summary()["le_devices"] == 0
        assert population.summary()["le_centrals"] == 0

    def test_cafe_replays_identically(self):
        def fingerprint(seed):
            world, population = _run("cafe", seed=seed, run_s=45.0)
            return (
                population.summary(),
                world.simulator.events_processed,
            )

        assert fingerprint(5) == fingerprint(5)


class TestCustomLeSpec:
    def test_all_wearable_crowd_is_quiet_on_bredr(self):
        spec = PopulationSpec(
            name="wearables",
            size=6,
            mix=(("generic_earbuds", 1.0), ("generic_fitness_tracker", 1.0)),
        )
        world, population = _run(spec, run_s=30.0)
        assert population.summary()["le_devices"] == 6
        assert world.obs.metrics.counter("phy.le_advertisements").value > 0
        for agent in population.agents:
            assert not agent.inquirer and not agent.talker
