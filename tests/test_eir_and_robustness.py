"""Tests: EIR discovery, lossy-medium failure injection, auth guards."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8
from repro.hci import commands as cmd
from repro.hci.eir import (
    build_eir,
    eir_local_name,
    eir_uuid16s,
    parse_eir,
)
from repro.hci.constants import ErrorCode


class TestEirStructures:
    def test_name_roundtrip(self):
        assert eir_local_name(build_eir(name="LG VELVET")) == "LG VELVET"

    def test_uuid_roundtrip(self):
        raw = build_eir(uuid16s=[0x1115, 0x1116, 0x112F])
        assert eir_uuid16s(raw) == [0x1115, 0x1116, 0x112F]

    def test_combined_payload(self):
        raw = build_eir(name="Phone", uuid16s=[0x1101], tx_power=4)
        assert eir_local_name(raw) == "Phone"
        assert eir_uuid16s(raw) == [0x1101]
        assert parse_eir(raw)[0x0A] == bytes([4])

    def test_long_name_gets_shortened(self):
        raw = build_eir(name="x" * 300, uuid16s=[0x1101])
        assert len(raw) <= 240
        name = eir_local_name(raw)
        assert name is not None and name.startswith("xxx")

    def test_zero_padding_tolerated(self):
        raw = build_eir(name="abc") + b"\x00" * 16
        assert eir_local_name(raw) == "abc"

    def test_missing_structures(self):
        assert eir_local_name(b"") is None
        assert eir_uuid16s(b"") == []

    @given(st.text(min_size=1, max_size=60))
    @settings(max_examples=25)
    def test_name_roundtrip_property(self, name):
        assert eir_local_name(build_eir(name=name)) == name


class TestExtendedDiscovery:
    def test_eir_discovery_carries_names(self):
        world = build_world(WorldConfig(seed=5))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        m.host.send_command(cmd.WriteInquiryMode(inquiry_mode=2))
        op = m.host.gap.start_discovery()
        world.run_for(8.0)
        assert op.success
        assert [d.name for d in op.result] == ["Nexus 5x"]
        assert m.host.gap.name_cache[c.bd_addr] == "Nexus 5x"

    def test_standard_mode_has_no_names(self):
        world = build_world(WorldConfig(seed=6))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        op = m.host.gap.start_discovery()
        world.run_for(8.0)
        assert op.success and op.result[0].name == ""


class TestLossyMedium:
    @staticmethod
    def _loss_plan(loss_rate):
        return [{"point": "phy.frame_loss", "probability": loss_rate}]

    def _pair_under_loss(self, seed, loss_rate):
        world = build_world(
            WorldConfig(seed=seed, fault_plan=self._loss_plan(loss_rate))
        )
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        return world, op

    def test_total_loss_fails_cleanly(self):
        """With a dead channel, pairing fails; nothing hangs or leaks."""
        world, op = self._pair_under_loss(seed=7, loss_rate=1.0)
        assert op.done and not op.success
        assert world.medium.frames_lost > 0

    def test_partial_loss_never_hangs(self):
        """Under 30% loss every attempt terminates (success or clean
        failure) — the failure-injection invariant."""
        for seed in range(8):
            world, op = self._pair_under_loss(seed=100 + seed, loss_rate=0.3)
            assert op.done, f"seed {seed}: pairing operation hung"
            # LMP has no retransmission in this simulation, so losing
            # nearly a third of all frames reliably kills pairing.
            assert not op.success

    def test_lossless_is_default(self):
        world = build_world(WorldConfig(seed=9))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.success
        assert world.medium.frames_lost == 0

    def test_loss_rate_shim_still_works_and_warns(self):
        """The deprecated ``medium.loss_rate`` attribute keeps working
        (routed through the fault subsystem) but warns."""
        world = build_world(WorldConfig(seed=7))
        with pytest.warns(DeprecationWarning):
            world.medium.loss_rate = 1.0
        assert world.medium.loss_rate == 1.0
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.done and not op.success
        assert world.medium.frames_lost > 0

    def test_sniffer_still_sees_lost_frames(self):
        from repro.attacks.eavesdrop import AirCapture
        from repro.faults import apply_fault_plan

        world = build_world(WorldConfig(seed=10))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        # Bring the link up cleanly first — total loss would also kill
        # the page itself — then cut the channel and pair over it.
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        apply_fault_plan(world, self._loss_plan(1.0))
        capture = AirCapture().attach(world.medium)
        m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        # Lost frames were transmitted: passive capture records them.
        assert world.medium.frames_lost == len(capture.frames) > 0


class TestAuthenticationGuard:
    def test_wedged_authentication_fails_instead_of_hanging(self):
        world = build_world(WorldConfig(seed=11))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        # Freeze everything security-related on C *and* disable the
        # controller-side timeout to prove the host guard works alone.
        c.host.drop_link_key_requests = True
        m.controller.LMP_RESPONSE_TIMEOUT  # (class default untouched)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.done and not op.success

    def test_guard_does_not_fire_on_success(self):
        world = build_world(WorldConfig(seed=12))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.success
        assert world.simulator.pending == 0  # guard event was cancelled
