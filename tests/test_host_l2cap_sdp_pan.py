"""Host tests: L2CAP channels, SDP queries and the PAN profile."""

import pytest

from repro.host.l2cap import L2capService, PSM_BNEP, PSM_SDP
from repro.host.sdp import ServiceRecord, UUID_NAP, UUID_PANU


@pytest.fixture
def connected(bonded_pair):
    """Bonded + reconnected pair (auth available on demand)."""
    world, m, c = bonded_pair
    op = m.host.gap.connect(c.bd_addr)
    world.run_for(5.0)
    assert op.success
    return world, m, c


class TestL2cap:
    def test_connect_to_registered_psm(self, connected):
        world, m, c = connected
        op = m.host.l2cap.connect(c.bd_addr, PSM_SDP)
        world.run_for(2.0)
        assert op.success
        assert op.result.state == "open"
        assert op.result.remote_cid is not None

    def test_unknown_psm_refused(self, connected):
        world, m, c = connected
        op = m.host.l2cap.connect(c.bd_addr, 0x0099)
        world.run_for(2.0)
        assert op.done and not op.success

    def test_connect_without_acl_fails_fast(self, bonded_pair):
        world, m, c = bonded_pair
        op = m.host.l2cap.connect(c.bd_addr, PSM_SDP)
        assert op.done and not op.success

    def test_data_roundtrip_on_echo_service(self, connected):
        world, m, c = connected
        received = []

        def echo(channel, payload):
            c.host.l2cap.send(channel, payload.upper())

        c.host.l2cap.register_service(
            L2capService(psm=0x1003, on_data=echo)
        )
        op = m.host.l2cap.connect(
            c.bd_addr, 0x1003, on_data=lambda ch, data: received.append(data)
        )
        world.run_for(2.0)
        m.host.l2cap.send(op.result, b"hello")
        world.run_for(2.0)
        assert received == [b"HELLO"]

    def test_link_down_closes_channels(self, connected):
        world, m, c = connected
        op = m.host.l2cap.connect(c.bd_addr, PSM_SDP)
        world.run_for(2.0)
        m.host.gap.disconnect(c.bd_addr)
        world.run_for(2.0)
        assert op.result.state == "closed"

    def test_disconnect_channel(self, connected):
        world, m, c = connected
        op = m.host.l2cap.connect(c.bd_addr, PSM_SDP)
        world.run_for(2.0)
        m.host.l2cap.disconnect(op.result)
        world.run_for(2.0)
        assert op.result.state == "closed"


class TestSdp:
    def test_wildcard_query_lists_services(self, connected):
        world, m, c = connected
        op = m.host.sdp.query(c.bd_addr)
        world.run_for(3.0)
        assert op.success
        uuids = {record.uuid16 for record in op.result}
        assert {UUID_PANU, UUID_NAP} <= uuids

    def test_specific_uuid_query(self, connected):
        world, m, c = connected
        op = m.host.sdp.query(c.bd_addr, UUID_PANU)
        world.run_for(3.0)
        assert op.success
        assert [r.uuid16 for r in op.result] == [UUID_PANU]

    def test_absent_uuid_yields_empty(self, connected):
        world, m, c = connected
        op = m.host.sdp.query(c.bd_addr, 0x1108)
        world.run_for(3.0)
        assert op.success and op.result == []

    def test_sdp_needs_no_authentication(self, device_pair):
        """GAP's laxity: SDP works on a fresh, unauthenticated link."""
        world, m, c = device_pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        op = m.host.sdp.query(c.bd_addr)
        world.run_for(3.0)
        assert op.success
        assert not m.host.gap.connections[c.bd_addr].authenticated

    def test_custom_record_registration(self, connected):
        world, m, c = connected
        c.host.sdp.register(ServiceRecord(0x111E, "Hands-Free unit"))
        op = m.host.sdp.query(c.bd_addr, 0x111E)
        world.run_for(3.0)
        assert [r.name for r in op.result] == ["Hands-Free unit"]


class TestPan:
    def test_pan_connect_with_valid_bond(self, connected):
        world, m, c = connected
        op = m.host.pan.connect(c.bd_addr)
        world.run_for(10.0)
        assert op.success
        assert m.host.pan.is_connected(c.bd_addr)
        assert c.host.pan.is_connected(m.bd_addr)

    def test_pan_triggers_authentication(self, connected):
        """The BNEP PSM requires authentication: connecting runs LMP."""
        world, m, c = connected
        assert not m.host.gap.connections[c.bd_addr].authenticated
        m.host.pan.connect(c.bd_addr)
        world.run_for(10.0)
        # C (server side) enforced security: it authenticated M.
        assert c.host.gap.connections[m.bd_addr].authenticated

    def test_pan_fails_without_shared_key(self, device_pair):
        world, m, c = device_pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        op = m.host.pan.connect(c.bd_addr)
        world.run_for(10.0)
        assert op.done and not op.success
        assert not c.host.pan.is_connected(m.bd_addr)

    def test_pan_creates_acl_if_absent(self, bonded_pair):
        world, m, c = bonded_pair
        assert not m.host.gap.is_connected(c.bd_addr)
        op = m.host.pan.connect(c.bd_addr)
        world.run_for(10.0)
        assert op.success
