"""Unit tests for the four built-in streaming detectors."""

from __future__ import annotations

import itertools

import pytest

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.controller import lmp
from repro.core.types import BdAddr, LinkKey
from repro.detect import (
    DetectionEngine,
    EntropyDowngradeDetector,
    LinkKeyAnomalyDetector,
    PageBlockingDetector,
    SurveillanceDetector,
    create_detector,
    detector_names,
    replay_capture,
)
from repro.detect.feed import DetectionEvent
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import ErrorCode
from repro.mitigations.detector import detect_page_blocking
from repro.phy.medium import AirFrame
from repro.sim.trace import TraceRecord

PEER = BdAddr(b"\x00\x00\x00\x00\x00\x07")
_seq = itertools.count(1)


def _hci(time, packet, frame_no):
    return DetectionEvent(
        time=time,
        seq=next(_seq),
        monitor="M",
        channel="hci",
        kind=type(packet).__name__,
        packet=packet,
        frame_no=frame_no,
    )


def _air(time, payload, sender="A"):
    return DetectionEvent(
        time=time,
        seq=next(_seq),
        monitor="phy",
        channel="air",
        kind="lmp",
        frame=AirFrame(kind="lmp", payload=payload),
        link_id=1,
        sender=sender,
    )


def _trace(time, category, **detail):
    return DetectionEvent(
        time=time,
        seq=next(_seq),
        monitor="phy",
        channel="trace",
        kind=category,
        record=TraceRecord(
            time=time, source="phy", category=category, message="", detail=detail
        ),
    )


def _inbound_pairing_events():
    return [
        _hci(
            1.0,
            evt.ConnectionRequest(bd_addr=PEER, class_of_device=0, link_type=1),
            1,
        ),
        _hci(
            1.1,
            evt.ConnectionComplete(
                status=0,
                connection_handle=9,
                bd_addr=PEER,
                link_type=1,
                encryption_enabled=0,
            ),
            2,
        ),
        _hci(2.0, cmd.AuthenticationRequested(connection_handle=9), 3),
    ]


class TestPageBlockingDetector:
    def test_flags_responder_connection_initiator_pairing(self):
        detector = PageBlockingDetector()
        alerts = []
        for event in _inbound_pairing_events():
            alerts.extend(detector.on_event(event))
        assert len(alerts) == 1
        assert alerts[0].score == 0.7  # responder-pairing + no-create
        assert alerts[0].peer == str(PEER)
        assert detector.findings[0].connection_request_frame == 1
        assert detector.findings[0].authentication_frame == 3

    def test_late_nino_upgrades_the_finding(self):
        detector = PageBlockingDetector()
        alerts = []
        for event in _inbound_pairing_events():
            alerts.extend(detector.on_event(event))
        alerts.extend(
            detector.on_event(
                _hci(
                    2.5,
                    evt.IoCapabilityResponse(
                        bd_addr=PEER,
                        io_capability=3,  # NoInputNoOutput
                        oob_data_present=0,
                        authentication_requirements=0,
                    ),
                    4,
                )
            )
        )
        assert [a.score for a in alerts] == [0.7, 0.95]
        assert len(detector.findings) == 1  # upgraded, not duplicated
        assert len(detector.findings[0].indicators) == 3

    def test_outbound_connection_is_not_flagged(self):
        detector = PageBlockingDetector()
        events = [
            _hci(
                0.5,
                cmd.CreateConnection(
                    bd_addr=PEER,
                    packet_type=0xCC18,
                    page_scan_repetition_mode=1,
                    reserved=0,
                    clock_offset=0,
                    allow_role_switch=1,
                ),
                1,
            ),
            _hci(
                1.0,
                evt.ConnectionComplete(
                    status=0,
                    connection_handle=9,
                    bd_addr=PEER,
                    link_type=1,
                    encryption_enabled=0,
                ),
                2,
            ),
            _hci(2.0, cmd.AuthenticationRequested(connection_handle=9), 3),
        ]
        alerts = []
        for event in events:
            alerts.extend(detector.on_event(event))
        assert alerts == []

    def test_streaming_equals_offline_on_a_real_attack(self):
        """The live engine and the offline replay share one signature
        implementation — their verdicts must agree exactly."""
        world = build_world(WorldConfig(seed=41))
        m, c, a = standard_cast(world)
        engine = DetectionEngine().attach_world(world, roles=["M"])
        report = PageBlockingAttack(world, a, c, m).run()
        assert report.success
        engine.finish()

        live = [x for x in engine.alerts if x.detector == "page-blocking"]
        offline = replay_capture(report.m_dump).by_detector("page-blocking")
        assert [x.score for x in live] == [x.score for x in offline]
        assert [x.peer for x in live] == [x.peer for x in offline]
        # ... and both match the forensic API's findings.
        findings = detect_page_blocking(report.m_dump)
        assert len(findings) == 1
        assert findings[0].confidence == "high"
        assert max(x.score for x in live) == 0.95


class TestLinkKeyAnomalyDetector:
    def _serve_key(self, detector, inbound=True):
        alerts = []
        if inbound:
            alerts.extend(
                detector.on_event(
                    _hci(
                        1.0,
                        evt.ConnectionRequest(
                            bd_addr=PEER, class_of_device=0, link_type=1
                        ),
                        1,
                    )
                )
            )
        alerts.extend(
            detector.on_event(
                _hci(
                    1.1,
                    evt.ConnectionComplete(
                        status=0,
                        connection_handle=9,
                        bd_addr=PEER,
                        link_type=1,
                        encryption_enabled=0,
                    ),
                    2,
                )
            )
        )
        alerts.extend(
            detector.on_event(
                _hci(
                    2.0,
                    cmd.LinkKeyRequestReply(
                        bd_addr=PEER, link_key=LinkKey(b"\x11" * 16)
                    ),
                    3,
                )
            )
        )
        return alerts

    def test_extraction_signature(self):
        detector = LinkKeyAnomalyDetector()
        alerts = self._serve_key(detector)
        assert [a.score for a in alerts] == [0.35]  # informational
        alerts = detector.on_event(
            _hci(
                5.0,
                evt.AuthenticationComplete(
                    status=ErrorCode.LMP_RESPONSE_TIMEOUT, connection_handle=9
                ),
                4,
            )
        )
        assert [a.score for a in alerts] == [0.9]
        assert "extraction signature" in alerts[0].message

    def test_stall_via_disconnect_reason(self):
        detector = LinkKeyAnomalyDetector()
        self._serve_key(detector, inbound=False)
        alerts = detector.on_event(
            _hci(
                5.0,
                evt.DisconnectionComplete(
                    status=0,
                    connection_handle=9,
                    reason=ErrorCode.LMP_RESPONSE_TIMEOUT,
                ),
                4,
            )
        )
        assert [a.score for a in alerts] == [0.9]

    def test_successful_auth_clears_suspicion(self):
        detector = LinkKeyAnomalyDetector()
        self._serve_key(detector, inbound=False)
        assert (
            detector.on_event(
                _hci(
                    3.0,
                    evt.AuthenticationComplete(status=0, connection_handle=9),
                    4,
                )
            )
            == []
        )
        # A later timeout (unrelated) no longer implicates the key.
        assert (
            detector.on_event(
                _hci(
                    9.0,
                    evt.DisconnectionComplete(
                        status=0,
                        connection_handle=9,
                        reason=ErrorCode.LMP_RESPONSE_TIMEOUT,
                    ),
                    5,
                )
            )
            == []
        )

    def test_same_served_key_alerts_once(self):
        detector = LinkKeyAnomalyDetector()
        self._serve_key(detector, inbound=False)
        first = detector.on_event(
            _hci(
                5.0,
                evt.AuthenticationComplete(
                    status=ErrorCode.LMP_RESPONSE_TIMEOUT, connection_handle=9
                ),
                4,
            )
        )
        second = detector.on_event(
            _hci(
                6.0,
                evt.DisconnectionComplete(
                    status=0,
                    connection_handle=9,
                    reason=ErrorCode.LMP_RESPONSE_TIMEOUT,
                ),
                5,
            )
        )
        assert len(first) == 1 and second == []


class TestEntropyDowngradeDetector:
    def test_low_proposal_then_acceptance(self):
        detector = EntropyDowngradeDetector()
        alerts = detector.on_event(
            _air(1.0, lmp.LmpEncryptionKeySizeReq(size=1))
        )
        assert [a.score for a in alerts] == [0.6]
        alerts = detector.on_event(
            _air(1.1, lmp.LmpEncryptionKeySizeRes(size=1, accepted=True), "C")
        )
        assert [a.score for a in alerts] == [0.95]
        assert alerts[0].detail["size"] == 1

    def test_compliant_sizes_stay_silent(self):
        detector = EntropyDowngradeDetector()
        assert detector.on_event(
            _air(1.0, lmp.LmpEncryptionKeySizeReq(size=16))
        ) == []
        assert detector.on_event(
            _air(1.1, lmp.LmpEncryptionKeySizeRes(size=7, accepted=True))
        ) == []

    def test_rejected_low_size_is_not_an_acceptance(self):
        detector = EntropyDowngradeDetector()
        assert detector.on_event(
            _air(1.0, lmp.LmpEncryptionKeySizeRes(size=1, accepted=False))
        ) == []

    def test_repeat_proposals_dedup(self):
        detector = EntropyDowngradeDetector()
        detector.on_event(_air(1.0, lmp.LmpEncryptionKeySizeReq(size=1)))
        assert detector.on_event(
            _air(2.0, lmp.LmpEncryptionKeySizeReq(size=1))
        ) == []

    def test_min_key_size_is_configurable(self):
        detector = EntropyDowngradeDetector(min_key_size=17)
        alerts = detector.on_event(
            _air(1.0, lmp.LmpEncryptionKeySizeReq(size=16))
        )
        assert [a.score for a in alerts] == [0.6]


class TestSurveillanceDetector:
    def test_inquiry_flood_crosses_threshold(self):
        detector = SurveillanceDetector()
        alerts = []
        for i in range(5):
            alerts.extend(
                detector.on_event(
                    _trace(float(i), "phy-inquiry", initiator="A")
                )
            )
        # threshold 4: alert at the 4th and 5th inquiry, ramping score
        assert [round(a.score, 2) for a in alerts] == [0.6, 0.7]
        assert alerts[0].detail["initiator"] == "A"

    def test_window_expiry_forgets_old_activity(self):
        detector = SurveillanceDetector(window_s=10.0)
        alerts = []
        for i in range(8):  # one inquiry every 6s: never 4 in any 10s
            alerts.extend(
                detector.on_event(
                    _trace(6.0 * i, "phy-inquiry", initiator="A")
                )
            )
        assert alerts == []

    def test_initiators_are_counted_separately(self):
        detector = SurveillanceDetector()
        alerts = []
        for i in range(3):
            alerts.extend(
                detector.on_event(_trace(float(i), "phy-inquiry", initiator="A"))
            )
            alerts.extend(
                detector.on_event(_trace(float(i), "phy-inquiry", initiator="B"))
            )
        assert alerts == []  # 3 each: neither radio crossed 4

    def test_page_flood_uses_its_own_threshold(self):
        detector = SurveillanceDetector()
        alerts = []
        for i in range(6):
            alerts.extend(
                detector.on_event(_trace(float(i), "phy-page", initiator="A"))
            )
        assert len(alerts) == 1 and alerts[0].detail["what"] == "page"


class TestRegistry:
    def test_all_four_registered(self):
        assert {
            "entropy-downgrade",
            "link-key-anomaly",
            "page-blocking",
            "surveillance",
        } <= set(detector_names())

    def test_create_detector_applies_config(self):
        detector = create_detector("surveillance", inquiry_threshold=2)
        assert detector.config["inquiry_threshold"] == 2
        assert detector.config["window_s"] == 30.0  # defaults survive

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config"):
            create_detector("page-blocking", bogus=1)

    def test_unknown_detector_name_rejected(self):
        with pytest.raises(KeyError, match="unknown detector"):
            create_detector("nonesuch")
