"""Tests: fault plans through the campaign engine — retry replay,
cache identity and cross-worker determinism."""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultCache,
    run_trial,
    trial_key,
)
from repro.campaign.trial import Scenario, register_scenario
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8

LOSSY_PLAN = [
    {"point": "phy.frame_loss", "probability": 0.05},
    {
        "point": "phy.latency_jitter",
        "probability": 0.25,
        "params": {"jitter_s": 0.002},
    },
]


class _LossyPairScenario(Scenario):
    """Test-only scenario: one pairing attempt under the world's plan.

    With ``fail_first_attempt`` the execute hook raises *after* the
    simulation has consumed fault-stream draws — exactly the shape of
    a mid-trial crash the campaign retry path has to recover from.
    """

    name = "test-lossy-pair"
    description = "test fixture: pairing under an ambient fault plan"
    default_params = {"fail_first_attempt": False}

    #: per-process attempt counts, keyed by seed (reset per test)
    attempts = {}

    def execute(self, world, params, seed):
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        if params["fail_first_attempt"]:
            count = self.attempts.get(seed, 0) + 1
            self.attempts[seed] = count
            if count == 1:
                raise RuntimeError("injected first-attempt flake")
        detail = {
            "paired": bool(op.success),
            "frames_lost": world.medium.frames_lost,
        }
        return bool(op.success), "paired" if op.success else "lost", detail


register_scenario(_LossyPairScenario)


class TestRetryReplay:
    def test_retried_trial_replays_the_same_fault_sequence(self):
        """Satellite regression: a retry rebuilds the world, and the
        fresh build re-derives the fault streams from the trial seed —
        attempt 2 must see the exact fault sequence attempt 1 saw."""
        for seed in (3, 7):
            _LossyPairScenario.attempts = {}
            clean, _ = run_trial(
                "test-lossy-pair", seed, fault_plan=LOSSY_PLAN
            )
            flaky, _ = run_trial(
                "test-lossy-pair",
                seed,
                {"fail_first_attempt": True},
                max_attempts=2,
                fault_plan=LOSSY_PLAN,
            )
            assert clean.attempts == 1
            assert flaky.attempts == 2
            assert flaky.error is None
            assert flaky.detail["frames_lost"] == clean.detail["frames_lost"]
            assert (
                flaky.detail["faults_injected"]
                == clean.detail["faults_injected"]
            )

    def test_exhausted_retries_still_report_fault_summary(self):
        class _AlwaysFails(Scenario):
            name = "test-always-fails"
            description = "test fixture"
            default_params = {}

            def execute(self, world, params, seed):
                world.run_for(1.0)
                raise RuntimeError("doomed")

        register_scenario(_AlwaysFails)
        result, _ = run_trial(
            "test-always-fails",
            seed=1,
            max_attempts=2,
            fault_plan=[{"point": "phy.frame_loss", "probability": 0.5}],
        )
        assert result.outcome == "error" and result.attempts == 2
        assert "faults_injected" in result.detail


class TestCacheIdentity:
    def _runner(self, tmp_path):
        return CampaignRunner(
            workers=1, timeout_s=None, cache=ResultCache(tmp_path / "cache")
        )

    def test_trial_key_depends_on_fault_plan(self):
        base = trial_key("page-blocking", 1, {}, version="v")
        with_plan = trial_key(
            "page-blocking", 1, {}, version="v", fault_plan=LOSSY_PLAN
        )
        other_plan = trial_key(
            "page-blocking",
            1,
            {},
            version="v",
            fault_plan=[{"point": "phy.frame_loss", "probability": 0.06}],
        )
        assert len({base, with_plan, other_plan}) == 3

    def test_faulted_sweep_never_reuses_no_fault_entries(self, tmp_path):
        """Satellite regression: the disk cache hashes the plan, so a
        degraded sweep recomputes instead of serving clean results."""
        runner = self._runner(tmp_path)
        seeds = [0, 1, 2]
        clean = CampaignSpec("baseline-race", seeds=seeds)
        faulted = CampaignSpec(
            "baseline-race", seeds=seeds, fault_plan=LOSSY_PLAN
        )

        first = runner.run(clean)
        assert (first.cache_hits, first.cache_misses) == (0, 3)
        warm = runner.run(clean)
        assert (warm.cache_hits, warm.cache_misses) == (3, 0)

        crossed = runner.run(faulted)
        assert (crossed.cache_hits, crossed.cache_misses) == (0, 3)
        warm_faulted = runner.run(faulted)
        assert (warm_faulted.cache_hits, warm_faulted.cache_misses) == (3, 0)

        # and the cached faulted results still carry the fault summary
        assert all(
            "faults_injected" in r.detail for r in warm_faulted.results
        )

    def test_plan_spelling_does_not_split_the_cache(self, tmp_path):
        """List and FaultPlan spellings normalise to one cache key."""
        from repro.faults import FaultPlan

        runner = self._runner(tmp_path)
        as_list = CampaignSpec(
            "baseline-race", seeds=[5], fault_plan=LOSSY_PLAN
        )
        as_plan = CampaignSpec(
            "baseline-race",
            seeds=[5],
            fault_plan=FaultPlan.coerce(LOSSY_PLAN),
        )
        runner.run(as_list)
        warm = runner.run(as_plan)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)


class TestCrossWorkerDeterminism:
    SEEDS = list(range(4))

    @staticmethod
    def _fingerprint(result):
        return json.dumps(
            [
                {
                    "seed": r.seed,
                    "success": r.success,
                    "outcome": r.outcome,
                    "sim_time_s": r.sim_time_s,
                    "attempts": r.attempts,
                    "detail": r.detail,
                }
                for r in result.results
            ],
            sort_keys=True,
        )

    def test_two_runs_are_byte_identical(self):
        spec = CampaignSpec(
            "degraded-race", seeds=self.SEEDS, fault_plan=LOSSY_PLAN
        )
        runner = CampaignRunner(workers=1, timeout_s=None)
        assert self._fingerprint(runner.run(spec)) == self._fingerprint(
            runner.run(spec)
        )

    def test_one_vs_four_workers_are_byte_identical(self):
        spec = CampaignSpec(
            "degraded-race", seeds=self.SEEDS, fault_plan=LOSSY_PLAN
        )
        serial = CampaignRunner(workers=1, timeout_s=None).run(spec)
        parallel = CampaignRunner(workers=4, timeout_s=None).run(spec)
        assert self._fingerprint(serial) == self._fingerprint(parallel)
        # wall-clock histograms are inherently machine-dependent; the
        # logical counters must merge identically regardless of sharding
        assert (
            serial.metrics.snapshot()["counters"]
            == parallel.metrics.snapshot()["counters"]
        )
