"""Campaign-scale tests for the detection scenarios.

Covers the ISSUE acceptance criteria: determinism (same seed, same
detail; 1-worker and 4-worker runs byte-identical), the clean-world
quality gate (page-blocking TPR >= 0.95 at FPR <= 0.05), and graceful
degradation under the canned lossy fault plan.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.detection import DETECTOR_FOR_ATTACK
from repro.campaign.runner import run_trial
from repro.detect import operating_point, roc_curve
from repro.faults import FaultPlan

TRIALS = 12


def _fingerprint(result):
    # wall_time_s varies run to run; everything else must not.
    return (result.seed, result.success, result.outcome, result.detail)


def _campaign(scenario, seeds, workers=1, **kwargs):
    runner = CampaignRunner(workers=workers)
    return runner.run(CampaignSpec(scenario, seeds=seeds, **kwargs))


class TestDetectionAttackScenario:
    @pytest.mark.parametrize("attack", sorted(DETECTOR_FOR_ATTACK))
    def test_each_attack_class_is_detected(self, attack):
        result, _ = run_trial(
            "detection-attack", 11, params={"attack": attack}
        )
        assert result.error is None
        assert result.outcome == "detected"
        expected = DETECTOR_FOR_ATTACK[attack]
        assert result.detail["scores"][expected] >= 0.7
        assert expected in result.detail["first_alert_s"]

    def test_unknown_attack_is_a_trial_error(self):
        result, _ = run_trial(
            "detection-attack", 11, params={"attack": "nonesuch"}
        )
        assert result.error is not None and "unknown attack" in result.error

    def test_respond_blocks_the_pairing_but_still_detects(self):
        result, _ = run_trial(
            "detection-attack",
            11,
            params={"attack": "page-blocking", "respond": True},
        )
        assert result.success and result.outcome == "detected"
        assert result.detail["attack_succeeded"] is False

    def test_same_seed_is_deterministic(self):
        first, _ = run_trial(
            "detection-attack", 19, params={"attack": "extraction"}
        )
        second, _ = run_trial(
            "detection-attack", 19, params={"attack": "extraction"}
        )
        assert _fingerprint(first) == _fingerprint(second)


class TestDetectionBenignScenario:
    def test_benign_traffic_is_clean(self):
        result, _ = run_trial("detection-benign", 23)
        assert result.error is None
        assert result.outcome == "clean"
        assert result.detail["paired"] is True
        assert result.detail["false_alerts"] == []

    def test_same_seed_is_deterministic(self):
        first, _ = run_trial("detection-benign", 29)
        second, _ = run_trial("detection-benign", 29)
        assert _fingerprint(first) == _fingerprint(second)


class TestWorkerParity:
    def test_one_and_four_worker_runs_are_identical(self):
        seeds = range(500, 508)
        serial = _campaign(
            "detection-attack", seeds, workers=1,
            params={"attack": "page-blocking"},
        )
        parallel = _campaign(
            "detection-attack", seeds, workers=4,
            params={"attack": "page-blocking"},
        )
        assert [_fingerprint(r) for r in serial.results] == [
            _fingerprint(r) for r in parallel.results
        ]


class TestQualityGate:
    def test_page_blocking_tpr_and_fpr_on_clean_worlds(self):
        attack = _campaign(
            "detection-attack",
            range(600, 600 + TRIALS),
            params={"attack": "page-blocking"},
        )
        benign = _campaign(
            "detection-benign", range(700, 700 + TRIALS)
        )
        assert not attack.errors and not benign.errors
        points = roc_curve(
            [r.detail for r in attack.results],
            [r.detail for r in benign.results],
            "page-blocking",
        )
        best = operating_point(points, max_fpr=0.05)
        assert best is not None, "no operating point under the FPR ceiling"
        assert best.tpr >= 0.95
        assert best.fpr <= 0.05
        assert best.mean_latency_s is not None and best.mean_latency_s > 0


class TestLossyDegradation:
    def test_detection_survives_the_lossy_plan(self):
        """Under ``examples/plans/lossy.json`` the detectors may miss
        (degraded TPR is expected) but must never crash a trial, and
        the run must stay deterministic."""
        plan = FaultPlan.from_file("examples/plans/lossy.json")
        first = _campaign(
            "detection-attack",
            range(800, 806),
            params={"attack": "page-blocking"},
            fault_plan=plan,
        )
        assert not first.errors
        for result in first.results:
            assert result.outcome in ("detected", "missed")
            assert "faults_injected" in result.detail
        second = _campaign(
            "detection-attack",
            range(800, 806),
            params={"attack": "page-blocking"},
            fault_plan=plan,
        )
        assert [_fingerprint(r) for r in first.results] == [
            _fingerprint(r) for r in second.results
        ]

    def test_benign_survives_the_lossy_plan(self):
        plan = FaultPlan.from_file("examples/plans/lossy.json")
        campaign = _campaign(
            "detection-benign", range(900, 906), fault_plan=plan
        )
        assert not campaign.errors
        for result in campaign.results:
            assert result.outcome in ("clean", "false_alarm")
