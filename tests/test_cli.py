"""Tests for the ``blap`` command-line tools."""

import pytest

from repro.cli import main
from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.sim.eventloop import Simulator
from repro.snoop.hcidump import HciDump
from repro.transport.uart import UartH4Transport
from repro.transport.usb import UsbSniffer, UsbTransport

ADDR = BdAddr.parse("48:90:11:22:33:44")
KEY = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")


@pytest.fixture
def btsnoop_file(tmp_path):
    sim = Simulator()
    transport = UartH4Transport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    dump = HciDump().attach(transport)
    transport.send_from_host(cmd.AuthenticationRequested(connection_handle=6))
    transport.send_from_controller(evt.LinkKeyRequest(bd_addr=ADDR))
    transport.send_from_host(cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY))
    sim.run()
    path = tmp_path / "btsnoop_hci.log"
    path.write_bytes(dump.to_btsnoop_bytes())
    return path


@pytest.fixture
def usb_stream_file(tmp_path):
    sim = Simulator()
    transport = UsbTransport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    sniffer = UsbSniffer().attach(transport)
    transport.send_from_host(cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY))
    sim.run()
    path = tmp_path / "usb_capture.bin"
    path.write_bytes(sniffer.raw_stream())
    return path


class TestExtract:
    def test_extract_finds_key(self, btsnoop_file, capsys):
        assert main(["extract", str(btsnoop_file)]) == 0
        out = capsys.readouterr().out
        assert KEY.hex() in out
        assert str(ADDR) in out

    def test_extract_clean_capture_fails(self, tmp_path, capsys):
        sim = Simulator()
        transport = UartH4Transport(sim)
        transport.attach_host(lambda raw: None)
        transport.attach_controller(lambda raw: None)
        dump = HciDump().attach(transport)
        transport.send_from_host(cmd.Reset())
        sim.run()
        path = tmp_path / "clean.log"
        path.write_bytes(dump.to_btsnoop_bytes())
        assert main(["extract", str(path)]) == 1


class TestDump:
    def test_dump_renders_table(self, btsnoop_file, capsys):
        assert main(["dump", str(btsnoop_file)]) == 0
        out = capsys.readouterr().out
        assert "HCI_Link_Key_Request_Reply" in out
        assert "HCI_Authentication_Requested" in out

    def test_dump_row_limit(self, btsnoop_file, capsys):
        main(["dump", str(btsnoop_file), "--rows", "1"])
        out = capsys.readouterr().out
        assert "HCI_Link_Key_Request_Reply" not in out


class TestUsb:
    def test_usb_extract(self, usb_stream_file, capsys):
        assert main(["usb-extract", str(usb_stream_file)]) == 0
        assert KEY.hex() in capsys.readouterr().out

    def test_bin2hex(self, usb_stream_file, capsys):
        assert main(["bin2hex", str(usb_stream_file)]) == 0
        assert "0b 04 16" in capsys.readouterr().out.replace("\n", " ")


class TestPcap:
    def test_pcap_conversion(self, btsnoop_file, tmp_path, capsys):
        out_path = tmp_path / "capture.pcap"
        assert main(["pcap", str(btsnoop_file), "-o", str(out_path)]) == 0
        raw = out_path.read_bytes()
        from repro.snoop.pcap import (
            LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR,
            parse_pcap,
        )

        linktype, packets = parse_pcap(raw)
        assert linktype == LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR
        assert len(packets) == 3


class TestIocap:
    def test_iocap_default(self, capsys):
        assert main(["iocap"]) == 0
        assert "just_works" in capsys.readouterr().out

    def test_iocap_version_42(self, capsys):
        assert main(["iocap", "--version", "4.2"]) == 0
        assert "v4.2" in capsys.readouterr().out


class TestTimeline:
    def test_table_output(self, capsys):
        assert main(["timeline", "page-blocking", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "source" in out.splitlines()[0]
        assert "attack.page_blocking" in out

    def test_jsonl_is_ordered_and_cross_layer(self, capsys):
        import json

        assert main(
            ["timeline", "page-blocking", "--seed", "3", "--format", "jsonl"]
        ) == 0
        payloads = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        keys = [(p["t"], p["seq"]) for p in payloads]
        assert keys == sorted(keys)
        # the merge interleaves the phy layer with per-device streams
        assert {"phy", "M", "C", "A"} <= {p["source"] for p in payloads}
        categories = {p["category"] for p in payloads}
        assert "phy-page" in categories
        assert "hci-cmd" in categories
        assert "host-cmd" in categories
        assert "span" in categories
        for payload in payloads:
            assert payload["btsnoop_us"] >= 62_168_256_000_000_000

    def test_chrome_trace_to_file(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert main(
            [
                "timeline",
                "page-blocking",
                "--seed",
                "3",
                "--format",
                "chrome",
                "-o",
                str(out_path),
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        events = trace["traceEvents"]
        real = [e for e in events if e["ph"] != "M"]
        assert real, "no events exported"
        for event in real:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["pid"], int)
            assert "ts" in event
        ts = [e["ts"] for e in real]
        assert ts == sorted(ts)
        sources = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert len(sources) >= 3
        assert any(e["ph"] == "X" for e in real)  # spans made it across

    def test_limit_and_filters(self, capsys):
        import json

        assert main(
            [
                "timeline",
                "extraction",
                "--seed",
                "3",
                "--format",
                "jsonl",
                "--source",
                "phy",
                "--limit",
                "5",
            ]
        ) == 0
        payloads = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert 0 < len(payloads) <= 5
        assert all(p["source"] == "phy" for p in payloads)


class TestDemoExitCodes:
    def test_successful_demo_exits_zero(self, capsys):
        assert main(["demo", "baseline-race", "--seed", "60"]) == 0
        assert "success : True" in capsys.readouterr().out

    def test_failed_demo_exits_nonzero(self, capsys):
        # seed 61 loses the connection race — the demo must say so in
        # its exit code, not just in prose.
        assert main(["demo", "baseline-race", "--seed", "61"]) == 1
        out = capsys.readouterr().out
        assert "success : False" in out

    def test_every_scenario_is_a_demo(self, capsys):
        assert main(["demo", "pin-crack", "--seed", "2", "--param", "pin=0007"]) == 0
        out = capsys.readouterr().out
        assert "outcome : pin_recovered" in out


class TestCampaignCli:
    def test_run_summary_and_exit_zero(self, capsys):
        assert main(
            ["campaign", "run", "extraction", "--trials", "2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "extraction: 2/2 succeeded (100%)" in out

    def test_run_json_output(self, capsys):
        import json

        assert main(
            [
                "campaign", "run", "baseline-race",
                "--trials", "3", "--seed-base", "60", "--no-cache", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials"] == 3
        assert len(payload["results"]) == 3
        assert payload["results"][0]["seed"] == 60

    def test_param_override(self, capsys):
        assert main(
            [
                "campaign", "run", "baseline-race",
                "--trials", "2", "--no-cache",
                "--param", "m_spec=galaxy_s8_android9",
            ]
        ) == 0

    def test_unknown_param_exits_nonzero(self, capsys):
        assert main(
            [
                "campaign", "run", "baseline-race",
                "--trials", "1", "--no-cache", "--param", "typo=1",
            ]
        ) == 1

    def test_cache_roundtrip(self, tmp_path, capsys):
        argv = [
            "campaign", "run", "extraction", "--trials", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "cache 0 hit / 2 miss" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache 2 hit / 0 miss" in capsys.readouterr().out

    def test_list_names_every_scenario(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "baseline-race", "page-blocking", "extraction",
            "exfiltration", "eavesdrop", "knob", "pin-crack",
        ):
            assert name in out

    def test_table1_reproduces(self, capsys):
        assert main(["campaign", "table1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.count("YES") == 9

    def test_table2_smoke_reproduces(self, capsys):
        assert main(
            ["campaign", "table2", "--trials", "8", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out
        assert "112 trials" in out


class TestDemos:
    def test_demo_extraction(self, capsys):
        assert main(["demo", "extraction", "--seed", "3"]) == 0
        assert "matches truth : True" in capsys.readouterr().out

    def test_demo_page_blocking(self, capsys):
        assert main(["demo", "page-blocking", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "MITM connection : True" in out
        assert "HCI_Connection_Request" in out

    def test_demo_exfiltration(self, capsys):
        assert main(["demo", "exfiltration", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Alice Example" in out
        assert "silent (no popup on victim): True" in out


class TestCampaignTelemetryCli:
    def test_run_streams_telemetry_by_default(self, capsys):
        import json
        import os
        from pathlib import Path

        assert main(
            [
                "campaign", "run", "extraction", "--trials", "2",
                "--no-cache", "--quiet", "--run-id", "smoke",
            ]
        ) == 0
        err = capsys.readouterr().err
        run_dir = Path(os.environ["BLAP_RUNS_DIR"]) / "smoke"
        assert f"telemetry: {run_dir / 'telemetry.jsonl'}" in err
        lines = (run_dir / "telemetry.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["scenario"] == "extraction"
                   for line in lines)
        assert (run_dir / "run.json").exists()

    def test_quiet_mode_emits_start_and_end_only(self, capsys):
        assert main(
            [
                "campaign", "run", "extraction", "--trials", "3",
                "--no-cache", "--quiet", "--run-id", "q",
            ]
        ) == 0
        err_lines = capsys.readouterr().err.splitlines()
        # start, final summary, telemetry path pointer
        assert len(err_lines) == 3
        assert "0/3 trials started" in err_lines[0]
        assert "3/3 trials" in err_lines[1]

    def test_no_telemetry_opt_out(self, capsys):
        import os
        from pathlib import Path

        assert main(
            [
                "campaign", "run", "extraction", "--trials", "1",
                "--no-cache", "--no-telemetry",
            ]
        ) == 0
        assert "telemetry:" not in capsys.readouterr().err
        assert not Path(os.environ["BLAP_RUNS_DIR"]).exists()


class TestReportCli:
    def test_report_is_deterministic_from_cache(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        argv = [
            "report", "--trials", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "-o", str(out_path),
        ]
        assert main(argv) == 0
        first = out_path.read_bytes()
        assert main(argv) == 0
        assert out_path.read_bytes() == first
        text = first.decode()
        assert "# BLAP campaign run report" in text
        assert "## Table I" in text and "## Table II" in text
        assert f"wrote report to {out_path}" in capsys.readouterr().out

    def test_report_html_to_stdout(self, tmp_path, capsys):
        assert main(
            [
                "report", "--trials", "1", "--html",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("<!doctype html>")
        assert "<h2>Table II" in out


class TestBenchCli:
    @staticmethod
    def _write(directory, name, data):
        import json

        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(json.dumps(data))

    def test_compare_flags_injected_regression(self, tmp_path, capsys):
        self._write(tmp_path / "cur", "sim", {"loop": {"wall_s": 1.5}})
        self._write(tmp_path / "base", "sim", {"loop": {"wall_s": 1.0}})
        code = main(
            [
                "bench", "compare", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION sim/loop/wall_s: 1 -> 1.5 (+50%" in out

    def test_compare_clean_baseline_exits_zero(self, tmp_path, capsys):
        self._write(tmp_path / "cur", "sim", {"loop": {"wall_s": 1.1}})
        self._write(tmp_path / "base", "sim", {"loop": {"wall_s": 1.0}})
        assert main(
            [
                "bench", "compare", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_threshold_flag(self, tmp_path):
        self._write(tmp_path / "cur", "sim", {"loop": {"wall_s": 1.1}})
        self._write(tmp_path / "base", "sim", {"loop": {"wall_s": 1.0}})
        assert main(
            [
                "bench", "compare", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
                "--threshold", "0.05",
            ]
        ) == 1

    def test_compare_without_current_files_exits_two(self, tmp_path, capsys):
        (tmp_path / "cur").mkdir()
        assert main(
            [
                "bench", "compare", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        ) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_compare_without_baseline_overlap_exits_zero(
        self, tmp_path, capsys
    ):
        self._write(tmp_path / "cur", "sim", {"loop": {"wall_s": 9.0}})
        assert main(
            [
                "bench", "compare", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        ) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_compare_json_output(self, tmp_path, capsys):
        import json

        self._write(tmp_path / "cur", "sim", {"loop": {"wall_s": 2.0}})
        self._write(tmp_path / "base", "sim", {"loop": {"wall_s": 1.0}})
        assert main(
            [
                "bench", "compare", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"), "--json",
            ]
        ) == 1
        (reg,) = json.loads(capsys.readouterr().out)
        assert reg["key"] == "wall_s" and reg["direction"] == "lower"

    def test_history_prints_recorded_entries(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.core.bench import record_bench

        monkeypatch.setenv("BLAP_BENCH_DIR", str(tmp_path))
        record_bench("sim", "loop", {"wall_s": 0.25, "events": 9})
        assert main(["bench", "history", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sim/loop" in out and "wall_s=0.25" in out

    def test_history_empty_exits_nonzero(self, tmp_path, capsys):
        assert main(["bench", "history", "--dir", str(tmp_path)]) == 1
        assert "no bench history" in capsys.readouterr().err


class TestProfileCli:
    def test_profile_run_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        assert main(
            [
                "profile", "run", "extraction", "--trials", "2",
                "--seed-base", "7", "-o", str(out_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "span type" in out
        assert "self-time total" in out
        assert (out_dir / "spans.collapsed").read_text().strip()
        assert (out_dir / "profile.json").exists()

    def test_profile_run_json_summary(self, tmp_path, capsys):
        import json

        assert main(
            [
                "profile", "run", "extraction", "--trials", "1",
                "-o", str(tmp_path / "p"), "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["top_self"]
        assert payload["total_self_s"] <= payload["root_wall_s"] + 1e-9

    def test_profile_flame_is_byte_identical(self, tmp_path, capsys):
        paths = [tmp_path / "a.collapsed", tmp_path / "b.collapsed"]
        for path in paths:
            assert main(
                [
                    "profile", "flame", "page-blocking",
                    "--seed", "2001", "-o", str(path),
                ]
            ) == 0
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        text = first.decode()
        # speedscope-loadable collapsed stacks: "a;b;c <int>" lines
        for line in text.strip().splitlines():
            stack, _, value = line.rpartition(" ")
            assert stack and value.isdigit()

    def test_profile_flame_stdout(self, capsys):
        assert main(["profile", "flame", "extraction", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert out.strip() and ";" in out

    def test_profile_diff_reports_deltas(self, tmp_path, capsys):
        for name, seed in (("base", "1"), ("cur", "2")):
            assert main(
                [
                    "profile", "run", "extraction", "--trials", "1",
                    "--seed-base", seed, "-o", str(tmp_path / name),
                ]
            ) == 0
        capsys.readouterr()
        assert main(
            [
                "profile", "diff",
                str(tmp_path / "base"), str(tmp_path / "cur"),
            ]
        ) == 0
        assert "delta" in capsys.readouterr().out

    def test_profile_diff_missing_baseline_exits_two(self, tmp_path, capsys):
        assert main(
            [
                "profile", "diff",
                str(tmp_path / "nope"), str(tmp_path / "nope2"),
            ]
        ) == 2
        assert capsys.readouterr().err


class TestCampaignProfileFlag:
    def test_campaign_run_profile_writes_into_run_dir(self, capsys):
        import json
        import os
        from pathlib import Path

        assert main(
            [
                "campaign", "run", "extraction", "--trials", "1",
                "--no-cache", "--quiet", "--run-id", "prof-smoke",
                "--profile",
            ]
        ) == 0
        run_dir = Path(os.environ["BLAP_RUNS_DIR"]) / "prof-smoke"
        profile_dir = run_dir / "profile"
        assert f"profile: {profile_dir}" in capsys.readouterr().err
        assert (profile_dir / "spans.collapsed").read_text().strip()
        summary = json.loads((run_dir / "run.json").read_text())
        profile = summary["profile"]
        assert profile["total_self_s"] <= profile["root_wall_s"] + 1e-9
        assert profile["top_self"]


class TestReportJsonFormat:
    def test_report_format_json(self, tmp_path, capsys):
        import json

        assert main(
            [
                "report", "--trials", "1", "--format", "json",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == 1
        attribution = payload["attribution"]
        assert attribution["total_self_s"] <= attribution["root_wall_s"]


class TestBenchSpanAnnotations:
    def test_compare_names_culprit_spans(self, tmp_path, capsys):
        import json

        for sub, wall in (("cur", 2.0), ("base", 1.0)):
            directory = tmp_path / sub
            directory.mkdir()
            data = {"loop": {"wall_s": wall}}
            if sub == "cur":
                data["_spans"] = {"loop": ["attack.page_blocking", "phy"]}
            (directory / "BENCH_sim.json").write_text(json.dumps(data))
        assert main(
            [
                "bench", "compare", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "top self-time spans: attack.page_blocking, phy" in out

    def test_history_appends_span_note(self, tmp_path, monkeypatch, capsys):
        from repro.core.bench import record_bench

        monkeypatch.setenv("BLAP_BENCH_DIR", str(tmp_path))
        record_bench(
            "sim", "loop", {"wall_s": 0.25}, spans=["hci", "phy"],
        )
        assert main(["bench", "history", "--dir", str(tmp_path)]) == 0
        assert "spans=hci,phy" in capsys.readouterr().out
