"""Tests for the ``blap`` command-line tools."""

import pytest

from repro.cli import main
from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.sim.eventloop import Simulator
from repro.snoop.hcidump import HciDump
from repro.transport.uart import UartH4Transport
from repro.transport.usb import UsbSniffer, UsbTransport

ADDR = BdAddr.parse("48:90:11:22:33:44")
KEY = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")


@pytest.fixture
def btsnoop_file(tmp_path):
    sim = Simulator()
    transport = UartH4Transport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    dump = HciDump().attach(transport)
    transport.send_from_host(cmd.AuthenticationRequested(connection_handle=6))
    transport.send_from_controller(evt.LinkKeyRequest(bd_addr=ADDR))
    transport.send_from_host(cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY))
    sim.run()
    path = tmp_path / "btsnoop_hci.log"
    path.write_bytes(dump.to_btsnoop_bytes())
    return path


@pytest.fixture
def usb_stream_file(tmp_path):
    sim = Simulator()
    transport = UsbTransport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    sniffer = UsbSniffer().attach(transport)
    transport.send_from_host(cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY))
    sim.run()
    path = tmp_path / "usb_capture.bin"
    path.write_bytes(sniffer.raw_stream())
    return path


class TestExtract:
    def test_extract_finds_key(self, btsnoop_file, capsys):
        assert main(["extract", str(btsnoop_file)]) == 0
        out = capsys.readouterr().out
        assert KEY.hex() in out
        assert str(ADDR) in out

    def test_extract_clean_capture_fails(self, tmp_path, capsys):
        sim = Simulator()
        transport = UartH4Transport(sim)
        transport.attach_host(lambda raw: None)
        transport.attach_controller(lambda raw: None)
        dump = HciDump().attach(transport)
        transport.send_from_host(cmd.Reset())
        sim.run()
        path = tmp_path / "clean.log"
        path.write_bytes(dump.to_btsnoop_bytes())
        assert main(["extract", str(path)]) == 1


class TestDump:
    def test_dump_renders_table(self, btsnoop_file, capsys):
        assert main(["dump", str(btsnoop_file)]) == 0
        out = capsys.readouterr().out
        assert "HCI_Link_Key_Request_Reply" in out
        assert "HCI_Authentication_Requested" in out

    def test_dump_row_limit(self, btsnoop_file, capsys):
        main(["dump", str(btsnoop_file), "--rows", "1"])
        out = capsys.readouterr().out
        assert "HCI_Link_Key_Request_Reply" not in out


class TestUsb:
    def test_usb_extract(self, usb_stream_file, capsys):
        assert main(["usb-extract", str(usb_stream_file)]) == 0
        assert KEY.hex() in capsys.readouterr().out

    def test_bin2hex(self, usb_stream_file, capsys):
        assert main(["bin2hex", str(usb_stream_file)]) == 0
        assert "0b 04 16" in capsys.readouterr().out.replace("\n", " ")


class TestPcap:
    def test_pcap_conversion(self, btsnoop_file, tmp_path, capsys):
        out_path = tmp_path / "capture.pcap"
        assert main(["pcap", str(btsnoop_file), "-o", str(out_path)]) == 0
        raw = out_path.read_bytes()
        from repro.snoop.pcap import (
            LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR,
            parse_pcap,
        )

        linktype, packets = parse_pcap(raw)
        assert linktype == LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR
        assert len(packets) == 3


class TestIocap:
    def test_iocap_default(self, capsys):
        assert main(["iocap"]) == 0
        assert "just_works" in capsys.readouterr().out

    def test_iocap_version_42(self, capsys):
        assert main(["iocap", "--version", "4.2"]) == 0
        assert "v4.2" in capsys.readouterr().out


class TestTimeline:
    def test_table_output(self, capsys):
        assert main(["timeline", "page-blocking", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "source" in out.splitlines()[0]
        assert "attack.page_blocking" in out

    def test_jsonl_is_ordered_and_cross_layer(self, capsys):
        import json

        assert main(
            ["timeline", "page-blocking", "--seed", "3", "--format", "jsonl"]
        ) == 0
        payloads = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        keys = [(p["t"], p["seq"]) for p in payloads]
        assert keys == sorted(keys)
        # the merge interleaves the phy layer with per-device streams
        assert {"phy", "M", "C", "A"} <= {p["source"] for p in payloads}
        categories = {p["category"] for p in payloads}
        assert "phy-page" in categories
        assert "hci-cmd" in categories
        assert "host-cmd" in categories
        assert "span" in categories
        for payload in payloads:
            assert payload["btsnoop_us"] >= 62_168_256_000_000_000

    def test_chrome_trace_to_file(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert main(
            [
                "timeline",
                "page-blocking",
                "--seed",
                "3",
                "--format",
                "chrome",
                "-o",
                str(out_path),
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        events = trace["traceEvents"]
        real = [e for e in events if e["ph"] != "M"]
        assert real, "no events exported"
        for event in real:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["pid"], int)
            assert "ts" in event
        ts = [e["ts"] for e in real]
        assert ts == sorted(ts)
        sources = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert len(sources) >= 3
        assert any(e["ph"] == "X" for e in real)  # spans made it across

    def test_limit_and_filters(self, capsys):
        import json

        assert main(
            [
                "timeline",
                "extraction",
                "--seed",
                "3",
                "--format",
                "jsonl",
                "--source",
                "phy",
                "--limit",
                "5",
            ]
        ) == 0
        payloads = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert 0 < len(payloads) <= 5
        assert all(p["source"] == "phy" for p in payloads)


class TestDemoExitCodes:
    def test_successful_demo_exits_zero(self, capsys):
        assert main(["demo", "baseline-race", "--seed", "60"]) == 0
        assert "success : True" in capsys.readouterr().out

    def test_failed_demo_exits_nonzero(self, capsys):
        # seed 61 loses the connection race — the demo must say so in
        # its exit code, not just in prose.
        assert main(["demo", "baseline-race", "--seed", "61"]) == 1
        out = capsys.readouterr().out
        assert "success : False" in out

    def test_every_scenario_is_a_demo(self, capsys):
        assert main(["demo", "pin-crack", "--seed", "2", "--param", "pin=0007"]) == 0
        out = capsys.readouterr().out
        assert "outcome : pin_recovered" in out


class TestCampaignCli:
    def test_run_summary_and_exit_zero(self, capsys):
        assert main(
            ["campaign", "run", "extraction", "--trials", "2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "extraction: 2/2 succeeded (100%)" in out

    def test_run_json_output(self, capsys):
        import json

        assert main(
            [
                "campaign", "run", "baseline-race",
                "--trials", "3", "--seed-base", "60", "--no-cache", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials"] == 3
        assert len(payload["results"]) == 3
        assert payload["results"][0]["seed"] == 60

    def test_param_override(self, capsys):
        assert main(
            [
                "campaign", "run", "baseline-race",
                "--trials", "2", "--no-cache",
                "--param", "m_spec=galaxy_s8_android9",
            ]
        ) == 0

    def test_unknown_param_exits_nonzero(self, capsys):
        assert main(
            [
                "campaign", "run", "baseline-race",
                "--trials", "1", "--no-cache", "--param", "typo=1",
            ]
        ) == 1

    def test_cache_roundtrip(self, tmp_path, capsys):
        argv = [
            "campaign", "run", "extraction", "--trials", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "cache 0 hit / 2 miss" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache 2 hit / 0 miss" in capsys.readouterr().out

    def test_list_names_every_scenario(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "baseline-race", "page-blocking", "extraction",
            "exfiltration", "eavesdrop", "knob", "pin-crack",
        ):
            assert name in out

    def test_table1_reproduces(self, capsys):
        assert main(["campaign", "table1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.count("YES") == 9

    def test_table2_smoke_reproduces(self, capsys):
        assert main(
            ["campaign", "table2", "--trials", "8", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out
        assert "112 trials" in out


class TestDemos:
    def test_demo_extraction(self, capsys):
        assert main(["demo", "extraction", "--seed", "3"]) == 0
        assert "matches truth : True" in capsys.readouterr().out

    def test_demo_page_blocking(self, capsys):
        assert main(["demo", "page-blocking", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "MITM connection : True" in out
        assert "HCI_Connection_Request" in out

    def test_demo_exfiltration(self, capsys):
        assert main(["demo", "exfiltration", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Alice Example" in out
        assert "silent (no popup on victim): True" in out
