"""Fleet-scale device populations: spec, sampling, determinism, FPR.

The population subsystem is only useful if it is *boringly*
deterministic: the same seed must produce the same crowd, the same
ambient schedule and the same trial verdict whether the trial runs
inline, in a worker pool, or on another machine.  These tests pin
that, plus the statistical shape of the sampled mix and the promise
that ambient traffic alone never trips the online detectors.
"""

from __future__ import annotations

import json

import pytest

from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.campaign import CampaignRunner, CampaignSpec, run_trial
from repro.devices.catalog import spec_by_key
from repro.population import (
    CastMember,
    PopulationError,
    PopulationSpec,
    ambient_spec,
    get_population,
    populate,
    population_names,
    table_mix,
)


class TestSpecValidation:
    def test_presets_are_registered(self):
        assert {
            "standard-cast", "cafe", "office-floor", "city-block", "stadium"
        } <= set(population_names())

    def test_unknown_device_key_rejected(self):
        with pytest.raises(PopulationError, match="unknown device key"):
            PopulationSpec(mix=(("not_a_device", 1.0),), size=3)
        with pytest.raises(PopulationError, match="unknown device key"):
            CastMember(role="M", spec="not_a_device")

    def test_bad_knobs_rejected(self):
        with pytest.raises(PopulationError, match="outside"):
            PopulationSpec(size=3, talker_fraction=1.5)
        with pytest.raises(PopulationError, match="size"):
            PopulationSpec(size=-1)
        with pytest.raises(PopulationError, match="weight"):
            PopulationSpec(size=3, mix=(("generic_headset", 0.0),))
        with pytest.raises(PopulationError, match="duplicate member roles"):
            PopulationSpec(
                members=(
                    CastMember(role="M", spec="lg_velvet_android11"),
                    CastMember(role="M", spec="nexus_5x_android8"),
                )
            )

    def test_every_mix_key_resolves(self):
        for key, weight in table_mix():
            assert spec_by_key(key) is not None
            assert weight > 0

    def test_round_trip_through_json(self):
        for name in population_names():
            spec = get_population(name)
            clone = PopulationSpec.from_jsonable(
                json.loads(json.dumps(spec.to_jsonable()))
            )
            assert clone == spec
            assert clone.canonical_json() == spec.canonical_json()

    def test_unknown_fields_rejected(self):
        with pytest.raises(PopulationError, match="unknown fields"):
            PopulationSpec.from_jsonable({"size": 3, "bogus": 1})

    def test_coerce_accepts_every_spelling(self):
        assert PopulationSpec.coerce(None) is None
        assert PopulationSpec.coerce("") is None
        assert PopulationSpec.coerce(0) is None
        assert PopulationSpec.coerce(PopulationSpec()) is None
        assert PopulationSpec.coerce(7).size == 7
        assert PopulationSpec.coerce("cafe") is get_population("cafe")
        assert PopulationSpec.coerce({"size": 4}).size == 4
        with pytest.raises(PopulationError):
            PopulationSpec.coerce(True)

    def test_from_file(self, tmp_path):
        path = tmp_path / "crowd.json"
        path.write_text(json.dumps(ambient_spec(5).to_jsonable()))
        assert PopulationSpec.from_file(path) == ambient_spec(5)


class TestCastEquivalence:
    def test_standard_cast_is_the_preset(self):
        """``standard_cast`` and ``populate(standard-cast)`` are the
        same construction path — same devices, same addresses."""
        world_a = build_world(WorldConfig(seed=42))
        m, c, a = standard_cast(world_a)
        world_b = build_world(WorldConfig(seed=42, population="standard-cast"))
        crowd = world_b.populations[0]
        assert crowd.role("M").bd_addr == m.bd_addr
        assert crowd.role("C").bd_addr == c.bd_addr
        assert crowd.role("A").bd_addr == a.bd_addr
        assert world_b.simulator.events_processed == (
            world_a.simulator.events_processed
        )

    def test_unknown_role_raises(self):
        world = build_world(WorldConfig(seed=1))
        crowd = populate(world, "standard-cast")
        with pytest.raises(KeyError):
            crowd.role("Z")

    def test_role_collision_raises(self):
        world = build_world(WorldConfig(seed=1))
        standard_cast(world)
        with pytest.raises(ValueError, match="already has a device"):
            populate(world, "standard-cast")


class TestDeterminism:
    @staticmethod
    def _run(seed, spec):
        world = build_world(WorldConfig(seed=seed, population=spec))
        world.run_for(10.0)
        crowd = world.populations[0]
        return crowd.summary(), world.simulator.events_processed

    def test_same_seed_same_crowd_and_schedule(self):
        first = self._run(7, "cafe")
        again = self._run(7, "cafe")
        assert first == again

    def test_different_seed_different_schedule(self):
        assert self._run(7, "office-floor") != self._run(8, "office-floor")

    def test_cast_draws_nothing_from_mix_streams(self):
        """Adding a cast on top of a crowd must not perturb the
        crowd's sampling — separate named RNG streams."""
        alone = self._run(5, "cafe")[0]
        world = build_world(WorldConfig(seed=5, population="cafe"))
        standard_cast(world)
        world.run_for(10.0)
        assert world.populations[0].summary()["mix"] == alone["mix"]

    def test_workers_match_inline(self):
        """Same seed → identical trial results whether the trial runs
        in-process or crosses a worker-process boundary."""
        spec = CampaignSpec(
            "extraction", seeds=[31, 32, 33], population="cafe"
        )
        inline = CampaignRunner(workers=1).run(spec)
        sharded = CampaignRunner(workers=2).run(spec)

        def strip(result):
            data = result.to_dict()
            data.pop("wall_time_s")  # host clock, not part of the verdict
            return data

        assert [strip(r) for r in inline.results] == (
            [strip(r) for r in sharded.results]
        )
        assert all(
            r.detail["world_population"]["name"] == "cafe"
            for r in inline.results
        )


class TestMixStatistics:
    def test_sample_tracks_weights(self):
        """A 500-device sample lands within a loose tolerance of the
        weight table — sampling is weighted, not uniform."""
        world = build_world(WorldConfig(seed=123))
        crowd = populate(world, ambient_spec(500, settle_s=0.0))
        counts = crowd.summary()["mix"]
        assert sum(counts.values()) == 500
        weights = dict(table_mix())
        total_weight = sum(weights.values())
        for key, weight in weights.items():
            expected = 500 * weight / total_weight
            assert counts.get(key, 0) == pytest.approx(expected, abs=25), key
        # the heaviest key dominates the rarest
        assert counts["generic_headset"] > counts["iphone_xs_ios1442"]

    def test_fraction_knobs_bound_behaviour(self):
        world = build_world(WorldConfig(seed=9))
        crowd = populate(
            world,
            ambient_spec(
                80, inquirer_fraction=0.0, talker_fraction=1.0, settle_s=0.0
            ),
        )
        summary = crowd.summary()
        assert summary["inquirers"] == 0
        assert summary["talkers"] == 80


class TestAmbientLoad:
    def test_ambient_traffic_actually_happens(self):
        world = build_world(WorldConfig(seed=3, population="cafe"))
        world.run_for(60.0)
        metrics = world.obs.metrics.snapshot()["counters"]
        assert metrics.get("population.ambient_inquiries", 0) > 0
        assert metrics.get("population.ambient_connects", 0) > 0
        assert metrics.get("population.ambient_sessions", 0) > 0

    def test_stop_quiesces_the_crowd(self):
        world = build_world(WorldConfig(seed=3, population="cafe"))
        world.run_for(5.0)
        crowd = world.populations[0]
        crowd.stop()
        before = world.obs.metrics.snapshot()["counters"]
        world.run_for(60.0)
        after = world.obs.metrics.snapshot()["counters"]
        assert before.get("population.ambient_inquiries") == (
            after.get("population.ambient_inquiries")
        )

    def test_detector_fpr_under_ambient_load(self):
        """Benign worlds stay benign: ambient churn alone must not trip
        the online detectors (the FPR half of the ROC story)."""
        for seed in range(3):
            result, _ = run_trial(
                "detection-ambient",
                seed=seed,
                params={"attack": "benign"},
            )
            assert result.error is None, result.error
            assert result.success, (seed, result.detail)
            assert result.detail["attack"] == "benign"
            assert result.detail["background_devices"] > 0

    def test_attack_still_detected_under_ambient_load(self):
        result, _ = run_trial("detection-ambient", seed=1)
        assert result.error is None
        assert result.success
        assert result.detail["background_devices"] > 0


class TestAtScale:
    def test_500_device_world_runs_deterministically(self):
        """The acceptance bar: a 500-device world builds, runs an
        attack under ambient load, and the trial result is
        byte-identical across runs of the same seed."""
        first, _ = run_trial(
            "extraction-ambient", seed=77, params={"population": "stadium"}
        )
        assert first.error is None
        assert first.detail["background_devices"] == 500
        again, _ = run_trial(
            "extraction-ambient", seed=77, params={"population": "stadium"}
        )

        def canonical(result):
            data = result.to_dict()
            data.pop("wall_time_s")  # host clock, not part of the verdict
            return json.dumps(data, sort_keys=True)

        assert canonical(first) == canonical(again)
