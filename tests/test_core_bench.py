"""Bench sink: atomic merges, concurrent writers, history, regressions."""

from __future__ import annotations

import json
import multiprocessing
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.bench import (
    BenchRegression,
    bench_spans,
    compare_bench,
    compare_bench_dirs,
    iter_bench_files,
    key_direction,
    load_bench,
    provenance,
    read_history,
    record_bench,
)


def _sections(data):
    """Measured sections only — underscore keys are metadata."""
    return {k: v for k, v in data.items() if not k.startswith("_")}


@pytest.fixture
def bench_dir(tmp_path, monkeypatch):
    directory = tmp_path / "bench"
    monkeypatch.setenv("BLAP_BENCH_DIR", str(directory))
    return directory


class TestRecordBench:
    def test_sections_merge_without_clobbering(self, bench_dir):
        record_bench("demo", "alpha", {"wall_s": 1.0})
        path = record_bench("demo", "beta", {"wall_s": 2.0})
        data = load_bench(path)
        assert _sections(data) == {
            "alpha": {"wall_s": 1.0}, "beta": {"wall_s": 2.0},
        }

    def test_rerecording_a_section_replaces_it(self, bench_dir):
        record_bench("demo", "alpha", {"wall_s": 1.0, "old_key": 5})
        path = record_bench("demo", "alpha", {"wall_s": 0.9})
        assert _sections(load_bench(path)) == {"alpha": {"wall_s": 0.9}}

    def test_corrupt_file_is_replaced_not_fatal(self, bench_dir):
        bench_dir.mkdir(parents=True)
        (bench_dir / "BENCH_demo.json").write_text("{not json")
        path = record_bench("demo", "alpha", {"wall_s": 1.0})
        assert _sections(load_bench(path)) == {"alpha": {"wall_s": 1.0}}

    def test_provenance_stamped_in_file_and_history(self, bench_dir):
        path = record_bench("demo", "alpha", {"wall_s": 1.0})
        prov = load_bench(path)["_provenance"]
        assert prov["recorded_ts"].endswith("Z")
        assert prov["python"].count(".") == 2
        # this repo is a git checkout, so the sha resolves
        assert len(prov["git_sha"]) == 40
        (entry,) = read_history(bench_dir)
        assert entry["python"] == prov["python"]
        assert entry["git_sha"] == prov["git_sha"]

    def test_provenance_helper_is_self_consistent(self):
        first, second = provenance(), provenance()
        assert first["python"] == second["python"]
        assert first.get("git_sha") == second.get("git_sha")

    def test_span_annotation_lands_in_file_and_history(self, bench_dir):
        path = record_bench(
            "demo", "alpha", {"wall_s": 1.0},
            spans=["attack.page_blocking", "page_procedure"],
        )
        data = load_bench(path)
        assert bench_spans(data) == {
            "alpha": ["attack.page_blocking", "page_procedure"],
        }
        (entry,) = read_history(bench_dir)
        assert entry["top_self_spans"] == [
            "attack.page_blocking", "page_procedure",
        ]
        # re-recording without spans keeps the old annotation out of
        # the new history entry but the file keeps the last one given
        record_bench("demo", "alpha", {"wall_s": 0.9})
        assert "top_self_spans" not in read_history(bench_dir)[-1]

    def test_bench_spans_tolerates_missing_or_junk(self):
        assert bench_spans({}) == {}
        assert bench_spans({"_spans": "junk"}) == {}
        assert bench_spans({"_spans": {"s": "junk"}}) == {}

    def test_no_temp_files_left_behind(self, bench_dir):
        record_bench("demo", "alpha", {"wall_s": 1.0})
        leftovers = [p.name for p in bench_dir.iterdir()]
        assert not [n for n in leftovers if ".tmp" in n]

    def test_concurrent_threads_drop_no_sections(self, bench_dir):
        """The read-modify-write race record_bench used to have: two
        writers load the same snapshot and the slower one clobbers the
        faster one's section.  Locked + atomic writes keep every
        section."""
        sections = [f"writer_{i}" for i in range(32)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(
                lambda s: record_bench("race", s, {"wall_s": 1.0}),
                sections,
            ))
        data = load_bench(bench_dir / "BENCH_race.json")
        assert sorted(_sections(data)) == sorted(sections)
        history = read_history(bench_dir, bench="race")
        assert len(history) == len(sections)

    def test_concurrent_processes_drop_no_sections(self, bench_dir):
        with multiprocessing.Pool(4) as pool:
            pool.map(_record_one_section, range(12))
        data = load_bench(bench_dir / "BENCH_procrace.json")
        assert sorted(_sections(data)) == [f"proc_{i:02d}" for i in range(12)]

    def test_iter_bench_files_sorted(self, bench_dir):
        record_bench("zeta", "s", {"wall_s": 1.0})
        record_bench("alpha", "s", {"wall_s": 1.0})
        names = [p.name for p in iter_bench_files(bench_dir)]
        assert names == ["BENCH_alpha.json", "BENCH_zeta.json"]


def _record_one_section(index):
    # runs in a worker process; BLAP_BENCH_DIR is inherited via fork
    record_bench("procrace", f"proc_{index:02d}", {"wall_s": 1.0})


class TestHistory:
    def test_every_record_appends_one_entry(self, bench_dir):
        record_bench("demo", "alpha", {"wall_s": 1.0})
        record_bench("demo", "alpha", {"wall_s": 0.9})
        record_bench("other", "beta", {"speedup": 3.0})
        entries = read_history(bench_dir)
        assert len(entries) == 3
        assert [e["values"] for e in read_history(bench_dir, bench="demo")] \
            == [{"wall_s": 1.0}, {"wall_s": 0.9}]
        entry = entries[0]
        assert entry["bench"] == "demo" and entry["section"] == "alpha"
        assert entry["ts"].endswith("Z")

    def test_run_id_tag_from_environment(self, bench_dir, monkeypatch):
        monkeypatch.setenv("BLAP_RUN_ID", "ci-123")
        record_bench("demo", "alpha", {"wall_s": 1.0})
        (entry,) = read_history(bench_dir)
        assert entry["run"] == "ci-123"

    def test_torn_tail_line_is_skipped(self, bench_dir):
        record_bench("demo", "alpha", {"wall_s": 1.0})
        with open(bench_dir / "BENCH_HISTORY.jsonl", "a") as handle:
            handle.write('{"bench": "demo", "trunc')
        assert len(read_history(bench_dir)) == 1

    def test_missing_history_reads_empty(self, tmp_path):
        assert read_history(tmp_path) == []


class TestKeyDirection:
    @pytest.mark.parametrize("key", [
        "wall_s", "serial_s", "p99_ms", "latency", "mean_latency_s",
        "overhead", "hot_loop_overhead",
    ])
    def test_lower_is_better(self, key):
        assert key_direction(key) == "lower"

    @pytest.mark.parametrize("key", [
        "events_per_s", "trials_per_second", "rate_hz", "speedup",
        "throughput",
    ])
    def test_higher_is_better(self, key):
        assert key_direction(key) == "higher"

    @pytest.mark.parametrize("key", ["events", "trials", "workers", "count"])
    def test_counts_are_not_gated(self, key):
        assert key_direction(key) is None


class TestCompareBench:
    def test_slower_wall_time_flags(self):
        regs = compare_bench(
            {"loop": {"wall_s": 2.0}}, {"loop": {"wall_s": 1.0}},
            bench="sim",
        )
        (reg,) = regs
        assert isinstance(reg, BenchRegression)
        assert reg.section == "loop" and reg.key == "wall_s"
        assert reg.change == pytest.approx(1.0)
        assert "sim/loop/wall_s" in str(reg)

    def test_lower_throughput_flags(self):
        (reg,) = compare_bench(
            {"loop": {"events_per_s": 50.0}},
            {"loop": {"events_per_s": 100.0}},
        )
        assert reg.direction == "higher"
        assert reg.change == pytest.approx(-0.5)

    def test_within_threshold_passes(self):
        assert compare_bench(
            {"loop": {"wall_s": 1.2, "events_per_s": 90.0}},
            {"loop": {"wall_s": 1.0, "events_per_s": 100.0}},
        ) == []

    def test_improvements_never_flag(self):
        assert compare_bench(
            {"loop": {"wall_s": 0.1, "events_per_s": 500.0}},
            {"loop": {"wall_s": 1.0, "events_per_s": 100.0}},
        ) == []

    def test_threshold_is_configurable(self):
        current = {"loop": {"wall_s": 1.2}}
        baseline = {"loop": {"wall_s": 1.0}}
        assert compare_bench(current, baseline, threshold=0.25) == []
        assert len(compare_bench(current, baseline, threshold=0.1)) == 1

    def test_new_and_missing_keys_are_ignored(self):
        assert compare_bench(
            {"loop": {"new_s": 99.0}, "fresh": {"wall_s": 99.0}},
            {"loop": {"old_s": 1.0}},
        ) == []

    def test_counts_and_zero_baselines_are_ignored(self):
        assert compare_bench(
            {"loop": {"events": 1, "wall_s": 5.0}},
            {"loop": {"events": 1000, "wall_s": 0}},
        ) == []

    def test_metadata_sections_never_gate(self):
        # _provenance strings and _spans lists must not be compared
        assert compare_bench(
            {"_provenance": {"recorded_ts": "now"},
             "_spans": {"loop": ["a_s"]},
             "loop": {"wall_s": 1.0}},
            {"_provenance": {"recorded_ts": "then"},
             "_spans": {"loop": ["b_s"]},
             "loop": {"wall_s": 1.0}},
        ) == []

    def test_compare_dirs_skips_missing_baselines(self, tmp_path):
        current = tmp_path / "cur"
        baseline = tmp_path / "base"
        for d in (current, baseline):
            d.mkdir()
        (current / "BENCH_a.json").write_text(
            json.dumps({"loop": {"wall_s": 2.0}})
        )
        (current / "BENCH_new.json").write_text(
            json.dumps({"loop": {"wall_s": 9.0}})
        )
        (baseline / "BENCH_a.json").write_text(
            json.dumps({"loop": {"wall_s": 1.0}})
        )
        regs = compare_bench_dirs(current, baseline)
        assert [r.bench for r in regs] == ["a"]
