"""Unit tests for the tracer."""

from repro.sim.trace import Tracer


def _seeded_tracer() -> Tracer:
    tracer = Tracer()
    tracer.emit(0.0, "M", "hci-cmd", "HCI_Create_Connection")
    tracer.emit(0.1, "M", "hci-evt", "HCI_Connection_Complete")
    tracer.emit(0.2, "C", "hci-cmd", "HCI_Link_Key_Request_Reply", peer="M")
    return tracer


def test_emit_and_len():
    tracer = _seeded_tracer()
    assert len(tracer) == 3


def test_filter_by_source():
    tracer = _seeded_tracer()
    assert len(tracer.filter(source="M")) == 2


def test_filter_by_category_and_contains():
    tracer = _seeded_tracer()
    hits = tracer.filter(category="hci-cmd", contains="Link_Key")
    assert len(hits) == 1
    assert hits[0].detail == {"peer": "M"}


def test_messages_helper():
    tracer = _seeded_tracer()
    assert tracer.messages(source="C") == ["HCI_Link_Key_Request_Reply"]


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    tracer.enabled = False
    tracer.emit(0.0, "x", "y", "z")
    assert len(tracer) == 0


def test_clear():
    tracer = _seeded_tracer()
    tracer.clear()
    assert len(tracer) == 0


def test_seq_is_monotonic_across_tracers():
    first = Tracer()
    second = Tracer()
    first.emit(0.0, "a", "c", "one")
    second.emit(0.0, "b", "c", "two")
    first.emit(0.0, "a", "c", "three")
    seqs = [
        first.records[0].seq,
        second.records[0].seq,
        first.records[1].seq,
    ]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 3


class TestRingBuffer:
    def test_oldest_records_drop_when_full(self):
        tracer = Tracer(max_records=2)
        tracer.emit(0.0, "x", "c", "one")
        tracer.emit(0.1, "x", "c", "two")
        tracer.emit(0.2, "x", "c", "three")
        assert len(tracer) == 2
        assert tracer.messages() == ["two", "three"]
        assert tracer.dropped == 1

    def test_unbounded_tracer_never_drops(self):
        tracer = Tracer()
        for index in range(100):
            tracer.emit(0.0, "x", "c", str(index))
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_clear_resets_dropped(self):
        tracer = Tracer(max_records=1)
        tracer.emit(0.0, "x", "c", "one")
        tracer.emit(0.1, "x", "c", "two")
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0
        assert len(tracer) == 0

    def test_invalid_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Tracer(max_records=0)

    def test_bounded_world_still_answers_queries(self):
        from repro.attacks.scenario import WorldConfig, build_world
        from repro.devices.catalog import LG_VELVET

        world = build_world(WorldConfig(seed=1, max_trace_records=50))
        m = world.add_device("M", LG_VELVET)
        m.power_on()
        world.run_for(1.0)
        assert len(world.tracer) <= 50
        assert world.tracer.dropped >= 0


def test_str_rendering_contains_fields():
    tracer = _seeded_tracer()
    text = str(tracer.records[0])
    assert "M" in text and "HCI_Create_Connection" in text


class TestLadder:
    def test_ladder_columns_per_source(self):
        from repro.sim.trace import render_ladder

        text = render_ladder(_seeded_tracer())
        lines = text.splitlines()
        assert lines[0].startswith("time")
        assert "M" in lines[0] and "C" in lines[0]
        # C's record is indented one column further than M's.
        m_line = next(line for line in lines if "HCI_Create_Connection" in line)
        c_line = next(line for line in lines if "Link_Key_Request_Reply" in line)
        assert c_line.index(">") > m_line.index(">")

    def test_ladder_filters(self):
        from repro.sim.trace import render_ladder

        text = render_ladder(_seeded_tracer(), sources=["M"])
        assert "Link_Key_Request_Reply" not in text
        text = render_ladder(_seeded_tracer(), categories=["hci-evt"])
        assert "HCI_Create_Connection" not in text

    def test_ladder_row_limit(self):
        from repro.sim.trace import render_ladder

        text = render_ladder(_seeded_tracer(), max_rows=1)
        assert len(text.splitlines()) == 3  # header + rule + 1 row

    def test_ladder_on_real_pairing(self):
        from repro.attacks.scenario import WorldConfig, build_world
        from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8
        from repro.sim.trace import render_ladder

        world = build_world(WorldConfig(seed=3))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        ladder = render_ladder(
            world.tracer, sources=["M", "C"], categories=["lmp-tx"]
        )
        assert "LmpEncapsulatedKey" in ladder
        assert "LmpDhkeyCheck" in ladder
