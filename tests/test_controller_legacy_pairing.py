"""Tests: legacy PIN pairing and its offline cracking."""

import pytest

from repro.attacks.eavesdrop import AirCapture
from repro.attacks.pin_crack import (
    candidate_key,
    crack_pin,
    numeric_pins,
    transcript_from_capture,
)
from repro.core.types import LinkKeyType
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8
from repro.hci.constants import ErrorCode


@pytest.fixture
def legacy_pair(world):
    """Two devices with SSP disabled (pre-2.1 behaviour), PIN '0000'."""
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    m.host.ssp_enabled = False
    c.host.ssp_enabled = False
    m.user.pin_code = "0000"
    c.user.pin_code = "0000"
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    return world, m, c


class TestLegacyPairing:
    def test_pin_pairing_succeeds(self, legacy_pair):
        world, m, c = legacy_pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert (
            m.host.security.bond_for(c.bd_addr).link_key
            == c.host.security.bond_for(m.bd_addr).link_key
        )

    def test_key_type_is_combination(self, legacy_pair):
        world, m, c = legacy_pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type == LinkKeyType.COMBINATION

    def test_mismatched_pins_fail(self, legacy_pair):
        world, m, c = legacy_pair
        c.user.pin_code = "1234"
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.done and not op.success
        assert not m.host.security.is_bonded(c.bd_addr)

    def test_refused_pin_fails(self, legacy_pair):
        world, m, c = legacy_pair
        c.user.pin_code = None
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.done and op.status == ErrorCode.PAIRING_NOT_ALLOWED

    def test_legacy_bond_reauthenticates(self, legacy_pair):
        world, m, c = legacy_pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        m.host.gap.disconnect(c.bd_addr)
        world.run_for(2.0)
        op2 = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op2.success

    def test_one_legacy_side_forces_legacy(self, world):
        """A modern phone pairing a pre-2.1 device falls back to PIN."""
        m = world.add_device("M", LG_VELVET)  # SSP on
        c = world.add_device("C", NEXUS_5X_A8)
        c.host.ssp_enabled = False
        m.user.pin_code = "9999"
        c.user.pin_code = "9999"
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type == LinkKeyType.COMBINATION


class TestPinCracking:
    @pytest.fixture
    def sniffed(self, legacy_pair):
        world, m, c = legacy_pair
        m.user.pin_code = "4271"
        c.user.pin_code = "4271"
        capture = AirCapture().attach(world.medium)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        truth = m.host.security.bond_for(c.bd_addr).link_key
        return capture, m, c, truth

    def test_transcript_extraction(self, sniffed):
        capture, m, c, _ = sniffed
        transcript = transcript_from_capture(capture, "M", m.bd_addr, c.bd_addr)
        assert len(transcript.in_rand) == 16
        assert len(transcript.sres) == 4

    def test_correct_pin_reproduces_key(self, sniffed):
        capture, m, c, truth = sniffed
        transcript = transcript_from_capture(capture, "M", m.bd_addr, c.bd_addr)
        assert candidate_key(transcript, b"4271") == truth

    def test_offline_crack_recovers_pin_and_key(self, sniffed):
        capture, m, c, truth = sniffed
        transcript = transcript_from_capture(capture, "M", m.bd_addr, c.bd_addr)
        result = crack_pin(transcript, numeric_pins(4))
        assert result is not None
        assert result.pin == b"4271"
        assert result.link_key == truth
        assert result.candidates_tried == 4272  # counting order

    def test_wrong_pin_space_finds_nothing(self, sniffed):
        capture, m, c, _ = sniffed
        transcript = transcript_from_capture(capture, "M", m.bd_addr, c.bd_addr)
        assert crack_pin(transcript, (b"0000", b"1111")) is None

    def test_incomplete_capture_raises(self):
        from repro.core.errors import AttackError
        from repro.core.types import BdAddr

        empty = AirCapture()
        addr = BdAddr.parse("00:00:00:00:00:01")
        with pytest.raises(AttackError):
            transcript_from_capture(empty, "M", addr, addr)
