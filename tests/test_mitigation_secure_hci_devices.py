"""End-to-end tests: devices shipped with encrypted HCI payloads.

The §VII-A long-term mitigation, deployed as a device property: the
same attacks that succeed against the stock catalog fail against
``secure_hci=True`` variants, while every legitimate function keeps
working (the mitigation is invisible to well-behaved peers).
"""

import dataclasses

import pytest

from repro.attacks.attacker import Attacker
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.devices.catalog import NEXUS_5X_A8, WINDOWS_MS_DRIVER
from repro.snoop.extractor import extract_link_keys
from repro.snoop.usb_extract import extract_link_keys_from_usb

HARDENED_PHONE = dataclasses.replace(
    NEXUS_5X_A8, key="nexus_5x_secure_hci", secure_hci=True
)
HARDENED_PC = dataclasses.replace(
    WINDOWS_MS_DRIVER, key="windows10_secure_hci", secure_hci=True
)


class TestHardenedDevicesStillWork:
    @pytest.mark.parametrize("spec", [HARDENED_PHONE, HARDENED_PC],
                             ids=["uart", "usb"])
    def test_pairing_and_profiles_unaffected(self, world, spec):
        m = world.add_device("M", HARDENED_PHONE)
        c = world.add_device("C", spec)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        m.user.note_pairing_initiated(c.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        m.host.gap.disconnect(c.bd_addr)
        world.run_for(2.0)
        pan = m.host.pan.connect(c.bd_addr)
        world.run_for(15.0)
        assert pan.success


class TestHardenedDevicesDefeatExtraction:
    def test_usb_sniff_attack_fails_on_hardened_pc(self):
        """The full Fig. 5 attack against a secure-HCI Windows box:
        the sniffer captures only ciphertext where the key should be."""
        world = build_world(WorldConfig(seed=66))
        m, c, a = standard_cast(world, c_spec=HARDENED_PC)
        bond(world, c, m)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        # The signature scan may still hit the '0b 04 16' header, but
        # whatever bytes follow are not the key.
        assert not report.extraction_success
        assert report.extracted_key != report.ground_truth_key

    def test_hci_dump_on_hardened_phone_yields_no_key(self):
        world = build_world(WorldConfig(seed=67))
        m, c, a = standard_cast(world, c_spec=HARDENED_PHONE)
        bond(world, c, m)
        truth = c.bonded_key_for(m.bd_addr)

        c.enable_hci_snoop()
        attacker = Attacker(a)
        attacker.patch_drop_link_key_requests()
        attacker.spoof_device(m)
        attacker.go_connectable()
        world.set_in_range(c, m, False)
        world.run_for(0.5)
        c.host.gap.pair(m.bd_addr)
        world.run_for(12.0)

        findings = extract_link_keys(c.pull_bugreport())
        assert all(f.link_key != truth for f in findings)

    def test_direct_usb_capture_shows_ciphertext(self, world):
        """Unit-level: what the analyzer records differs from the key."""
        from repro.core.types import BdAddr, LinkKey
        from repro.hci import commands as cmd

        dev = world.add_device("pc", HARDENED_PC)
        sniffer = dev.attach_usb_sniffer()
        key = LinkKey(bytes(range(16)))
        dev.host.send_command(
            cmd.LinkKeyRequestReply(
                bd_addr=BdAddr.parse("48:90:11:22:33:44"), link_key=key
            )
        )
        world.run_for(0.5)
        findings = extract_link_keys_from_usb(sniffer)
        assert all(f.link_key != key for f in findings)
        assert dev.transport.protected_packets == 1
