"""Unit tests for the named RNG registry."""

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream_is_deterministic():
    a = RngRegistry(7).stream("radio")
    b = RngRegistry(7).stream("radio")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_streams_are_independent():
    registry = RngRegistry(7)
    first = [registry.stream("alpha").random() for _ in range(5)]
    second = [registry.stream("beta").random() for _ in range(5)]
    assert first != second


def test_adding_a_stream_does_not_perturb_existing_one():
    solo = RngRegistry(7)
    seq_alone = [solo.stream("radio").random() for _ in range(10)]

    crowded = RngRegistry(7)
    crowded.stream("other").random()  # extra consumer created first
    seq_crowded = [crowded.stream("radio").random() for _ in range(10)]
    assert seq_alone == seq_crowded


def test_stream_instance_is_cached():
    registry = RngRegistry(1)
    assert registry.stream("x") is registry.stream("x")


def test_different_master_seeds_differ():
    a = RngRegistry(1).stream("s").random()
    b = RngRegistry(2).stream("s").random()
    assert a != b


def test_random_bytes_length_and_determinism():
    a = RngRegistry(3).random_bytes("nonce", 16)
    b = RngRegistry(3).random_bytes("nonce", 16)
    assert len(a) == 16
    assert a == b
