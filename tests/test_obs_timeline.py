"""Unit tests for the timeline correlator and its exporters."""

import json
from pathlib import Path

from repro.obs.spans import SpanTracker
from repro.obs.timeline import (
    Timeline,
    TimelineEvent,
    btsnoop_timestamp_us,
    export_chrome_trace,
    export_jsonl,
    render_timeline_table,
)
from repro.sim.trace import Tracer
from repro.snoop.btsnoop import EPOCH_DELTA_US

GOLDEN_DIR = Path(__file__).parent / "golden"


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestMerge:
    def test_streams_merge_in_time_then_seq_order(self):
        phy = Tracer()
        hci = Tracer()
        clock = FakeClock()
        spans = SpanTracker(clock)

        span = spans.begin("page_procedure", source="A")
        phy.emit(0.0, "phy", "phy-page", "M pages C")
        hci.emit(0.1, "M", "hci-cmd", "HCI_Create_Connection")
        phy.emit(0.1, "phy", "phy-page", "A wins")  # same time, later seq
        clock.now = 0.2
        spans.finish(span)

        timeline = (
            Timeline().add_tracer(phy).add_tracer(hci).add_span_tracker(spans)
        )
        messages = [event.message for event in timeline.events()]
        assert messages == [
            "page_procedure",  # span sorts at its *start* time
            "M pages C",
            "HCI_Create_Connection",
            "A wins",
        ]
        times = [event.time for event in timeline.events()]
        assert times == sorted(times)

    def test_equal_times_break_by_emission_sequence(self):
        tracer = Tracer()
        tracer.emit(1.0, "x", "c", "first")
        tracer.emit(1.0, "x", "c", "second")
        events = Timeline().add_tracer(tracer).events()
        assert [e.message for e in events] == ["first", "second"]
        assert events[0].seq < events[1].seq

    def test_filters_and_extra_events(self):
        tracer = Tracer()
        tracer.emit(0.0, "phy", "phy-page", "page")
        tracer.emit(0.0, "M", "hci-cmd", "cmd")
        timeline = Timeline().add_tracer(tracer)
        timeline.add_event(
            TimelineEvent(
                time=0.5, seq=10**9, source="ext", category="note", message="n"
            )
        )
        assert len(timeline.events()) == 3
        assert [e.source for e in timeline.events(sources=["phy"])] == ["phy"]
        assert [
            e.category for e in timeline.events(categories=["note"])
        ] == ["note"]

    def test_registration_is_idempotent(self):
        tracer = Tracer()
        tracer.emit(0.0, "x", "c", "once")
        spans = SpanTracker(FakeClock())
        timeline = (
            Timeline()
            .add_tracer(tracer)
            .add_tracer(tracer)
            .add_span_tracker(spans)
            .add_span_tracker(spans)
        )
        assert len(timeline.events()) == 1

    def test_open_spans_stay_off_the_timeline(self):
        spans = SpanTracker(FakeClock())
        spans.begin("open")
        assert Timeline().add_span_tracker(spans).events() == []

    def test_kind_property(self):
        instant = TimelineEvent(
            time=0.0, seq=0, source="s", category="c", message="m"
        )
        spanned = TimelineEvent(
            time=0.0, seq=1, source="s", category="span", message="m",
            duration=0.5,
        )
        assert instant.kind == "trace"
        assert spanned.kind == "span"


class TestBtsnoopClock:
    def test_alignment_with_the_capture_epoch(self):
        assert btsnoop_timestamp_us(0.0) == EPOCH_DELTA_US
        assert btsnoop_timestamp_us(1.5) == EPOCH_DELTA_US + 1_500_000


def _golden_events():
    """A hand-built, fully deterministic event sequence.

    Constructed directly (not via ``Tracer``) so the ``seq`` values do
    not depend on what else the test process has emitted.
    """
    return [
        TimelineEvent(
            time=0.0,
            seq=0,
            source="A",
            category="span",
            message="page_procedure",
            detail={"target": "48:90:11:22:33:44"},
            duration=0.00125,
        ),
        TimelineEvent(
            time=0.0,
            seq=1,
            source="phy",
            category="phy-page",
            message="M pages C",
        ),
        TimelineEvent(
            time=0.00125,
            seq=2,
            source="phy",
            category="phy-page",
            message="A wins the page response race",
            detail={"latency_s": 0.00125, "candidates": 2},
        ),
        TimelineEvent(
            time=0.00125,
            seq=3,
            source="M",
            category="hci-event",
            message="HCI_Connection_Complete",
        ),
    ]


class TestExporters:
    def test_jsonl_matches_golden(self):
        expected = (GOLDEN_DIR / "timeline.jsonl").read_text().rstrip("\n")
        assert export_jsonl(_golden_events()) == expected

    def test_chrome_trace_matches_golden(self):
        expected = json.loads((GOLDEN_DIR / "chrome_trace.json").read_text())
        assert export_chrome_trace(_golden_events()) == expected

    def test_jsonl_lines_parse_and_carry_the_btsnoop_clock(self):
        lines = export_jsonl(_golden_events()).splitlines()
        assert len(lines) == 4
        for line in lines:
            payload = json.loads(line)
            assert payload["btsnoop_us"] == btsnoop_timestamp_us(payload["t"])

    def test_chrome_trace_shape(self):
        trace = export_chrome_trace(_golden_events())
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # one process_name record per source, in first-seen order
        assert [m["args"]["name"] for m in metadata] == ["A", "phy", "M"]
        assert len(spans) == 1 and spans[0]["dur"] == 1250.0
        assert len(instants) == 3
        assert all(isinstance(e["pid"], int) for e in events)
        ts = [e["ts"] for e in spans + instants]
        assert ts == sorted(ts)

    def test_table_rendering_and_row_limit(self):
        text = render_timeline_table(_golden_events())
        assert "page_procedure" in text and "[1.250 ms]" in text
        limited = render_timeline_table(_golden_events(), max_rows=2)
        assert "HCI_Connection_Complete" not in limited
        assert "..." in limited
