"""Unit + property tests for the core value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import (
    AssociationModel,
    AuthenticationRequirements,
    BdAddr,
    BluetoothVersion,
    ClassOfDevice,
    IoCapability,
    LinkKey,
    as_bdaddr,
)


class TestBdAddr:
    def test_parse_and_str_roundtrip(self):
        addr = BdAddr.parse("48:90:aa:bb:cc:dd")
        assert str(addr) == "48:90:aa:bb:cc:dd"

    def test_parse_dash_separator(self):
        assert BdAddr.parse("48-90-aa-bb-cc-dd") == BdAddr.parse(
            "48:90:aa:bb:cc:dd"
        )

    def test_parse_rejects_malformed(self):
        for bad in ("48:90:aa:bb:cc", "zz:90:aa:bb:cc:dd", "489000aabbccdd", ""):
            with pytest.raises(ValueError):
                BdAddr.parse(bad)

    def test_wrong_length_bytes_rejected(self):
        with pytest.raises(ValueError):
            BdAddr(b"\x01\x02\x03")

    def test_hci_byte_order_is_reversed(self):
        addr = BdAddr.parse("00:1a:7d:da:71:0a")
        assert addr.to_hci_bytes() == bytes.fromhex("0a71da7d1a00")

    @given(st.binary(min_size=6, max_size=6))
    def test_hci_roundtrip(self, raw):
        addr = BdAddr(raw)
        assert BdAddr.from_hci_bytes(addr.to_hci_bytes()) == addr

    def test_lap_uap_nap_split(self):
        addr = BdAddr.parse("00:18:74:da:71:09")
        assert addr.nap == 0x0018
        assert addr.uap == 0x74
        assert addr.lap == 0xDA7109

    def test_ordering_and_hashing(self):
        a = BdAddr.parse("00:00:00:00:00:01")
        b = BdAddr.parse("00:00:00:00:00:02")
        assert a < b
        assert len({a, BdAddr.parse("00:00:00:00:00:01")}) == 1

    def test_as_bdaddr_coercion(self):
        addr = BdAddr.parse("11:22:33:44:55:66")
        assert as_bdaddr("11:22:33:44:55:66") == addr
        assert as_bdaddr(addr) is addr


class TestLinkKey:
    def test_parse_and_hex(self):
        key = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")
        assert key.hex() == "71a70981f30d6af9e20adee8aafe3264"

    def test_parse_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            LinkKey.parse("abcd")

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(ValueError):
            LinkKey(b"\x00" * 15)

    @given(st.binary(min_size=16, max_size=16))
    def test_hci_roundtrip(self, raw):
        key = LinkKey(raw)
        assert LinkKey.from_hci_bytes(key.to_hci_bytes()) == key

    def test_hci_order_matches_paper_fig11(self):
        # Fig. 11: wire bytes 'c4 f1 6e 94 ...' read back big-endian.
        key = LinkKey.parse("c4f16e949f04ee9c0fd6b1330289c324")
        assert key.to_hci_bytes() == bytes.fromhex(
            "24c3890233b1d60f9cee049f946ef1c4"
        )


class TestClassOfDevice:
    def test_smartphone_constant_decodes_as_phone(self):
        cod = ClassOfDevice(ClassOfDevice.SMARTPHONE)
        assert cod.major_device_class == 0x02
        assert cod.describe() == "Phone"

    def test_handsfree_constant_decodes_as_audio(self):
        cod = ClassOfDevice(ClassOfDevice.HANDSFREE)
        assert cod.describe() == "Audio/Video"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ClassOfDevice(0x1000000)

    @given(st.integers(min_value=0, max_value=0xFFFFFF))
    def test_hci_roundtrip(self, value):
        cod = ClassOfDevice(value)
        assert ClassOfDevice.from_hci_bytes(cod.to_hci_bytes()) == cod


class TestEnums:
    def test_association_model_mitm_resistance(self):
        assert not AssociationModel.JUST_WORKS.mitm_resistant
        assert AssociationModel.NUMERIC_COMPARISON.mitm_resistant
        assert AssociationModel.PASSKEY_ENTRY.mitm_resistant

    def test_version_popup_mandate_split(self):
        assert not BluetoothVersion.V4_2.mandates_justworks_popup
        assert BluetoothVersion.V5_0.mandates_justworks_popup
        assert BluetoothVersion.V5_2.mandates_justworks_popup

    def test_io_capability_describe(self):
        assert IoCapability.NO_INPUT_NO_OUTPUT.describe() == "NoInputNoOutput"
        assert IoCapability.DISPLAY_YES_NO.describe() == "DisplayYesNo"

    def test_auth_requirements_flags(self):
        assert AuthenticationRequirements.MITM_GENERAL_BONDING.mitm_required
        assert AuthenticationRequirements.MITM_GENERAL_BONDING.bonding
        assert not AuthenticationRequirements.NO_MITM_NO_BONDING.mitm_required
        assert not AuthenticationRequirements.NO_MITM_NO_BONDING.bonding
