"""Unit tests for GAP edge cases and the Operation primitive."""

import pytest

from repro.core.types import BdAddr
from repro.devices.catalog import ANDROID_AUTOMOTIVE_HEAD_UNIT, LG_VELVET
from repro.hci.constants import ErrorCode
from repro.host.operations import Operation


class TestOperation:
    def test_lifecycle(self):
        op = Operation("demo")
        assert not op.done and not op.success
        op.complete(result=42)
        assert op.done and op.success and op.result == 42

    def test_complete_is_idempotent(self):
        op = Operation("demo")
        op.complete(status=0)
        op.fail(7)
        assert op.success  # the first resolution wins

    def test_callbacks_fire_on_completion(self):
        op = Operation("demo")
        seen = []
        op.on_done(lambda o: seen.append(o.status))
        op.complete(status=3)
        assert seen == [3]

    def test_callback_fires_immediately_if_already_done(self):
        op = Operation("demo")
        op.complete()
        seen = []
        op.on_done(lambda o: seen.append(True))
        assert seen == [True]

    def test_repr_shows_state(self):
        op = Operation("pair")
        assert "pending" in repr(op)
        op.complete()
        assert "done" in repr(op)


class TestGapEdgeCases:
    def test_pair_unreachable_device_fails(self, device_pair):
        world, m, c = device_pair
        ghost = BdAddr.parse("de:ad:00:00:00:01")
        op = m.host.gap.pair(ghost)
        world.run_for(10.0)
        assert op.done and op.status == ErrorCode.PAGE_TIMEOUT

    def test_authenticate_without_connection_fails_fast(self, device_pair):
        world, m, c = device_pair
        op = m.host.gap.authenticate(c.bd_addr)
        assert op.done and not op.success

    def test_concurrent_authentication_refused(self, bonded_pair):
        world, m, c = bonded_pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        first = m.host.gap.authenticate(c.bd_addr)
        second = m.host.gap.authenticate(c.bd_addr)
        assert second.done and not second.success
        world.run_for(10.0)
        assert first.success

    def test_disconnect_fails_pending_auth(self, bonded_pair):
        world, m, c = bonded_pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        # Freeze the prover so authentication hangs, then disconnect.
        c.host.drop_link_key_requests = True
        op = m.host.gap.authenticate(c.bd_addr)
        world.run_for(0.5)
        m.host.gap.disconnect(c.bd_addr)
        world.run_for(3.0)
        assert op.done and not op.success

    def test_handle_and_addr_lookups(self, device_pair):
        world, m, c = device_pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        handle = m.host.gap.handle_for(c.bd_addr)
        assert handle is not None
        assert m.host.gap.addr_for_handle(handle) == c.bd_addr
        assert m.host.gap.addr_for_handle(0x999) is None
        assert m.host.gap.handle_for(BdAddr.parse("00:00:00:00:00:09")) is None

    def test_name_cache_via_remote_name_request(self, device_pair):
        world, m, c = device_pair
        from repro.hci import commands as cmd

        m.host.send_command(
            cmd.RemoteNameRequest(
                bd_addr=c.bd_addr,
                page_scan_repetition_mode=1,
                reserved=0,
                clock_offset=0,
            )
        )
        world.run_for(2.0)
        assert m.host.gap.name_cache[c.bd_addr] == c.spec.marketing_name

    def test_head_unit_catalog_entry(self, world):
        """The Fig. 4 Android Automotive device exposes the snoop menu."""
        unit = world.add_device("head-unit", ANDROID_AUTOMOTIVE_HEAD_UNIT)
        unit.power_on()
        unit.enable_hci_snoop()  # reachable without SU, like a phone
        world.run_for(0.5)
        assert unit.pull_bugreport()[:8] == b"btsnoop\x00"

    def test_non_discoverable_connectable_device(self, world):
        """Connectable-but-hidden: pages succeed, inquiry stays blind."""
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", ANDROID_AUTOMOTIVE_HEAD_UNIT)
        m.power_on()
        c.power_on(discoverable=False)
        world.run_for(0.5)
        discovery = m.host.gap.start_discovery()
        world.run_for(8.0)
        assert discovery.result == []
        connect = m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        assert connect.success
