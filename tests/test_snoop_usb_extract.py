"""Unit tests for the USB-sniff extraction pipeline (Fig. 11)."""

from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.sim.eventloop import Simulator
from repro.snoop.usb_extract import (
    bin2hex,
    extract_link_keys_from_usb,
    scan_hex_for_link_keys,
)
from repro.transport.usb import UsbSniffer, UsbTransport

ADDR = BdAddr.parse("00:1a:7d:da:71:0a")
KEY = LinkKey.parse("c4f16e949f04ee9c0fd6b1330289c324")


def _sniffed_capture(extra_noise=True):
    sim = Simulator()
    transport = UsbTransport(sim, idle_null_transfers=extra_noise)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    sniffer = UsbSniffer().attach(transport)
    transport.send_from_controller(evt.LinkKeyRequest(bd_addr=ADDR))
    transport.send_from_host(cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY))
    transport.send_from_controller(
        evt.CommandComplete(
            num_hci_command_packets=1,
            command_opcode=0x040B,
            return_parameters=b"\x00" + ADDR.to_hci_bytes(),
        )
    )
    sim.run()
    return sniffer


class TestBin2Hex:
    def test_basic_conversion(self):
        assert bin2hex(b"\x0b\x04\x16").replace(" ", "") == "0b0416"

    def test_line_wrapping(self):
        text = bin2hex(bytes(range(32)), line_width=16)
        assert len(text.splitlines()) == 2

    def test_grouping(self):
        text = bin2hex(b"\xab\xcd\xef\x01", group=2, line_width=4)
        assert text == "abcd ef01"

    def test_invalid_grouping_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            bin2hex(b"x", group=0)


class TestSignatureScan:
    def test_finds_key_after_signature(self):
        payload = (
            cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_bytes()
        )
        findings = scan_hex_for_link_keys(bin2hex(payload))
        assert len(findings) == 1
        assert findings[0].peer == ADDR
        assert findings[0].link_key == KEY

    def test_paper_fig11_byte_example(self):
        """The exact hex layout shown in Fig. 11a."""
        hex_text = (
            "0b 04 16 0a 71 da 7d 1a 00 24 c3 89 02 33 b1 d6"
            " 0f 9c ee 04 9f 94 6e f1 c4"
        )
        findings = scan_hex_for_link_keys(hex_text)
        assert len(findings) == 1
        assert str(findings[0].peer) == "00:1a:7d:da:71:0a"
        assert findings[0].link_key.hex() == "c4f16e949f04ee9c0fd6b1330289c324"

    def test_ignores_unaligned_matches(self):
        # '0b0416' appearing at an odd nibble offset is not a packet.
        hex_text = "a0b04163" + "00" * 30
        assert scan_hex_for_link_keys(hex_text) == []

    def test_ignores_truncated_match(self):
        assert scan_hex_for_link_keys("0b0416aabb") == []

    def test_no_signature_no_findings(self):
        assert scan_hex_for_link_keys("00" * 100) == []


class TestEndToEnd:
    def test_extraction_from_sniffer(self):
        sniffer = _sniffed_capture()
        findings = extract_link_keys_from_usb(sniffer)
        assert len(findings) == 1
        assert findings[0].link_key == KEY
        assert findings[0].peer == ADDR

    def test_extraction_survives_null_noise(self):
        """Real captures are full of NULL transfers (paper §VI-B1)."""
        noisy = extract_link_keys_from_usb(_sniffed_capture(extra_noise=True))
        clean = extract_link_keys_from_usb(_sniffed_capture(extra_noise=False))
        assert noisy == clean

    def test_extraction_from_raw_bytes(self):
        sniffer = _sniffed_capture()
        findings = extract_link_keys_from_usb(sniffer.raw_stream())
        assert findings and findings[0].link_key == KEY
