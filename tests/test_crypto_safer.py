"""Unit + property tests for the SAFER+ cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.safer import (
    ARMENIAN_SHUFFLE,
    EXP_TABLE,
    LOG_TABLE,
    SaferPlus,
    saferplus_ar,
    saferplus_ar_prime,
)

KEY = bytes(range(16))
BLOCK = bytes(range(16, 32))

blocks = st.binary(min_size=16, max_size=16)
keys = st.binary(min_size=16, max_size=16)


class TestSboxes:
    def test_exp_log_are_inverse(self):
        for value in range(256):
            assert LOG_TABLE[EXP_TABLE[value]] == value

    def test_exp_128_is_zero(self):
        # 45^128 ≡ 256 mod 257 → reduced to 0 — the table's only quirk.
        assert EXP_TABLE[128] == 0

    def test_exp_0_is_one(self):
        assert EXP_TABLE[0] == 1

    def test_armenian_shuffle_is_a_permutation(self):
        assert sorted(ARMENIAN_SHUFFLE) == list(range(16))


class TestSaferPlus:
    def test_deterministic(self):
        assert saferplus_ar(KEY, BLOCK) == saferplus_ar(KEY, BLOCK)

    def test_ar_and_ar_prime_differ_on_nonzero_input(self):
        assert saferplus_ar(KEY, BLOCK) != saferplus_ar_prime(KEY, BLOCK)

    def test_ar_prime_zero_input_fixed_point(self):
        # All-zero round-1 input makes the Ar' feedback a no-op.
        zero = bytes(16)
        assert saferplus_ar(KEY, zero) == saferplus_ar_prime(KEY, zero)

    def test_output_is_16_bytes(self):
        assert len(saferplus_ar(KEY, BLOCK)) == 16

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ValueError):
            SaferPlus(b"short")

    def test_wrong_block_length_rejected(self):
        with pytest.raises(ValueError):
            SaferPlus(KEY).encrypt(b"short")

    @given(keys, blocks)
    @settings(max_examples=50)
    def test_key_sensitivity(self, key, block):
        flipped = bytes([key[0] ^ 0x01]) + key[1:]
        assert saferplus_ar(key, block) != saferplus_ar(flipped, block)

    @given(keys, blocks)
    @settings(max_examples=50)
    def test_plaintext_sensitivity(self, key, block):
        flipped = bytes([block[0] ^ 0x01]) + block[1:]
        assert saferplus_ar(key, block) != saferplus_ar(key, flipped)

    @given(keys, blocks)
    @settings(max_examples=25)
    def test_avalanche_is_substantial(self, key, block):
        """A single flipped input bit changes a large share of output bits."""
        flipped = bytes([block[0] ^ 0x01]) + block[1:]
        a = saferplus_ar(key, block)
        b = saferplus_ar(key, flipped)
        differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing_bits >= 20  # out of 128; random would be ~64

    def test_key_schedule_produces_17_subkeys(self):
        assert len(SaferPlus(KEY)._expand_key(KEY)) == 17

    @given(keys)
    @settings(max_examples=25)
    def test_encryption_is_injective_over_sample(self, key):
        cipher = SaferPlus(key)
        sample = [bytes([i]) * 16 for i in range(32)]
        images = {cipher.encrypt(block) for block in sample}
        assert len(images) == len(sample)
