"""Unit tests for the virtual filesystem's permission model."""

import pytest

from repro.core.filesystem import VirtualFilesystem


@pytest.fixture
def fs() -> VirtualFilesystem:
    filesystem = VirtualFilesystem()
    filesystem.write("/open/readme.txt", b"hello")
    filesystem.write(
        "/data/misc/bluetooth/logs/btsnoop_hci.log", b"secret", requires_su=True
    )
    return filesystem


def test_read_world_readable(fs):
    assert fs.read("/open/readme.txt") == b"hello"


def test_su_file_blocks_unprivileged_read(fs):
    with pytest.raises(PermissionError):
        fs.read("/data/misc/bluetooth/logs/btsnoop_hci.log")


def test_su_file_readable_with_su(fs):
    assert fs.read("/data/misc/bluetooth/logs/btsnoop_hci.log", su=True) == b"secret"


def test_missing_file_raises(fs):
    with pytest.raises(FileNotFoundError):
        fs.read("/nope")


def test_overwrite_keeps_permission_bit(fs):
    fs.write("/data/misc/bluetooth/logs/btsnoop_hci.log", b"new")
    with pytest.raises(PermissionError):
        fs.read("/data/misc/bluetooth/logs/btsnoop_hci.log")


def test_user_write_respects_su(fs):
    with pytest.raises(PermissionError):
        fs.user_write("/data/misc/bluetooth/logs/btsnoop_hci.log", b"x")
    fs.user_write("/data/misc/bluetooth/logs/btsnoop_hci.log", b"x", su=True)


def test_user_write_creates_new_file(fs):
    fs.user_write("/tmp/scratch", b"y")
    assert fs.read("/tmp/scratch") == b"y"


def test_delete_requires_su(fs):
    with pytest.raises(PermissionError):
        fs.delete("/data/misc/bluetooth/logs/btsnoop_hci.log")
    fs.delete("/data/misc/bluetooth/logs/btsnoop_hci.log", su=True)
    assert not fs.exists("/data/misc/bluetooth/logs/btsnoop_hci.log")


def test_listdir_prefix(fs):
    fs.write("/data/misc/a", b"")
    fs.write("/data/misc/b", b"")
    names = fs.listdir("/data/misc")
    assert "/data/misc/a" in names and "/data/misc/b" in names


def test_text_helpers(fs):
    fs.write_text("/persist/bdaddr.txt", "aa:bb:cc:dd:ee:ff")
    assert fs.read_text("/persist/bdaddr.txt") == "aa:bb:cc:dd:ee:ff"
