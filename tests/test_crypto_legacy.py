"""Unit + property tests for E1 / E21 / E22 / E3."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import BdAddr, LinkKey
from repro.crypto.legacy import e1, e21, e22, e3, reduce_key_entropy

ADDR = BdAddr.parse("aa:bb:cc:dd:ee:ff")
OTHER = BdAddr.parse("11:22:33:44:55:66")
KEY = LinkKey(bytes(range(16)))
RAND = b"\x5a" * 16

rand16 = st.binary(min_size=16, max_size=16)
key16 = st.binary(min_size=16, max_size=16).map(LinkKey)
addr6 = st.binary(min_size=6, max_size=6).map(BdAddr)


class TestE1:
    def test_output_shapes(self):
        sres, aco = e1(KEY, RAND, ADDR)
        assert len(sres) == 4 and len(aco) == 12

    def test_deterministic(self):
        assert e1(KEY, RAND, ADDR) == e1(KEY, RAND, ADDR)

    @given(key16, rand16, addr6)
    @settings(max_examples=40)
    def test_verifier_prover_agreement(self, key, rand, addr):
        """The core LMP property: same key ⇒ same SRES on both sides."""
        assert e1(key, rand, addr)[0] == e1(key, rand, addr)[0]

    @given(rand16, addr6)
    @settings(max_examples=40)
    def test_different_keys_fail_the_challenge(self, rand, addr):
        k1 = LinkKey(b"\x01" * 16)
        k2 = LinkKey(b"\x02" * 16)
        assert e1(k1, rand, addr)[0] != e1(k2, rand, addr)[0]

    def test_challenge_binds_claimed_address(self):
        assert e1(KEY, RAND, ADDR)[0] != e1(KEY, RAND, OTHER)[0]

    def test_challenge_depends_on_rand(self):
        assert e1(KEY, RAND, ADDR)[0] != e1(KEY, b"\x00" * 16, ADDR)[0]

    def test_bad_rand_length_rejected(self):
        with pytest.raises(ValueError):
            e1(KEY, b"short", ADDR)


class TestE21E22:
    def test_e21_yields_link_key(self):
        key = e21(RAND, ADDR)
        assert isinstance(key, LinkKey)

    def test_e21_depends_on_address(self):
        assert e21(RAND, ADDR) != e21(RAND, OTHER)

    def test_e22_pin_sensitivity(self):
        assert e22(RAND, b"0000", ADDR) != e22(RAND, b"0001", ADDR)

    def test_e22_rejects_empty_and_oversized_pin(self):
        with pytest.raises(ValueError):
            e22(RAND, b"", ADDR)
        with pytest.raises(ValueError):
            e22(RAND, b"x" * 17, ADDR)

    def test_combination_key_construction_is_symmetric(self):
        """K_AB = E21(ra, A) ⊕ E21(rb, B) is the same from both views."""
        ra, rb = b"\x01" * 16, b"\x02" * 16
        ka = e21(ra, ADDR).value
        kb = e21(rb, OTHER).value
        combined_a = bytes(x ^ y for x, y in zip(ka, kb))
        combined_b = bytes(x ^ y for x, y in zip(kb, ka))
        assert combined_a == combined_b


class TestE3:
    def test_kc_shape_and_determinism(self):
        aco = b"\x07" * 12
        assert len(e3(KEY, RAND, aco)) == 16
        assert e3(KEY, RAND, aco) == e3(KEY, RAND, aco)

    def test_kc_depends_on_all_inputs(self):
        aco = b"\x07" * 12
        assert e3(KEY, RAND, aco) != e3(KEY, RAND, b"\x08" * 12)
        assert e3(KEY, RAND, aco) != e3(KEY, b"\x00" * 16, aco)
        assert e3(KEY, RAND, aco) != e3(LinkKey(b"\x09" * 16), RAND, aco)

    def test_cof_length_enforced(self):
        with pytest.raises(ValueError):
            e3(KEY, RAND, b"\x00" * 11)


class TestEntropyReduction:
    def test_full_entropy_is_identity(self):
        kc = bytes(range(16))
        assert reduce_key_entropy(kc, 16) == kc

    def test_knob_style_one_byte(self):
        kc = bytes(range(1, 17))
        reduced = reduce_key_entropy(kc, 1)
        assert reduced[0] == kc[0]
        assert reduced[1:] == b"\x00" * 15

    @given(st.integers(min_value=1, max_value=16))
    def test_keyspace_shrinks_monotonically(self, entropy):
        kc = bytes(range(16))
        reduced = reduce_key_entropy(kc, entropy)
        assert reduced[:entropy] == kc[:entropy]
        assert all(byte == 0 for byte in reduced[entropy:])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            reduce_key_entropy(bytes(16), 0)
        with pytest.raises(ValueError):
            reduce_key_entropy(bytes(16), 17)
