"""Tests: the controller's stored-link-key commands and their leakage.

The paper's §IV explains hosts manage link keys because controllers
"typically [have] limited storage".  The stored-key commands exist
anyway — and every one of them moves plaintext keys across the HCI,
so the extractor covers them too.
"""

import pytest

from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import HciDump

ADDR_1 = BdAddr.parse("48:90:11:22:33:44")
ADDR_2 = BdAddr.parse("48:90:11:22:33:45")
ADDR_3 = BdAddr.parse("48:90:11:22:33:46")
KEY_1 = LinkKey(bytes(range(16)))
KEY_2 = LinkKey(bytes(range(16, 32)))
KEY_3 = LinkKey(bytes(range(32, 48)))


@pytest.fixture
def device(world):
    from repro.devices.catalog import NEXUS_5X_A8

    dev = world.add_device("phone", NEXUS_5X_A8)
    dev.power_on()
    world.run_for(0.5)
    return world, dev


def _write(world, dev, addr, key):
    dev.host.send_command(
        cmd.WriteStoredLinkKey(num_keys_to_write=1, bd_addr=addr, link_key=key)
    )
    world.run_for(0.1)


class TestStoredKeyCache:
    def test_write_and_read_back(self, device):
        world, dev = device
        _write(world, dev, ADDR_1, KEY_1)
        assert dev.controller.stored_link_keys[ADDR_1] == KEY_1

    def test_capacity_limit_enforced(self, device):
        """The 'limited storage' the paper cites: capacity 2 by default."""
        world, dev = device
        _write(world, dev, ADDR_1, KEY_1)
        _write(world, dev, ADDR_2, KEY_2)
        _write(world, dev, ADDR_3, KEY_3)
        assert len(dev.controller.stored_link_keys) == 2
        assert ADDR_3 not in dev.controller.stored_link_keys

    def test_overwrite_existing_is_allowed_at_capacity(self, device):
        world, dev = device
        _write(world, dev, ADDR_1, KEY_1)
        _write(world, dev, ADDR_2, KEY_2)
        _write(world, dev, ADDR_1, KEY_3)  # update, not insert
        assert dev.controller.stored_link_keys[ADDR_1] == KEY_3

    def test_delete_one_and_all(self, device):
        world, dev = device
        _write(world, dev, ADDR_1, KEY_1)
        _write(world, dev, ADDR_2, KEY_2)
        dev.host.send_command(
            cmd.DeleteStoredLinkKey(bd_addr=ADDR_1, delete_all_flag=0)
        )
        world.run_for(0.1)
        assert ADDR_1 not in dev.controller.stored_link_keys
        dev.host.send_command(
            cmd.DeleteStoredLinkKey(bd_addr=ADDR_2, delete_all_flag=1)
        )
        world.run_for(0.1)
        assert dev.controller.stored_link_keys == {}

    def test_read_emits_return_link_keys_events(self, device):
        world, dev = device
        _write(world, dev, ADDR_1, KEY_1)
        dump = HciDump().attach(dev.transport)
        dev.host.send_command(
            cmd.ReadStoredLinkKey(bd_addr=ADDR_1, read_all_flag=1)
        )
        world.run_for(0.1)
        names = [entry.packet.display_name for entry in dump.entries()]
        assert "HCI_Return_Link_Keys" in names


class TestStoredKeyLeakage:
    def test_extractor_catches_write_stored_link_key(self, device):
        world, dev = device
        dump = HciDump().attach(dev.transport)
        _write(world, dev, ADDR_1, KEY_1)
        findings = extract_link_keys(dump)
        assert any(
            f.source == "Write_Stored_Link_Key" and f.link_key == KEY_1
            for f in findings
        )

    def test_extractor_catches_return_link_keys(self, device):
        world, dev = device
        _write(world, dev, ADDR_1, KEY_1)
        dump = HciDump().attach(dev.transport)
        dev.host.send_command(
            cmd.ReadStoredLinkKey(bd_addr=ADDR_1, read_all_flag=1)
        )
        world.run_for(0.1)
        findings = extract_link_keys(dump)
        assert any(
            f.source == "Return_Link_Keys" and f.link_key == KEY_1
            for f in findings
        )
