"""Controller tests: discovery, connection establishment, disconnect."""

import pytest

from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8
from repro.hci.constants import ErrorCode


@pytest.fixture
def pair(device_pair):
    return device_pair


class TestDiscovery:
    def test_inquiry_finds_discoverable_peer(self, pair):
        world, m, c = pair
        op = m.host.gap.start_discovery()
        world.run_for(10.0)
        assert op.success
        assert [str(d.addr) for d in op.result] == [str(c.bd_addr)]

    def test_hidden_device_not_discovered(self, pair):
        world, m, c = pair
        c.host.gap.set_scan_mode(connectable=True, discoverable=False)
        world.run_for(0.5)
        op = m.host.gap.start_discovery()
        world.run_for(10.0)
        assert op.success and op.result == []

    def test_concurrent_discovery_refused(self, pair):
        world, m, c = pair
        first = m.host.gap.start_discovery()
        second = m.host.gap.start_discovery()
        assert second.done and not second.success
        world.run_for(10.0)
        assert first.success

    def test_discovery_reports_class_of_device(self, pair):
        world, m, c = pair
        op = m.host.gap.start_discovery()
        world.run_for(10.0)
        assert op.result[0].class_of_device == c.spec.class_of_device


class TestConnection:
    def test_connect_success(self, pair):
        world, m, c = pair
        op = m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        assert op.success
        assert m.host.gap.is_connected(c.bd_addr)
        assert c.host.gap.is_connected(m.bd_addr)

    def test_connection_handles_are_symmetric_links(self, pair):
        world, m, c = pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        handle = m.host.gap.handle_for(c.bd_addr)
        link = m.controller.link_by_handle(handle)
        assert link.phys.peer_of(m.controller) is c.controller

    def test_connect_unreachable_times_out(self, pair):
        world, m, c = pair
        world.set_in_range(m, c, False)
        op = m.host.gap.connect(c.bd_addr)
        world.run_for(10.0)
        assert op.done and op.status == ErrorCode.PAGE_TIMEOUT

    def test_connect_non_connectable_times_out(self, pair):
        world, m, c = pair
        c.host.gap.set_scan_mode(connectable=False, discoverable=True)
        world.run_for(0.5)
        op = m.host.gap.connect(c.bd_addr)
        world.run_for(10.0)
        assert op.done and not op.success

    def test_duplicate_connect_returns_existing(self, pair):
        world, m, c = pair
        first = m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        second = m.host.gap.connect(c.bd_addr)
        assert second.done and second.success

    def test_incoming_rejected_when_policy_denies(self, pair):
        world, m, c = pair
        c.host.gap.accept_incoming = False
        op = m.host.gap.connect(c.bd_addr)
        world.run_for(10.0)
        assert op.done and op.status == ErrorCode.CONNECTION_REJECTED_SECURITY

    def test_disconnect_propagates(self, pair):
        world, m, c = pair
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        m.host.gap.disconnect(c.bd_addr)
        world.run_for(2.0)
        assert not m.host.gap.is_connected(c.bd_addr)
        assert not c.host.gap.is_connected(m.bd_addr)

    def test_connection_request_event_carries_peer_cod(self, pair):
        world, m, c = pair
        from repro.snoop.hcidump import HciDump

        dump = HciDump().attach(c.transport)
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        requests = [
            e.packet
            for e in dump.entries()
            if e.packet.display_name == "HCI_Connection_Request"
        ]
        assert requests and requests[0].class_of_device == m.spec.class_of_device


class TestSupervision:
    def test_idle_link_drops_after_supervision_timeout(self, pair):
        world, m, c = pair
        m.controller.supervision_timeout_s = 3.0
        c.controller.supervision_timeout_s = 3.0
        op = m.host.gap.connect(c.bd_addr)
        world.run_for(2.0)
        assert op.success
        world.run_for(10.0)
        assert not m.host.gap.is_connected(c.bd_addr)

    def test_active_link_survives(self, pair):
        world, m, c = pair
        m.controller.supervision_timeout_s = 3.0
        c.controller.supervision_timeout_s = 3.0
        m.host.gap.connect(c.bd_addr)
        world.run_for(1.0)

        def keepalive():
            if m.host.gap.is_connected(c.bd_addr):
                m.host.sdp.query(c.bd_addr)
                world.simulator.schedule(1.0, keepalive)

        keepalive()
        world.run_for(8.0)
        assert m.host.gap.is_connected(c.bd_addr)
