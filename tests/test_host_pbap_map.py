"""Tests: PBAP / MAP profiles and the full exfiltration chain."""

import pytest

from repro.attacks.exfiltration import exfiltrate
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.core.types import LinkKey
from repro.host.map_profile import Message, parse_bmessages
from repro.host.pbap import Contact, parse_vcards

CONTACTS = [
    Contact("Alice Example", "+1-555-0100"),
    Contact("Bob Example", "+1-555-0101"),
]
MESSAGES = [
    Message("Alice Example", "Dinner at 8?"),
    Message("+1-555-0199", "Your one-time code is 424242"),
]


@pytest.fixture
def loaded_pair(bonded_pair):
    world, m, c = bonded_pair
    m.host.pbap.load_phonebook(CONTACTS)
    m.host.map.load_messages(MESSAGES)
    return world, m, c


class TestFormats:
    def test_vcard_roundtrip(self):
        encoded = "".join(contact.to_vcard() for contact in CONTACTS)
        assert parse_vcards(encoded.encode()) == CONTACTS

    def test_vcard_contains_fields(self):
        card = CONTACTS[0].to_vcard()
        assert "BEGIN:VCARD" in card and "TEL;CELL:+1-555-0100" in card

    def test_bmessage_roundtrip(self):
        encoded = "".join(message.to_bmessage() for message in MESSAGES)
        assert parse_bmessages(encoded.encode()) == MESSAGES


class TestLegitimateAccess:
    def test_bonded_peer_pulls_phonebook(self, loaded_pair):
        world, m, c = loaded_pair
        op = c.host.pbap.pull_phonebook(m.bd_addr)
        world.run_for(15.0)
        assert op.success
        assert op.result == CONTACTS

    def test_bonded_peer_lists_messages(self, loaded_pair):
        world, m, c = loaded_pair
        op = c.host.map.list_messages(m.bd_addr)
        world.run_for(15.0)
        assert op.success
        assert op.result == MESSAGES

    def test_unbonded_peer_is_refused(self, device_pair):
        """No shared key → LMP auth fails → no phonebook."""
        world, m, c = device_pair
        m.host.pbap.load_phonebook(CONTACTS)
        op = c.host.pbap.pull_phonebook(m.bd_addr)
        world.run_for(15.0)
        assert op.done and not op.success
        assert m.host.pbap.pulls_served == 0

    def test_wrong_key_is_refused(self, loaded_pair):
        from repro.host.storage import BondingRecord

        world, m, c = loaded_pair
        c.host.security.add_bond(
            BondingRecord(addr=m.bd_addr, link_key=LinkKey(b"\xAB" * 16))
        )
        op = c.host.pbap.pull_phonebook(m.bd_addr)
        world.run_for(15.0)
        assert op.done and not op.success


class TestExfiltrationChain:
    def test_extracted_key_exfiltrates_everything(self):
        """The paper's full kill chain: bond → extract → impersonate →
        mine phonebook and messages, silently."""
        world = build_world(WorldConfig(seed=55))
        m, c, a = standard_cast(world)
        m.host.pbap.load_phonebook(CONTACTS)
        m.host.map.load_messages(MESSAGES)
        bond(world, c, m)

        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        assert report.extraction_success

        # Real C leaves the scene; the attacker steps in as C.
        world.set_in_range(c, m, False)
        world.set_in_range(a, m, True)
        a.host.drop_link_key_requests = False
        c.host.gap.set_scan_mode(connectable=False, discoverable=False)

        exfil = exfiltrate(
            world,
            a,
            m,
            trusted_c_addr=c.bd_addr,
            trusted_c_cod=c.controller.class_of_device,
            trusted_c_name=c.controller.local_name,
            link_key=report.extracted_key,
        )
        assert exfil.success, exfil.notes
        assert exfil.phonebook == CONTACTS
        assert exfil.messages == MESSAGES
        assert exfil.silent  # not a single popup on the victim

    def test_wrong_key_exfiltrates_nothing(self):
        world = build_world(WorldConfig(seed=56))
        m, c, a = standard_cast(world)
        m.host.pbap.load_phonebook(CONTACTS)
        bond(world, c, m)
        world.set_in_range(c, m, False)
        c.host.gap.set_scan_mode(connectable=False, discoverable=False)

        exfil = exfiltrate(
            world,
            a,
            m,
            trusted_c_addr=c.bd_addr,
            trusted_c_cod=c.controller.class_of_device,
            trusted_c_name=c.controller.local_name,
            link_key=LinkKey(b"\x00" * 16),
        )
        assert not exfil.success
