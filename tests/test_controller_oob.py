"""Tests: the Out of Band association model (NFC-style exchange)."""

import pytest

from repro.core.types import LinkKeyType
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A6, NEXUS_5X_A8


def _exchange_oob(world, a, b):
    """The physical side channel: tap the two devices together."""
    done = {}

    def a_ready(c, r):
        b.host.security.receive_oob_data(a.bd_addr, c, r)
        done["a"] = (c, r)

    def b_ready(c, r):
        a.host.security.receive_oob_data(b.bd_addr, c, r)
        done["b"] = (c, r)

    a.host.read_local_oob(a_ready)
    b.host.read_local_oob(b_ready)
    world.run_for(0.5)
    assert "a" in done and "b" in done
    return done


@pytest.fixture
def oob_pair(world):
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    _exchange_oob(world, m, c)
    return world, m, c


class TestOobPairing:
    def test_oob_pairing_succeeds(self, oob_pair):
        world, m, c = oob_pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert (
            m.host.security.bond_for(c.bd_addr).link_key
            == c.host.security.bond_for(m.bd_addr).link_key
        )

    def test_oob_needs_no_user_interaction(self, oob_pair):
        """The commitment travelled over the tap: zero popups."""
        world, m, c = oob_pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert m.user.popups_seen == 0
        assert c.user.popups_seen == 0

    def test_oob_key_is_authenticated(self, oob_pair):
        world, m, c = oob_pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type == LinkKeyType.AUTHENTICATED_COMBINATION_P256

    def test_read_local_oob_returns_c_and_r(self, world):
        m = world.add_device("M", LG_VELVET)
        m.power_on()
        captured = {}
        m.host.read_local_oob(lambda c, r: captured.update(c=c, r=r))
        world.run_for(0.5)
        assert len(captured["c"]) == 16 and len(captured["r"]) == 16


class TestOobMitmResistance:
    def test_mitm_public_key_substitution_detected(self, world):
        """A MITM that answers the page cannot match the tap-carried
        commitment: its public key fails the f1 check."""
        from repro.attacks.attacker import Attacker
        from repro.core.types import IoCapability

        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        a = world.add_device("A", NEXUS_5X_A6)
        m.power_on()
        c.power_on()
        a.power_on(connectable=False, discoverable=False)
        world.run_for(0.5)
        _exchange_oob(world, m, c)  # the tap happened with the REAL C

        attacker = Attacker(a)
        attacker.set_io_capability(IoCapability.NO_INPUT_NO_OUTPUT)
        attacker.spoof_device(c)
        attacker.go_connectable()
        world.set_in_range(m, c, False)  # attacker wins the page for sure
        world.run_for(0.2)

        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.done and not op.success
        assert not m.host.security.is_bonded(c.bd_addr)

    def test_one_sided_oob_still_pairs_and_verifies(self, world):
        """Per spec, OOB runs when either side holds data: the holder
        verifies the peer's key; the other participates with r=0."""
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        captured = {}
        c.host.read_local_oob(lambda cc, rr: captured.update(c=cc, r=rr))
        world.run_for(0.5)
        m.host.security.receive_oob_data(c.bd_addr, captured["c"], captured["r"])
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert m.user.popups_seen == 0  # OOB stays silent

    def test_one_sided_oob_still_catches_mitm(self, world):
        """Even one-sided, the data holder's verification bites."""
        from repro.attacks.attacker import Attacker
        from repro.core.types import IoCapability

        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        a = world.add_device("A", NEXUS_5X_A6)
        m.power_on()
        c.power_on()
        a.power_on(connectable=False, discoverable=False)
        world.run_for(0.5)
        captured = {}
        c.host.read_local_oob(lambda cc, rr: captured.update(c=cc, r=rr))
        world.run_for(0.5)
        m.host.security.receive_oob_data(c.bd_addr, captured["c"], captured["r"])

        attacker = Attacker(a)
        attacker.set_io_capability(IoCapability.NO_INPUT_NO_OUTPUT)
        attacker.spoof_device(c)
        attacker.go_connectable()
        world.set_in_range(m, c, False)
        world.run_for(0.2)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.done and not op.success
