"""Unit tests for the host security manager."""

import pytest

from repro.core.types import BdAddr, LinkKey
from repro.hci import events as evt
from repro.hci.constants import ErrorCode
from repro.host.storage import BondingRecord
from repro.snoop.hcidump import HciDump

PEER = BdAddr.parse("48:90:11:22:33:44")
KEY = LinkKey(bytes(range(16)))


@pytest.fixture
def host(device_pair):
    world, m, c = device_pair
    return world, m.host


def _record():
    return BondingRecord(addr=PEER, link_key=KEY, name="car-kit")


class TestKeyDatabase:
    def test_add_and_lookup(self, host):
        _, stack = host
        stack.security.add_bond(_record())
        assert stack.security.is_bonded(PEER)
        assert stack.security.bond_for(PEER).link_key == KEY

    def test_bond_persists_to_store(self, host):
        _, stack = host
        stack.security.add_bond(_record())
        assert stack.store.load()[PEER].link_key == KEY

    def test_remove_bond(self, host):
        _, stack = host
        stack.security.add_bond(_record())
        stack.security.remove_bond(PEER)
        assert not stack.security.is_bonded(PEER)
        assert PEER not in stack.store.load()

    def test_reload_from_store_picks_up_external_edits(self, host):
        _, stack = host
        stack.store.save({PEER: _record()})
        assert not stack.security.is_bonded(PEER)
        stack.security.reload_from_store()
        assert stack.security.is_bonded(PEER)


class TestLinkKeyRequestHandling:
    def test_known_peer_answered_with_plaintext_key(self, host):
        world, stack = host
        dump = HciDump().attach(stack.transport)
        stack.security.add_bond(_record())
        stack._process(evt.LinkKeyRequest(bd_addr=PEER).to_h4_bytes())
        world.run_for(0.5)
        from repro.snoop.extractor import extract_link_keys

        findings = extract_link_keys(dump)
        assert findings and findings[0].link_key == KEY

    def test_unknown_peer_gets_negative_reply(self, host):
        world, stack = host
        sent = []
        original = stack.send_command
        stack.send_command = lambda command: sent.append(command) or original(
            command
        )
        stack._process(evt.LinkKeyRequest(bd_addr=PEER).to_h4_bytes())
        assert sent[0].display_name == "HCI_Link_Key_Request_Negative_Reply"

    def test_drop_patch_suppresses_any_reply(self, host):
        world, stack = host
        stack.drop_link_key_requests = True
        sent = []
        stack.send_command = lambda command: sent.append(command)
        stack._process(evt.LinkKeyRequest(bd_addr=PEER).to_h4_bytes())
        assert sent == []


class TestKeyDeletionPolicy:
    @pytest.mark.parametrize(
        "status,deleted",
        [
            (ErrorCode.AUTHENTICATION_FAILURE, True),
            (ErrorCode.PIN_OR_KEY_MISSING, True),
            (ErrorCode.LMP_RESPONSE_TIMEOUT, False),
            (0, False),
        ],
    )
    def test_deletion_matrix(self, host, status, deleted):
        _, stack = host
        stack.security.add_bond(_record())
        stack.security.on_authentication_complete(PEER, status)
        assert stack.security.is_bonded(PEER) is (not deleted)

    def test_notification_stores_key_with_name(self, host):
        world, stack = host
        stack.gap.name_cache[PEER] = "LG VELVET"
        stack._process(
            evt.LinkKeyNotification(
                bd_addr=PEER, link_key=KEY, key_type=8
            ).to_h4_bytes()
        )
        record = stack.security.bond_for(PEER)
        assert record.link_key == KEY
        assert record.name == "LG VELVET"
        assert record.key_type == 8


class TestEventHold:
    def test_holding_buffers_then_flushes_in_order(self, host):
        world, stack = host
        processed = stack.events_processed
        stack.hold_events(2.0)
        stack._on_bytes(evt.InquiryComplete(status=0).to_h4_bytes())
        stack._on_bytes(evt.InquiryComplete(status=0).to_h4_bytes())
        assert stack.events_processed == processed
        world.run_for(3.0)
        assert stack.events_processed == processed + 2

    def test_holding_flag(self, host):
        world, stack = host
        assert not stack.holding
        stack.hold_events(1.0)
        assert stack.holding
        world.run_for(2.0)
        assert not stack.holding
