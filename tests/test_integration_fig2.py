"""Integration: the Fig. 2 pairing & authentication procedures.

Fig. 2a — non-bonded devices run the full SSP transaction; Fig. 2b —
bonded devices skip SSP and run only the LMP challenge-response.
These tests assert the *message sequences*, not just outcomes.
"""

import pytest

from repro.snoop.hcidump import HciDump


def _names(dump):
    return [entry.packet.display_name for entry in dump.entries()]


class TestFig2aFreshPairing:
    @pytest.fixture()
    def flow(self, device_pair):
        world, m, c = device_pair
        dump = HciDump().attach(m.transport)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        return _names(dump)

    def test_connection_precedes_authentication(self, flow):
        assert flow.index("HCI_Create_Connection") < flow.index(
            "HCI_Authentication_Requested"
        )

    def test_negative_key_reply_triggers_ssp(self, flow):
        """No stored key → negative reply → IO capability exchange."""
        neg = flow.index("HCI_Link_Key_Request_Negative_Reply")
        io = flow.index("HCI_IO_Capability_Request")
        assert neg < io

    def test_ssp_stage_events_in_order(self, flow):
        ordered = [
            "HCI_IO_Capability_Request",
            "HCI_IO_Capability_Response",
            "HCI_User_Confirmation_Request",
            "HCI_Simple_Pairing_Complete",
            "HCI_Link_Key_Notification",
        ]
        positions = [flow.index(name) for name in ordered if name in flow]
        assert len(positions) >= 4
        assert positions == sorted(positions)

    def test_key_notification_present(self, flow):
        assert "HCI_Link_Key_Notification" in flow

    def test_auth_complete_is_last_security_event(self, flow):
        assert "HCI_Authentication_Complete" in flow
        assert flow.index("HCI_Link_Key_Notification") < flow.index(
            "HCI_Authentication_Complete"
        )


class TestFig2bBondedReconnect:
    @pytest.fixture()
    def flow(self, bonded_pair):
        world, m, c = bonded_pair
        dump = HciDump().attach(m.transport)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success
        return _names(dump)

    def test_key_served_from_host(self, flow):
        assert "HCI_Link_Key_Request" in flow
        assert "HCI_Link_Key_Request_Reply" in flow

    def test_no_ssp_for_bonded_devices(self, flow):
        """Fig. 2b: pairing is omitted entirely."""
        assert "HCI_IO_Capability_Request" not in flow
        assert "HCI_User_Confirmation_Request" not in flow
        assert "HCI_Link_Key_Notification" not in flow

    def test_authentication_succeeds(self, flow):
        assert "HCI_Authentication_Complete" in flow
