"""Controller tests: legacy (bonded) LMP authentication semantics.

These cover the exact properties the link key extraction attack
depends on: the host is asked for the key on every authentication, a
silent host stalls the peer into a *timeout* (not an auth failure),
and only genuine SRES mismatches delete keys.
"""

import pytest

from repro.core.types import LinkKey
from repro.hci.constants import ErrorCode
from repro.host.storage import BondingRecord


@pytest.fixture
def bonded(bonded_pair):
    return bonded_pair


class TestBondedReauthentication:
    def test_reauth_succeeds_with_stored_keys(self, bonded):
        world, m, c = bonded
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success

    def test_no_new_pairing_popup_on_reauth(self, bonded):
        world, m, c = bonded
        popups_before = m.user.popups_seen
        m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert m.user.popups_seen == popups_before

    def test_reauth_serves_key_from_host(self, bonded):
        world, m, c = bonded
        served_before = m.host.security.link_keys_served
        m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert m.host.security.link_keys_served > served_before

    def test_prover_side_also_serves_key(self, bonded):
        world, m, c = bonded
        served_before = c.host.security.link_keys_served
        m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert c.host.security.link_keys_served > served_before


class TestWrongKey:
    def test_wrong_key_fails_authentication(self, bonded):
        world, m, c = bonded
        c.host.security.add_bond(
            BondingRecord(addr=m.bd_addr, link_key=LinkKey(b"\xEE" * 16))
        )
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(15.0)
        assert op.done and op.status == ErrorCode.AUTHENTICATION_FAILURE

    def test_auth_failure_deletes_verifier_key(self, bonded):
        world, m, c = bonded
        c.host.security.add_bond(
            BondingRecord(addr=m.bd_addr, link_key=LinkKey(b"\xEE" * 16))
        )
        m.host.gap.pair(c.bd_addr)
        world.run_for(15.0)
        assert not m.host.security.is_bonded(c.bd_addr)

    def test_missing_prover_key_reports_key_missing(self, bonded):
        world, m, c = bonded
        c.host.security.remove_bond(m.bd_addr)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(15.0)
        assert op.done and op.status == ErrorCode.PIN_OR_KEY_MISSING


class TestSilentProverTimeout:
    """The Fig. 9 patch behaviour, tested at the stack level."""

    def test_silent_prover_causes_lmp_timeout(self, bonded):
        world, m, c = bonded
        c.host.drop_link_key_requests = True
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(15.0)
        assert op.done and op.status == ErrorCode.LMP_RESPONSE_TIMEOUT

    def test_timeout_preserves_verifier_key(self, bonded):
        """No authentication failure ⇒ the bonded key survives."""
        world, m, c = bonded
        key_before = m.host.security.bond_for(c.bd_addr).link_key
        c.host.drop_link_key_requests = True
        m.host.gap.pair(c.bd_addr)
        world.run_for(15.0)
        assert m.host.security.bond_for(c.bd_addr).link_key == key_before

    def test_timeout_drops_the_link(self, bonded):
        world, m, c = bonded
        c.host.drop_link_key_requests = True
        m.host.gap.pair(c.bd_addr)
        world.run_for(15.0)
        assert not m.host.gap.is_connected(c.bd_addr)

    def test_verifier_key_request_still_logged(self, bonded):
        """Even though the peer is silent, the verifier's own host
        already served the key — the extraction attack's moment."""
        from repro.snoop import HciDump, extract_link_keys

        world, m, c = bonded
        dump = HciDump().attach(m.transport)
        c.host.drop_link_key_requests = True
        m.host.gap.pair(c.bd_addr)
        world.run_for(15.0)
        findings = extract_link_keys(dump)
        assert any(f.peer == c.bd_addr for f in findings)
