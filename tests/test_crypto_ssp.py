"""Unit tests for the SSP functions f1/f2/f3/g and h3/h4/h5."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import BdAddr, IoCapability
from repro.crypto.ssp import (
    KEY_ID_BTLK,
    f1_p192,
    f1_p256,
    f2_p192,
    f2_p256,
    f3_p192,
    f3_p256,
    g_numeric,
    h3,
    h4,
    h5,
    io_cap_bytes,
)

A1 = BdAddr.parse("aa:bb:cc:dd:ee:01")
A2 = BdAddr.parse("aa:bb:cc:dd:ee:02")
U = b"\x01" * 24
V = b"\x02" * 24
X = b"\x03" * 16
N1 = b"\x04" * 16
N2 = b"\x05" * 16
DH = b"\x06" * 24

nonces = st.binary(min_size=16, max_size=16)


@pytest.mark.parametrize("f1", [f1_p192, f1_p256], ids=["p192", "p256"])
class TestF1:
    def test_commitment_is_128_bits(self, f1):
        assert len(f1(U, V, X, b"\x00")) == 16

    def test_commitment_binds_nonce(self, f1):
        assert f1(U, V, X, b"\x00") != f1(U, V, b"\x04" * 16, b"\x00")

    def test_commitment_binds_public_keys(self, f1):
        assert f1(U, V, X, b"\x00") != f1(V, U, X, b"\x00")

    @given(nonces)
    @settings(max_examples=25)
    def test_verification_equation(self, f1, nonce):
        """The responder's Cb verifies iff recomputed from the same Nb."""
        commitment = f1(U, V, nonce, b"\x00")
        assert f1(U, V, nonce, b"\x00") == commitment


@pytest.mark.parametrize("f2", [f2_p192, f2_p256], ids=["p192", "p256"])
class TestF2:
    def test_both_sides_derive_same_key(self, f2):
        assert f2(DH, N1, N2, KEY_ID_BTLK, A1, A2) == f2(
            DH, N1, N2, KEY_ID_BTLK, A1, A2
        )

    def test_key_binds_addresses(self, f2):
        assert f2(DH, N1, N2, KEY_ID_BTLK, A1, A2) != f2(
            DH, N1, N2, KEY_ID_BTLK, A2, A1
        )

    def test_key_binds_dhkey(self, f2):
        assert f2(DH, N1, N2, KEY_ID_BTLK, A1, A2) != f2(
            b"\x07" * 24, N1, N2, KEY_ID_BTLK, A1, A2
        )


@pytest.mark.parametrize("f3", [f3_p192, f3_p256], ids=["p192", "p256"])
class TestF3:
    def test_check_value_shape(self, f3):
        io = io_cap_bytes(IoCapability.DISPLAY_YES_NO, False, 0x03)
        assert len(f3(DH, N1, N2, b"\x00" * 16, io, A1, A2)) == 16

    def test_check_binds_io_capabilities(self, f3):
        """f3 commits to the announced IO caps — the hook a spec-level
        downgrade detection could use."""
        io_a = io_cap_bytes(IoCapability.DISPLAY_YES_NO, False, 0x03)
        io_b = io_cap_bytes(IoCapability.NO_INPUT_NO_OUTPUT, False, 0x03)
        assert f3(DH, N1, N2, b"\x00" * 16, io_a, A1, A2) != f3(
            DH, N1, N2, b"\x00" * 16, io_b, A1, A2
        )


class TestG:
    def test_numeric_value_is_six_digits(self):
        value = g_numeric(U, V, N1, N2)
        assert 0 <= value <= 999_999

    def test_numeric_value_changes_with_nonces(self):
        values = {
            g_numeric(U, V, bytes([i]) * 16, N2) for i in range(20)
        }
        assert len(values) > 15  # essentially unique per nonce

    def test_both_sides_compute_same_number(self):
        assert g_numeric(U, V, N1, N2) == g_numeric(U, V, N1, N2)


class TestHFunctions:
    def test_h3_h4_shapes(self):
        assert len(h3(X, A1, A2, b"\x00" * 8)) == 16
        assert len(h4(X, A1, A2)) == 16

    def test_h5_is_32_bytes(self):
        assert len(h5(X, N1, N2)) == 32

    def test_h3_binds_aco(self):
        assert h3(X, A1, A2, b"\x00" * 8) != h3(X, A1, A2, b"\x01" * 8)

    def test_h4_direction_matters(self):
        assert h4(X, A1, A2) != h4(X, A2, A1)


class TestIoCapBytes:
    def test_layout(self):
        raw = io_cap_bytes(IoCapability.NO_INPUT_NO_OUTPUT, True, 0x05)
        assert raw == bytes([0x03, 0x01, 0x05])
