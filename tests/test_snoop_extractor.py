"""Unit tests for the HCI-dump link key extractor and dump renderer."""

import pytest

from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.sim.eventloop import Simulator
from repro.snoop.extractor import extract_link_keys, keys_by_peer, latest_key_for
from repro.snoop.hcidump import HciDump, entries_from_btsnoop, render_dump_table
from repro.transport.uart import UartH4Transport

ADDR_M = BdAddr.parse("48:90:11:22:33:44")
ADDR_X = BdAddr.parse("02:02:02:02:02:02")
KEY_1 = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")
KEY_2 = LinkKey(bytes(range(16)))


@pytest.fixture
def recorded_dump():
    sim = Simulator()
    transport = UartH4Transport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    dump = HciDump().attach(transport)
    transport.send_from_host(cmd.AuthenticationRequested(connection_handle=6))
    transport.send_from_controller(evt.LinkKeyRequest(bd_addr=ADDR_M))
    transport.send_from_host(
        cmd.LinkKeyRequestReply(bd_addr=ADDR_M, link_key=KEY_1)
    )
    transport.send_from_controller(
        evt.LinkKeyNotification(bd_addr=ADDR_X, link_key=KEY_2, key_type=7)
    )
    sim.run()
    return dump


def test_extracts_from_reply_and_notification(recorded_dump):
    findings = extract_link_keys(recorded_dump)
    assert len(findings) == 2
    sources = {finding.source for finding in findings}
    assert sources == {"Link_Key_Request_Reply", "Link_Key_Notification"}


def test_extracts_from_on_disk_btsnoop_bytes(recorded_dump):
    findings = extract_link_keys(recorded_dump.to_btsnoop_bytes())
    assert {f.link_key for f in findings} == {KEY_1, KEY_2}


def test_peer_attribution(recorded_dump):
    assert keys_by_peer(recorded_dump) == {ADDR_M: KEY_1, ADDR_X: KEY_2}


def test_latest_key_for_specific_peer(recorded_dump):
    finding = latest_key_for(recorded_dump, ADDR_M)
    assert finding is not None and finding.link_key == KEY_1
    assert latest_key_for(recorded_dump, BdAddr.parse("09:09:09:09:09:09")) is None


def test_latest_wins_on_key_change():
    sim = Simulator()
    transport = UartH4Transport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    dump = HciDump().attach(transport)
    transport.send_from_host(cmd.LinkKeyRequestReply(bd_addr=ADDR_M, link_key=KEY_2))
    transport.send_from_host(cmd.LinkKeyRequestReply(bd_addr=ADDR_M, link_key=KEY_1))
    sim.run()
    assert keys_by_peer(dump)[ADDR_M] == KEY_1


def test_clean_dump_yields_nothing():
    sim = Simulator()
    transport = UartH4Transport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    dump = HciDump().attach(transport)
    transport.send_from_host(cmd.Reset())
    sim.run()
    assert extract_link_keys(dump) == []


def test_finding_str_shows_key(recorded_dump):
    text = str(extract_link_keys(recorded_dump)[0])
    assert KEY_1.hex() in text


def test_entries_have_frames_and_directions(recorded_dump):
    entries = recorded_dump.entries()
    assert [entry.frame for entry in entries] == [1, 2, 3, 4]
    assert entries[0].packet_type == "Command"
    assert entries[1].packet_type == "Event"


def test_entries_from_btsnoop_matches_live(recorded_dump):
    live = recorded_dump.entries()
    parsed = entries_from_btsnoop(recorded_dump.to_btsnoop_bytes())
    assert [e.packet.display_name for e in live] == [
        e.packet.display_name for e in parsed
    ]


def test_render_dump_table_shape(recorded_dump):
    table = render_dump_table(recorded_dump.entries())
    assert "HCI_Link_Key_Request_Reply" in table
    assert "HCI_Authentication_Requested" in table
    assert table.splitlines()[0].startswith(" Fra")


def test_render_max_rows(recorded_dump):
    table = render_dump_table(recorded_dump.entries(), max_rows=2)
    # header + separator + 2 rows
    assert len(table.splitlines()) == 4


def test_detach_stops_recording(recorded_dump):
    count = len(recorded_dump)
    recorded_dump.detach()
    assert len(recorded_dump) == count
