"""Unit + property tests for HCI packet serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HciError
from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import (
    ErrorCode,
    EventCode,
    Opcode,
    PacketIndicator,
    ScanEnable,
    make_opcode,
    opcode_name,
)
from repro.hci.constants import event_name
from repro.hci.packets import HciAclData, HciCommand, HciEvent

ADDR = BdAddr.parse("00:1a:7d:da:71:0a")
KEY = LinkKey.parse("c4f16e949f04ee9c0fd6b1330289c324")

addrs = st.binary(min_size=6, max_size=6).map(BdAddr)
keys = st.binary(min_size=16, max_size=16).map(LinkKey)


class TestOpcodes:
    def test_make_opcode_layout(self):
        assert make_opcode(0x01, 0x000B) == 0x040B

    def test_link_key_request_reply_is_0x040b(self):
        assert Opcode.LINK_KEY_REQUEST_REPLY == 0x040B

    def test_ogf_ocf_split(self):
        assert Opcode.LINK_KEY_REQUEST_REPLY.ogf == 0x01
        assert Opcode.LINK_KEY_REQUEST_REPLY.ocf == 0x0B

    def test_opcode_names(self):
        assert opcode_name(0x040B) == "HCI_Link_Key_Request_Reply"
        assert "Unknown" in opcode_name(0xFFFF)

    def test_event_names(self):
        assert event_name(0x18) == "HCI_Link_Key_Notification"
        assert "Unknown" in event_name(0xEE)

    def test_scan_enable_bits(self):
        assert ScanEnable.INQUIRY_AND_PAGE.page_scan
        assert ScanEnable.INQUIRY_AND_PAGE.inquiry_scan
        assert not ScanEnable.PAGE_ONLY.inquiry_scan
        assert not ScanEnable.NONE.page_scan


class TestCommandWire:
    def test_link_key_reply_signature(self):
        """The paper's '0b 04 16' extraction signature."""
        raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_bytes()
        assert raw[:3] == bytes.fromhex("0b0416")
        assert len(raw) == 3 + 22

    def test_link_key_reply_field_layout(self):
        raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_bytes()
        assert raw[3:9] == ADDR.to_hci_bytes()
        assert raw[9:25] == KEY.to_hci_bytes()

    def test_h4_indicator_prefix(self):
        raw = cmd.Reset().to_h4_bytes()
        assert raw[0] == PacketIndicator.COMMAND

    def test_empty_command_has_zero_length(self):
        raw = cmd.Reset().to_bytes()
        assert raw[2] == 0 and len(raw) == 3

    def test_missing_field_rejected(self):
        with pytest.raises(HciError):
            cmd.Disconnect(connection_handle=1)

    def test_unexpected_field_rejected(self):
        with pytest.raises(HciError):
            cmd.Reset(bogus=1)

    def test_raw_command(self):
        command = HciCommand.raw(0x1234, b"\x01\x02")
        raw = command.to_bytes()
        assert raw == b"\x34\x12\x02\x01\x02"

    @given(addrs, keys)
    @settings(max_examples=30)
    def test_link_key_reply_roundtrip(self, addr, key):
        original = cmd.LinkKeyRequestReply(bd_addr=addr, link_key=key)
        parsed = cmd.LinkKeyRequestReply.from_parameters(original.parameters())
        assert parsed.bd_addr == addr and parsed.link_key == key

    @given(addrs)
    def test_create_connection_roundtrip(self, addr):
        original = cmd.CreateConnection(
            bd_addr=addr,
            packet_type=0xCC18,
            page_scan_repetition_mode=1,
            reserved=0,
            clock_offset=0x1234,
            allow_role_switch=1,
        )
        parsed = cmd.CreateConnection.from_parameters(original.parameters())
        assert parsed.bd_addr == addr and parsed.clock_offset == 0x1234

    def test_write_local_name_pads_to_248(self):
        raw = cmd.WriteLocalName(local_name="Nexus 5x").parameters()
        assert len(raw) == 248
        assert raw.startswith(b"Nexus 5x\x00")


class TestEventWire:
    def test_link_key_notification_layout(self):
        raw = evt.LinkKeyNotification(
            bd_addr=ADDR, link_key=KEY, key_type=4
        ).to_bytes()
        assert raw[0] == EventCode.LINK_KEY_NOTIFICATION
        assert raw[1] == 23  # 6 + 16 + 1
        assert raw[2:8] == ADDR.to_hci_bytes()

    def test_connection_complete_roundtrip(self):
        original = evt.ConnectionComplete(
            status=0,
            connection_handle=0x0006,
            bd_addr=ADDR,
            link_type=1,
            encryption_enabled=0,
        )
        parsed = evt.ConnectionComplete.from_parameters(original.parameters())
        assert parsed.connection_handle == 0x0006

    def test_command_complete_rest_field(self):
        original = evt.CommandComplete(
            num_hci_command_packets=1,
            command_opcode=0x040B,
            return_parameters=b"\x00\xaa\xbb",
        )
        parsed = evt.CommandComplete.from_parameters(original.parameters())
        assert parsed.return_parameters == b"\x00\xaa\xbb"

    def test_remote_name_roundtrip(self):
        original = evt.RemoteNameRequestComplete(
            status=0, bd_addr=ADDR, remote_name="LG VELVET"
        )
        parsed = evt.RemoteNameRequestComplete.from_parameters(
            original.parameters()
        )
        assert parsed.remote_name == "LG VELVET"

    def test_display_name(self):
        event = evt.LinkKeyRequest(bd_addr=ADDR)
        assert event.display_name == "HCI_Link_Key_Request"


class TestAclWire:
    def test_roundtrip(self):
        packet = HciAclData(handle=0x006, data=b"payload", pb_flag=2, bc_flag=0)
        parsed = HciAclData.from_bytes(packet.to_bytes())
        assert parsed.handle == 0x006
        assert parsed.data == b"payload"
        assert parsed.pb_flag == 2

    @given(st.integers(min_value=0, max_value=0x0FFF), st.binary(max_size=512))
    @settings(max_examples=30)
    def test_roundtrip_property(self, handle, data):
        packet = HciAclData(handle=handle, data=data)
        parsed = HciAclData.from_bytes(packet.to_bytes())
        assert parsed.handle == handle and parsed.data == data

    def test_handle_range_enforced(self):
        with pytest.raises(HciError):
            HciAclData(handle=0x1000, data=b"")

    def test_truncated_rejected(self):
        packet = HciAclData(handle=1, data=b"abcdef")
        with pytest.raises(HciError):
            HciAclData.from_bytes(packet.to_bytes()[:-2])
