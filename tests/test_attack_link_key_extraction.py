"""End-to-end tests for the link key extraction attack (§IV / Fig. 5)."""

import pytest

from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.core.errors import AttackError
from repro.devices.catalog import (
    GALAXY_S8,
    IPHONE_XS,
    NEXUS_5X_A8,
    UBUNTU_2004,
    WINDOWS_MS_DRIVER,
)


def _attack_world(c_spec=NEXUS_5X_A8, seed=7):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world, c_spec=c_spec)
    bond(world, c, m)
    return world, m, c, a


class TestAndroidHciDumpChannel:
    @pytest.fixture(scope="class")
    def report(self):
        world, m, c, a = _attack_world()
        return LinkKeyExtractionAttack(world, a, c, m).run()

    def test_extracted_key_matches_ground_truth(self, report):
        assert report.extraction_success
        assert report.extracted_key == report.ground_truth_key

    def test_channel_and_privilege(self, report):
        assert report.extraction_channel == "hci_dump"
        assert report.su_required is False  # the bug report path

    def test_key_survived_on_victim(self, report):
        """The timeout trick: C's bond is intact after the attack."""
        assert report.key_survived_on_c

    def test_validation_pan_connects_without_pairing(self, report):
        assert report.validated_against_m is True

    def test_findings_attribute_the_peer(self, report):
        assert any(f.source == "Link_Key_Request_Reply" for f in report.findings)


class TestUsbSniffChannel:
    @pytest.fixture(scope="class")
    def report(self):
        world, m, c, a = _attack_world(c_spec=WINDOWS_MS_DRIVER)
        return LinkKeyExtractionAttack(world, a, c, m).run()

    def test_windows_extraction_succeeds(self, report):
        assert report.extraction_success and report.vulnerable

    def test_channel_is_usb_and_unprivileged(self, report):
        assert report.extraction_channel == "usb_sniff"
        assert report.su_required is False

    def test_usb_key_validates_against_m(self, report):
        assert report.validated_against_m is True


class TestLinuxChannel:
    def test_bluez_extraction_needs_su(self):
        world, m, c, a = _attack_world(c_spec=UBUNTU_2004)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        assert report.extraction_success
        assert report.su_required is True


class TestPreconditionsAndFailures:
    def test_requires_existing_bond(self):
        world = build_world(WorldConfig(seed=3))
        m, c, a = standard_cast(world)
        with pytest.raises(AttackError):
            LinkKeyExtractionAttack(world, a, c, m).run()

    def test_ios_victim_offers_no_channel(self):
        world, m, c, a = _attack_world()
        # Swap in an iPhone as C: no snoop, no USB dongle.
        iphone = world.add_device("C2", IPHONE_XS)
        iphone.power_on()
        from repro.host.storage import BondingRecord

        iphone.host.security.add_bond(
            BondingRecord(
                addr=m.bd_addr, link_key=c.bonded_key_for(m.bd_addr)
            )
        )
        attack = LinkKeyExtractionAttack(world, a, iphone, m)
        with pytest.raises(AttackError):
            attack.run()

    def test_wrong_key_would_fail_validation(self):
        """Control: validating a *wrong* key fails (no silent success)."""
        from repro.core.types import LinkKey

        world, m, c, a = _attack_world(seed=11)
        attack = LinkKeyExtractionAttack(world, a, c, m)
        report = attack.run(validate=False)
        assert report.extraction_success
        wrong = LinkKey(bytes(16))
        assert attack._validate(wrong) is False

    def test_multiple_c_devices(self):
        """The attack works against a second Android model too."""
        world, m, c, a = _attack_world(c_spec=GALAXY_S8, seed=21)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        assert report.vulnerable
