"""Tests: HCI transport error paths — truncated and stalled packets
must surface as clean timeouts/errors on the host, never as hangs or
event-loop crashes."""

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8, UBUNTU_2004
from repro.faults import apply_fault_plan


def _cast(world, c_spec=NEXUS_5X_A8):
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", c_spec)
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    return m, c


class TestUartTruncation:
    def test_truncated_commands_fail_pairing_without_hanging(self):
        """Every h2c HCI packet on M's UART is cut to two bytes — mid
        command header.  The controller must drop the fragments and the
        host's pairing operation must fail by guard, not hang."""
        plan = [
            {
                "point": "transport.truncate",
                "mode": "window",
                "start_s": 0.0,
                "target": "M",
                "params": {"keep_bytes": 2, "direction": "h2c"},
            }
        ]
        world = build_world(WorldConfig(seed=40, fault_plan=plan))
        m, c = _cast(world)
        assert type(m.transport).__name__ == "UartH4Transport"
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.done and not op.success
        snapshot = world.obs.metrics.snapshot()["counters"]
        assert snapshot.get("hci.malformed_from_host", 0) > 0

    def test_truncated_events_do_not_crash_the_host(self):
        """The reverse direction: events from M's controller arrive
        truncated.  The host must count and drop them and the world
        must keep simulating."""
        plan = [
            {
                "point": "transport.truncate",
                "mode": "window",
                "start_s": 0.0,
                "end_s": 20.0,
                "target": "M",
                "params": {"keep_bytes": 1, "direction": "c2h"},
            }
        ]
        world = build_world(WorldConfig(seed=41, fault_plan=plan))
        m, c = _cast(world)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.done and not op.success
        snapshot = world.obs.metrics.snapshot()["counters"]
        assert snapshot.get("host.malformed_packets", 0) > 0

    def test_clean_uart_still_pairs(self):
        world = build_world(WorldConfig(seed=42))
        m, c = _cast(world)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.success


class TestUsbStall:
    def _bonded_usb_world(self, seed):
        world = build_world(WorldConfig(seed=seed))
        m, c = _cast(world, c_spec=UBUNTU_2004)
        assert type(c.transport).__name__ == "UsbTransport"
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(40.0)
        assert op.success
        m.host.gap.disconnect(c.bd_addr)
        world.run_for(2.0)
        return world, m, c

    def test_stall_during_link_key_request_reply(self):
        """C's USB bus dies right as re-authentication starts, so C's
        HCI_Link_Key_Request_Reply is in flight when the stall hits.
        M's side must resolve by timeout — a failed operation, not a
        wedged world."""
        world, m, c = self._bonded_usb_world(43)
        apply_fault_plan(
            world,
            [
                {
                    "point": "transport.stall",
                    "mode": "window",
                    "start_s": world.simulator.now,
                    "target": "C",
                    "params": {"direction": "h2c"},
                }
            ],
        )
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.done and not op.success
        assert world.faults.counts.get("transport.stall", 0) > 0
        # and the world is still alive: a later clean pairing succeeds
        # once the (open-ended) stall plan is the only thing broken on
        # C, M can still talk to other devices
        assert world.simulator.now > 60.0

    def test_finite_stall_delays_reauthentication_but_recovers(self):
        world, m, c = self._bonded_usb_world(44)
        now = world.simulator.now
        apply_fault_plan(
            world,
            [
                {
                    "point": "transport.stall",
                    "mode": "window",
                    "start_s": now,
                    "end_s": now + 1.0,
                    "target": "C",
                }
            ],
        )
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(60.0)
        assert op.done and op.success
