"""LE pairing throughput bench, recorded for cross-PR comparison.

Measures how many full LE SC pairings (connect → SMP → CTKD → encrypt)
the simulator completes per wall-clock second, plus the event cost of
a single pairing.  Written to ``BENCH_ble.json`` /
``BENCH_HISTORY.jsonl`` via :func:`record_bench` so ``blap bench
compare`` can flag regressions.

Run with ``-m perf`` (CI's ble-smoke job); deselected from the
functional matrix by ``-m "not perf"``.
"""

from __future__ import annotations

import time

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.core.bench import record_bench
from repro.devices.catalog import spec_by_key

#: how many central/peripheral pairs each sample drives
PAIRS = 20


def _run_pairings(pairs: int) -> dict:
    world = build_world(WorldConfig(seed=6100 + pairs))
    couples = []
    for i in range(pairs):
        c = world.add_device(f"c{i:02d}", spec_by_key("galaxy_s21_dual"))
        p = world.add_device(f"p{i:02d}", spec_by_key("nexus_5x_dual"))
        c.power_on()
        p.power_on()
        couples.append((c, p))
    world.run_for(1.0)
    base_events = world.simulator.events_processed

    started = time.perf_counter()
    operations = []
    for c, p in couples:
        operations.append((c.ble.connect(p.bd_addr), c, p))
    world.run_for(6.0)
    pair_ops = []
    for connect, c, p in operations:
        assert connect.success, f"{c.name}: connect failed"
        pair_ops.append((c.ble.pair(p.bd_addr), c, p))
    world.run_for(8.0)
    enc_ops = []
    for pairing, c, p in pair_ops:
        assert pairing.success, f"{c.name}: pairing failed"
        enc_ops.append(c.ble.start_encryption(p.bd_addr))
    world.run_for(4.0)
    elapsed = time.perf_counter() - started
    completed = sum(1 for op in enc_ops if op.success)
    events = world.simulator.events_processed - base_events
    return {
        "pairs": pairs,
        "completed": completed,
        "wall_s": elapsed,
        "pairings_per_s": completed / elapsed if elapsed else 0.0,
        "events": events,
        "events_per_pairing": events / completed if completed else 0.0,
    }


@pytest.mark.perf
def test_le_pairing_throughput():
    sample = _run_pairings(PAIRS)
    record_bench(
        "ble",
        "pairing_throughput",
        {
            "pairs": sample["pairs"],
            "completed": sample["completed"],
            "wall_s": sample["wall_s"],
            "pairings_per_s": sample["pairings_per_s"],
            "events": sample["events"],
            "events_per_pairing": sample["events_per_pairing"],
        },
    )
    # every couple must finish the full vertical slice
    assert sample["completed"] == PAIRS, sample
    # loose floor, an order of magnitude under current numbers: only a
    # genuine hot-path regression (per-frame crypto, adv fan-out) trips
    assert sample["pairings_per_s"] > 5, sample
