"""Unit + property tests for the P-192 / P-256 elliptic curves."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ecc import (
    EccPoint,
    P192,
    P256,
    ecdh_shared_secret,
    generate_keypair,
)

CURVES = [P192, P256]


@pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
class TestCurveStructure:
    def test_generator_is_on_curve(self, curve):
        point = curve.generator
        assert not point.is_infinity  # construction validates the equation

    def test_order_times_generator_is_infinity(self, curve):
        assert (curve.generator * curve.n).is_infinity

    def test_identity_element(self, curve):
        inf = EccPoint.infinity(curve)
        g = curve.generator
        assert g + inf == g
        assert inf + g == g

    def test_inverse_element(self, curve):
        g = curve.generator
        assert (g + (-g)).is_infinity

    def test_doubling_matches_addition(self, curve):
        g = curve.generator
        assert g + g == g * 2

    def test_scalar_distributes(self, curve):
        g = curve.generator
        assert g * 5 == g * 2 + g * 3

    def test_off_curve_point_rejected(self, curve):
        with pytest.raises(ValueError):
            EccPoint(curve, 1, 1)

    def test_point_bytes_roundtrip(self, curve):
        point = curve.generator * 1234567
        assert EccPoint.from_bytes(curve, point.to_bytes()) == point

    def test_x_bytes_length(self, curve):
        assert len(curve.generator.x_bytes()) == curve.byte_length


@pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
class TestEcdh:
    def test_shared_secret_agreement(self, curve):
        rng = random.Random(5)
        alice = generate_keypair(curve, rng)
        bob = generate_keypair(curve, rng)
        assert ecdh_shared_secret(alice.private, bob.public) == ecdh_shared_secret(
            bob.private, alice.public
        )

    def test_distinct_pairs_distinct_secrets(self, curve):
        rng = random.Random(6)
        alice = generate_keypair(curve, rng)
        bob = generate_keypair(curve, rng)
        eve = generate_keypair(curve, rng)
        ab = ecdh_shared_secret(alice.private, bob.public)
        ae = ecdh_shared_secret(alice.private, eve.public)
        assert ab != ae

    def test_private_scalar_range_enforced(self, curve):
        with pytest.raises(ValueError):
            ecdh_shared_secret(0, curve.generator)
        with pytest.raises(ValueError):
            ecdh_shared_secret(curve.n, curve.generator)


@given(st.integers(min_value=1, max_value=2**64), st.integers(min_value=1, max_value=2**64))
@settings(max_examples=15, deadline=None)
def test_scalar_multiplication_is_homomorphic(a, b):
    """(a+b)G == aG + bG on P-256."""
    g = P256.generator
    assert g * (a + b) == g * a + g * b


def test_cross_curve_addition_rejected():
    with pytest.raises(ValueError):
        _ = P192.generator + P256.generator


def test_mitm_sees_different_secrets():
    """The Just Works blindness: a MITM completes two *different* ECDHs."""
    rng = random.Random(7)
    victim_m = generate_keypair(P256, rng)
    victim_c = generate_keypair(P256, rng)
    attacker = generate_keypair(P256, rng)
    m_side = ecdh_shared_secret(victim_m.private, attacker.public)
    c_side = ecdh_shared_secret(victim_c.private, attacker.public)
    legit = ecdh_shared_secret(victim_m.private, victim_c.public)
    assert m_side != legit and c_side != legit
    # ...but the attacker can compute both session secrets:
    assert ecdh_shared_secret(attacker.private, victim_m.public) == m_side
    assert ecdh_shared_secret(attacker.private, victim_c.public) == c_side
