"""Unit tests for UART and USB transports and their taps."""

import pytest

from repro.core.errors import TransportError
from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.sim.eventloop import Simulator
from repro.transport.base import Direction
from repro.transport.uart import UartH4Transport
from repro.transport.usb import (
    ENDPOINT_BULK_IN,
    ENDPOINT_BULK_OUT,
    ENDPOINT_CONTROL_OUT,
    ENDPOINT_INTERRUPT_IN,
    UsbSniffer,
    UsbTransport,
)
from repro.hci.packets import HciAclData

ADDR = BdAddr.parse("aa:bb:cc:dd:ee:ff")
KEY = LinkKey(bytes(range(16)))


def _wired(transport_cls, sim, **kwargs):
    transport = transport_cls(sim, **kwargs)
    host_rx, ctrl_rx = [], []
    transport.attach_host(host_rx.append)
    transport.attach_controller(ctrl_rx.append)
    return transport, host_rx, ctrl_rx


class TestUart:
    def test_delivers_both_directions(self):
        sim = Simulator()
        transport, host_rx, ctrl_rx = _wired(UartH4Transport, sim)
        transport.send_from_host(cmd.Reset())
        transport.send_from_controller(evt.InquiryComplete(status=0))
        sim.run()
        assert len(ctrl_rx) == 1 and ctrl_rx[0][0] == 0x01
        assert len(host_rx) == 1 and host_rx[0][0] == 0x04

    def test_latency_scales_with_length(self):
        sim = Simulator()
        transport, _, ctrl_rx = _wired(UartH4Transport, sim, baud_rate=9600)
        arrivals = []
        transport.attach_controller(lambda raw: arrivals.append(sim.now))
        transport.send_from_host(cmd.Reset())  # 4 bytes
        transport.send_from_host(
            cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY)
        )  # 26 bytes
        sim.run()
        assert arrivals[0] == pytest.approx(4 * 10 / 9600)
        assert arrivals[1] > arrivals[0]

    def test_tap_sees_raw_bytes_and_direction(self):
        sim = Simulator()
        transport, _, _ = _wired(UartH4Transport, sim)
        taps = []
        transport.add_tap(lambda t, d, raw: taps.append((d, raw)))
        transport.send_from_host(cmd.Reset())
        sim.run()
        assert taps[0][0] is Direction.HOST_TO_CONTROLLER
        assert taps[0][1] == cmd.Reset().to_h4_bytes()

    def test_tap_removal(self):
        sim = Simulator()
        transport, _, _ = _wired(UartH4Transport, sim)
        taps = []
        tap = lambda t, d, raw: taps.append(raw)  # noqa: E731
        transport.add_tap(tap)
        transport.send_from_host(cmd.Reset())
        transport.remove_tap(tap)
        transport.send_from_host(cmd.Reset())
        sim.run()
        assert len(taps) == 1

    def test_unattached_endpoint_raises(self):
        sim = Simulator()
        transport = UartH4Transport(sim)
        with pytest.raises(TransportError):
            transport.send_from_host(cmd.Reset())

    def test_invalid_baud_rejected(self):
        with pytest.raises(TransportError):
            UartH4Transport(Simulator(), baud_rate=0)


class TestUsb:
    def test_endpoint_routing(self):
        sim = Simulator()
        transport, _, _ = _wired(UsbTransport, sim, idle_null_transfers=False)
        transport.send_from_host(cmd.Reset())
        transport.send_from_controller(evt.InquiryComplete(status=0))
        transport.send_from_host(HciAclData(handle=1, data=b"x"))
        transport.send_from_controller(HciAclData(handle=1, data=b"y"))
        sim.run()
        endpoints = [t.endpoint for t in transport.transfers]
        assert endpoints == [
            ENDPOINT_CONTROL_OUT,
            ENDPOINT_INTERRUPT_IN,
            ENDPOINT_BULK_OUT,
            ENDPOINT_BULK_IN,
        ]

    def test_usb_payload_has_no_h4_indicator(self):
        sim = Simulator()
        transport, _, _ = _wired(UsbTransport, sim, idle_null_transfers=False)
        transport.send_from_host(
            cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY)
        )
        sim.run()
        # Payload starts directly at the opcode — '0b 04 16'.
        assert transport.transfers[0].payload[:3] == bytes.fromhex("0b0416")

    def test_idle_null_transfers_appear(self):
        sim = Simulator()
        transport, _, _ = _wired(UsbTransport, sim, idle_null_transfers=True)
        transport.send_from_host(cmd.Reset())
        sim.run()
        nulls = [t for t in transport.transfers if len(t.payload) == 0]
        assert nulls, "expected idle NULL transfers in the capture"

    def test_sniffer_sees_raw_records(self):
        sim = Simulator()
        transport, _, _ = _wired(UsbTransport, sim, idle_null_transfers=False)
        sniffer = UsbSniffer().attach(transport)
        transport.send_from_host(cmd.Reset())
        sim.run()
        stream = sniffer.raw_stream()
        # record: endpoint (1) + length (2 LE) + payload
        assert stream[0] == ENDPOINT_CONTROL_OUT
        assert int.from_bytes(stream[1:3], "little") == 3

    def test_sniffer_only_attaches_to_usb(self):
        sim = Simulator()
        uart = UartH4Transport(sim)
        with pytest.raises(TransportError):
            UsbSniffer().attach(uart)

    def test_transfer_direction_labels(self):
        sim = Simulator()
        transport, _, _ = _wired(UsbTransport, sim, idle_null_transfers=False)
        transport.send_from_host(cmd.Reset())
        transport.send_from_controller(evt.InquiryComplete(status=0))
        sim.run()
        assert transport.transfers[0].direction == "OUT"
        assert transport.transfers[1].direction == "IN"
