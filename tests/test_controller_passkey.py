"""Controller tests: the Passkey Entry association model.

Passkey Entry runs 20 commit-and-reveal rounds, one per passkey bit,
so a MITM who cannot see the display learns at most one bit before
being caught — the property that makes it (unlike Just Works)
MITM-resistant, and hence the model the paper's mitigation suggests
re-initiating pairing in.
"""

import pytest

from repro.core.types import IoCapability, LinkKeyType
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8


@pytest.fixture
def keyboard_pair(world):
    """M is a phone; C is a keyboard-only device next to its user."""
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    c.host.io_capability = IoCapability.KEYBOARD_ONLY
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    # Same room: C's user can read M's display, and both intend to pair.
    c.user.peer_user = m.user
    m.user.peer_user = c.user
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    return world, m, c


class TestPasskeySuccess:
    def test_pairing_succeeds_with_shared_passkey(self, keyboard_pair):
        world, m, c = keyboard_pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        assert op.success
        assert (
            m.host.security.bond_for(c.bd_addr).link_key
            == c.host.security.bond_for(m.bd_addr).link_key
        )

    def test_key_is_authenticated_type(self, keyboard_pair):
        """Passkey Entry gives MITM protection → authenticated key."""
        world, m, c = keyboard_pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type == LinkKeyType.AUTHENTICATED_COMBINATION_P256

    def test_displayer_is_the_phone(self, keyboard_pair):
        """KeyboardOnly types; the DisplayYesNo initiator displays."""
        world, m, c = keyboard_pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        assert m.user.displayed_passkey is not None
        assert 0 <= m.user.displayed_passkey <= 999_999
        assert c.user.displayed_passkey is None

    def test_no_confirmation_popup_in_passkey_model(self, keyboard_pair):
        world, m, c = keyboard_pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        assert m.user.popups_seen == 0  # passkey display, not a popup

    def test_twenty_rounds_on_the_air(self, keyboard_pair):
        from repro.attacks.eavesdrop import AirCapture
        from repro.controller import lmp

        world, m, c = keyboard_pair
        capture = AirCapture().attach(world.medium)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        assert op.success
        commits = capture.lmp_frames(lmp.LmpPasskeyConfirm)
        reveals = capture.lmp_frames(lmp.LmpPasskeyNumber)
        assert len(commits) == 40  # 20 rounds × both sides
        assert len(reveals) == 40


class TestPasskeyFailure:
    def test_user_without_line_of_sight_cannot_pair(self, world):
        """No peer_user wired → the typist can't know the passkey."""
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        c.host.io_capability = IoCapability.KEYBOARD_ONLY
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        assert op.done and not op.success

    def test_wrong_passkey_fails_authentication(self, keyboard_pair):
        """A guessing MITM stand-in: typing the wrong passkey is caught
        during the bit-commitment rounds."""
        world, m, c = keyboard_pair

        original = c.user.read_peer_passkey
        c.user.read_peer_passkey = lambda now: (
            (original(now) or 0) ^ 0x1  # flip the lowest bit
        )
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        assert op.done and not op.success
        assert not m.host.security.is_bonded(c.bd_addr)

    def test_refusing_to_type_fails_cleanly(self, keyboard_pair):
        world, m, c = keyboard_pair
        c.user.read_peer_passkey = lambda now: None
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(30.0)
        assert op.done and not op.success
