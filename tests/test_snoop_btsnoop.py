"""Unit + property tests for the btsnoop (RFC 1761) file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.hci import commands as cmd
from repro.snoop.btsnoop import (
    BTSNOOP_MAGIC,
    BtsnoopReader,
    BtsnoopWriter,
    DATALINK_H4,
    flags_for,
)
from repro.transport.base import Direction


def _capture_with(packets):
    writer = BtsnoopWriter()
    for index, packet in enumerate(packets):
        writer.append(index * 0.001, Direction.HOST_TO_CONTROLLER, packet)
    return writer


def test_file_header_layout():
    raw = BtsnoopWriter().to_bytes()
    assert raw[:8] == BTSNOOP_MAGIC
    assert int.from_bytes(raw[8:12], "big") == 1
    assert int.from_bytes(raw[12:16], "big") == DATALINK_H4


def test_roundtrip_single_record():
    packet = cmd.Reset().to_h4_bytes()
    writer = _capture_with([packet])
    records = BtsnoopReader(writer.to_bytes()).records()
    assert len(records) == 1
    assert records[0].data == packet


@given(
    st.lists(
        st.binary(min_size=1, max_size=64).map(lambda b: b"\x01" + b),
        min_size=0,
        max_size=20,
    )
)
@settings(max_examples=30)
def test_roundtrip_property(packets):
    writer = _capture_with(packets)
    records = BtsnoopReader(writer.to_bytes()).records()
    assert [record.data for record in records] == packets


def test_direction_flag_roundtrip():
    writer = BtsnoopWriter()
    writer.append(0.0, Direction.HOST_TO_CONTROLLER, b"\x01\x03\x0c\x00")
    writer.append(0.1, Direction.CONTROLLER_TO_HOST, b"\x04\x01\x01\x00")
    records = BtsnoopReader(writer.to_bytes()).records()
    assert records[0].direction is Direction.HOST_TO_CONTROLLER
    assert records[1].direction is Direction.CONTROLLER_TO_HOST


def test_command_event_flag():
    assert flags_for(Direction.HOST_TO_CONTROLLER, 0x01) & 0x02
    assert flags_for(Direction.HOST_TO_CONTROLLER, 0x02) & 0x02 == 0


def test_timestamps_preserve_order_and_scale():
    writer = BtsnoopWriter()
    writer.append(1.0, Direction.HOST_TO_CONTROLLER, b"\x01a")
    writer.append(2.5, Direction.HOST_TO_CONTROLLER, b"\x01b")
    records = BtsnoopReader(writer.to_bytes()).records()
    assert records[1].timestamp_us - records[0].timestamp_us == 1_500_000


def test_indicator_and_payload_accessors():
    writer = _capture_with([b"\x01\xAA\xBB"])
    record = BtsnoopReader(writer.to_bytes()).records()[0]
    assert record.indicator == 0x01
    assert record.payload == b"\xAA\xBB"


def test_bad_magic_rejected():
    with pytest.raises(StorageError):
        BtsnoopReader(b"notasnoopfile!!!" * 2)


def test_bad_version_rejected():
    raw = BTSNOOP_MAGIC + (99).to_bytes(4, "big") + (1002).to_bytes(4, "big")
    with pytest.raises(StorageError):
        BtsnoopReader(raw)


def test_truncated_record_rejected():
    writer = _capture_with([cmd.Reset().to_h4_bytes()])
    raw = writer.to_bytes()
    with pytest.raises(StorageError):
        BtsnoopReader(raw[:-2]).records()


def test_empty_packet_rejected():
    writer = BtsnoopWriter()
    with pytest.raises(StorageError):
        writer.append(0.0, Direction.HOST_TO_CONTROLLER, b"")
