"""End-to-end tests for eavesdropping with an extracted link key."""

import pytest

from repro.attacks.eavesdrop import AirCapture, OfflineDecryptor
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.core.errors import AttackError
from repro.core.types import LinkKey


@pytest.fixture(scope="module")
def sniffed_session():
    """Bond C↔M, capture an encrypted session between them from the air."""
    world = build_world(WorldConfig(seed=31))
    m, c, a = standard_cast(world)
    bond(world, c, m)
    capture = AirCapture().attach(world.medium)
    op = m.host.gap.pair(c.bd_addr)  # bonded re-auth (AU_RAND on the air)
    world.run_for(10.0)
    assert op.success
    enc = m.host.gap.enable_encryption(c.bd_addr)
    world.run_for(2.0)
    assert enc.success
    sdp = m.host.sdp.query(c.bd_addr)
    world.run_for(5.0)
    assert sdp.success
    key = m.host.security.bond_for(c.bd_addr).link_key
    return world, m, c, capture, key


def _decryptor(capture, key, m, c):
    return OfflineDecryptor(
        capture,
        key,
        prover_addr=c.bd_addr,  # M initiated auth ⇒ C was the prover
        master_addr=m.bd_addr,  # M initiated the link ⇒ piconet master
        master_name=m.name,
    )


def test_capture_contains_ciphertext(sniffed_session):
    _, _, _, capture, _ = sniffed_session
    frames = capture.encrypted_acl_frames()
    assert frames
    assert all(
        b"Personal Ad-hoc" not in f.frame.payload.data for f in frames
    )


def test_extracted_key_decrypts_traffic(sniffed_session):
    _, m, c, capture, key = sniffed_session
    plaintexts = _decryptor(capture, key, m, c).decrypt_all()
    assert any(b"Personal Ad-hoc" in plaintext for plaintext in plaintexts)


def test_wrong_key_yields_garbage(sniffed_session):
    _, m, c, capture, key = sniffed_session
    wrong = _decryptor(capture, LinkKey(b"\x00" * 16), m, c).decrypt_all()
    assert not any(b"Personal Ad-hoc" in plaintext for plaintext in wrong)


def test_decryptor_requires_handshake_pdus(sniffed_session):
    _, m, c, _, key = sniffed_session
    empty = AirCapture()
    with pytest.raises(AttackError):
        _decryptor(empty, key, m, c).derive_kc()


def test_full_chain_extraction_then_decryption():
    """The paper's composite threat: pull the key from C's HCI dump,
    then decrypt a *previously captured* session offline."""
    world = build_world(WorldConfig(seed=32))
    m, c, a = standard_cast(world)
    bond(world, c, m)

    # Past traffic is sniffed first...
    capture = AirCapture().attach(world.medium)
    op = m.host.gap.pair(c.bd_addr)
    world.run_for(10.0)
    assert op.success
    m.host.gap.enable_encryption(c.bd_addr)
    world.run_for(2.0)
    m.host.sdp.query(c.bd_addr)
    world.run_for(5.0)
    m.host.gap.disconnect(c.bd_addr)
    world.run_for(2.0)

    # ...then the key is extracted from C...
    report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
    assert report.extraction_success

    # ...and the old ciphertext falls.
    decryptor = OfflineDecryptor(
        capture,
        report.extracted_key,
        prover_addr=c.bd_addr,
        master_addr=m.bd_addr,
        master_name=m.name,
    )
    plaintexts = decryptor.decrypt_all()
    assert any(b"Personal Ad-hoc" in plaintext for plaintext in plaintexts)
