"""Perf guard: sharding a campaign across workers must actually pay.

Marked ``perf`` (excluded from the default suite) and skipped on
machines with fewer than 4 cores — a 4-way pool on a 1-core box
measures scheduler thrash, not the engine.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.core.bench import record_bench

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="parallel speedup needs >= 4 cores",
    ),
]


def _timed_run(workers: int, spec: CampaignSpec):
    started = time.perf_counter()
    campaign = CampaignRunner(workers=workers).run(spec)
    elapsed = time.perf_counter() - started
    assert campaign.trials == len(list(spec.seeds))
    assert not campaign.errors
    return elapsed, campaign


def test_four_workers_at_least_twice_as_fast():
    # page-blocking is the expensive per-trial scenario (~40ms/trial),
    # so 48 trials give the pool real work to amortise its startup.
    spec = CampaignSpec(
        "page-blocking",
        seeds=range(90_000, 90_048),
        params={"m_spec": "galaxy_s8_android9"},
    )
    # warm-up: import + JIT-ish costs out of the measurement
    CampaignRunner(workers=1).run(
        CampaignSpec("page-blocking", seeds=[89_999])
    )
    serial, _ = _timed_run(1, spec)
    parallel, campaign = _timed_run(4, spec)
    speedup = serial / parallel
    # Annotate the bench with where the (simulated) time actually went,
    # so a future `blap bench compare` regression names a culprit.
    from repro.profile import top_self_time_spans

    top = [
        row["name"]
        for row in top_self_time_spans(campaign.metrics.snapshot(), 5)
    ]
    record_bench(
        "campaign",
        "speedup",
        {
            "trials": 48,
            "workers": 4,
            "serial_s": serial,
            "parallel_s": parallel,
            "speedup": speedup,
        },
        spans=top,
    )
    assert speedup >= 2.0, (
        f"4-worker speedup {speedup:.2f}x < 2x "
        f"(serial {serial:.2f}s, parallel {parallel:.2f}s)"
    )
