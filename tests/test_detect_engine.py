"""Tests for the DetectionEngine: alert pipeline + response hook."""

from __future__ import annotations

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.detect import DetectionEngine, operating_point, roc_curve
from repro.obs.metrics import MetricsRegistry


def _world(seed):
    # Isolated registry: counters must not leak between tests.
    return build_world(WorldConfig(seed=seed, registry=MetricsRegistry()))


def _monitored_attack(seed=61, respond=False):
    world = _world(seed)
    m, c, a = standard_cast(world)
    engine = DetectionEngine().attach_world(world, roles=["M"])
    if respond:
        engine.install_response(m)
    report = PageBlockingAttack(world, a, c, m).run()
    engine.finish()
    return world, engine, report, m


class TestAlertPipeline:
    def test_attack_raises_page_blocking_alerts(self):
        _, engine, report, _ = _monitored_attack()
        assert report.success
        scores = engine.max_scores()
        assert scores["page-blocking"] == 0.95
        assert engine.first_alert_times()["page-blocking"] > 0.0

    def test_alerts_reach_metrics(self):
        world, engine, _, _ = _monitored_attack()
        metrics = world.obs.metrics
        assert metrics.counter_value("detect.alerts") == len(engine.alerts)
        assert metrics.counter_value("detect.alerts.page-blocking") >= 1

    def test_alerts_reach_tracer_and_timeline(self):
        world, engine, _, _ = _monitored_attack()
        records = [
            r for r in world.tracer.records if r.source == "detect"
        ]
        assert len(records) == len(engine.alerts)
        assert all(r.category == "alert" for r in records)
        assert any("[page-blocking]" in r.message for r in records)
        timeline = world.obs.timeline.events(sources=["detect"])
        assert timeline, "alerts appear in the merged timeline"

    def test_alerts_become_instant_spans(self):
        world, engine, _, _ = _monitored_attack()
        spans = [
            s
            for s in world.obs.spans.finished_spans()
            if s.name.startswith("alert:")
        ]
        assert len(spans) == len(engine.alerts)

    def test_on_alert_callbacks_fire(self):
        world = _world(62)
        m, c, a = standard_cast(world)
        engine = DetectionEngine().attach_world(world, roles=["M"])
        seen = []
        engine.on_alert(seen.append)
        PageBlockingAttack(world, a, c, m).run()
        engine.finish()
        assert seen == engine.alerts

    def test_summary_is_json_shaped(self):
        import json

        _, engine, _, _ = _monitored_attack()
        summary = engine.summary()
        assert set(summary) == {
            "alerts",
            "max_scores",
            "first_alert_s",
            "events",
            "undecodable",
        }
        json.dumps(summary)  # must serialise

    def test_detector_subset_and_per_monitor_instances(self):
        world = _world(63)
        m, c, a = standard_cast(world)
        engine = DetectionEngine(detectors=["page-blocking"])
        engine.attach_world(world)
        PageBlockingAttack(world, a, c, m).run()
        engine.finish()
        assert set(engine.max_scores()) == {"page-blocking"}
        # one instance per monitored stream, not one shared
        assert {"M", "phy"} <= set(engine._instances)
        assert (
            engine._instances["M"][0] is not engine._instances["phy"][0]
        )


class TestResponseHook:
    def test_response_vetoes_the_flagged_pairing(self):
        _, engine, report, m = _monitored_attack(respond=True)
        assert not report.paired  # the attack pairing was rejected
        assert not report.success
        assert m.host.security.veto_rejections >= 1
        # The alert fired anyway — detection precedes the rejection.
        assert engine.max_scores()["page-blocking"] >= 0.9
        mitigations = [
            r
            for r in m.host.tracer.records
            if r.category == "mitigation" and "detection response" in r.message
        ]
        assert mitigations

    def test_without_response_the_attack_goes_through(self):
        _, _, report, m = _monitored_attack(respond=False)
        assert report.paired and report.success
        assert m.host.security.veto_rejections == 0


class TestRocEvaluation:
    def _details(self, scores, detector="page-blocking", latency=2.0):
        return [
            {
                "scores": {detector: s},
                "first_alert_s": {detector: latency} if s > 0 else {},
            }
            for s in scores
        ]

    def test_curve_counts_and_rates(self):
        attack = self._details([0.95, 0.7, 0.0])
        benign = self._details([0.0, 0.0, 0.35, 0.0])
        points = roc_curve(attack, benign, "page-blocking", thresholds=[0.5])
        (p,) = points
        assert (p.true_positives, p.false_negatives) == (2, 1)
        assert (p.false_positives, p.true_negatives) == (0, 4)
        assert p.tpr == 2 / 3 and p.fpr == 0.0
        assert p.mean_latency_s == 2.0

    def test_operating_point_prefers_high_tpr_then_high_threshold(self):
        attack = self._details([0.95] * 10)
        benign = self._details([0.0] * 10)
        points = roc_curve(
            attack, benign, "page-blocking", thresholds=[0.5, 0.7, 0.95]
        )
        best = operating_point(points, max_fpr=0.05)
        assert best.threshold == 0.95 and best.tpr == 1.0

    def test_operating_point_none_when_fpr_unattainable(self):
        attack = self._details([0.95])
        benign = self._details([0.95])  # every benign trial trips too
        points = roc_curve(attack, benign, "page-blocking", thresholds=[0.5])
        assert operating_point(points, max_fpr=0.05) is None
