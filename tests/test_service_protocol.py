"""The service wire protocol: frames, captures, reorder adapter."""

from __future__ import annotations

import pytest

from repro.campaign.captures import attack_capture
from repro.detect import ReorderBuffer
from repro.detect.feed import DetectionEvent
from repro.service.protocol import (
    CaptureError,
    ProtocolError,
    capture_events,
    decode_capture,
    frame_to_event,
    frames_from_capture,
)


@pytest.fixture(scope="module")
def capture_bytes():
    return attack_capture()


class TestDecodeCapture:
    def test_valid_capture_decodes(self, capture_bytes):
        entries = decode_capture(capture_bytes)
        assert entries
        assert entries[0].frame == 1

    def test_empty_body_is_capture_error(self):
        with pytest.raises(CaptureError, match="empty capture"):
            decode_capture(b"")

    def test_bad_magic_is_capture_error(self):
        with pytest.raises(CaptureError):
            decode_capture(b"not a btsnoop file at all....")

    def test_truncated_capture_is_capture_error(self, capture_bytes):
        with pytest.raises(CaptureError, match="truncated"):
            decode_capture(capture_bytes[:40])

    def test_reason_is_one_line(self, capture_bytes):
        with pytest.raises(CaptureError) as exc_info:
            decode_capture(capture_bytes[:40])
        assert "\n" not in str(exc_info.value)


class TestFrames:
    def test_capture_round_trips_through_frames(self, capture_bytes):
        """capture → wire frames → events ≡ capture → events."""
        direct = list(capture_events(decode_capture(capture_bytes)))
        frames = frames_from_capture(capture_bytes)
        via_wire = [frame_to_event(frame) for frame in frames]
        assert len(via_wire) == len(direct)
        for wire_event, direct_event in zip(via_wire, direct):
            assert wire_event.time == direct_event.time
            assert wire_event.seq == direct_event.seq
            assert wire_event.kind == direct_event.kind
            assert wire_event.direction == direct_event.direction
            assert wire_event.frame_no == direct_event.frame_no

    def test_undecodable_bytes_degrade_not_error(self):
        event = frame_to_event(
            {
                "type": "event",
                "channel": "hci",
                "time": 1.0,
                "seq": 0,
                "raw": "ffdeadbeef",
                "direction": "c2h",
            }
        )
        assert event.kind == "undecodable"
        assert event.packet is None

    def test_trace_frame_builds_record(self):
        event = frame_to_event(
            {
                "type": "event",
                "channel": "trace",
                "time": 2.5,
                "seq": 7,
                "kind": "phy-inquiry",
                "source": "phy",
                "detail": {"initiator": "aa:bb:cc:dd:ee:ff"},
            }
        )
        assert event.channel == "trace"
        assert event.record is not None
        assert event.record.detail["initiator"] == "aa:bb:cc:dd:ee:ff"

    @pytest.mark.parametrize(
        "frame",
        [
            "not a dict",
            {"type": "hello"},
            {"type": "event", "channel": "hci", "seq": 0, "raw": "04"},
            {"type": "event", "channel": "hci", "time": 1.0, "raw": "zz"},
            {
                "type": "event",
                "channel": "hci",
                "time": 1.0,
                "raw": "04",
                "direction": "sideways",
            },
            {"type": "event", "channel": "trace", "time": 1.0},
            {"type": "event", "channel": "air", "time": 1.0},
            {
                "type": "event",
                "channel": "trace",
                "time": 1.0,
                "kind": "x",
                "detail": [1, 2],
            },
        ],
    )
    def test_malformed_frames_raise_one_line_reason(self, frame):
        with pytest.raises(ProtocolError) as exc_info:
            frame_to_event(frame)
        assert "\n" not in str(exc_info.value)


def _event(time_s: float, seq: int) -> DetectionEvent:
    return DetectionEvent(
        time=time_s, seq=seq, monitor="m", channel="trace", kind="k"
    )


class TestReorderBuffer:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ReorderBuffer(window=0)

    def test_releases_in_order_despite_shuffled_arrival(self):
        buffer = ReorderBuffer(window=4)
        order = [3, 1, 4, 0, 2, 6, 5, 8, 7, 9]
        released = []
        for seq in order:
            released.extend(buffer.push(_event(float(seq), seq)))
        released.extend(buffer.flush())
        assert [event.seq for event in released] == list(range(10))
        assert buffer.late_events == 0

    def test_window_bounds_pending(self):
        buffer = ReorderBuffer(window=3)
        for seq in range(10):
            buffer.push(_event(float(seq), seq))
        assert buffer.pending == 3
        assert len(buffer) == 3

    def test_late_event_is_counted_and_delivered(self):
        buffer = ReorderBuffer(window=2)
        for seq in (0, 1, 2, 3, 4):
            buffer.push(_event(float(seq), seq))
        # watermark has passed seq 2; seq 1 arrives again, too late
        released = buffer.push(_event(1.0, 1))
        assert [event.seq for event in released] == [1]
        assert buffer.late_events == 1

    def test_deterministic_for_fixed_arrival_order(self):
        order = [5, 2, 9, 0, 7, 3, 8, 1, 6, 4]

        def run():
            buffer = ReorderBuffer(window=3)
            out = []
            for seq in order:
                out.extend(buffer.push(_event(float(seq), seq)))
            out.extend(buffer.flush())
            return [event.seq for event in out], buffer.late_events

        assert run() == run()
