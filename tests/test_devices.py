"""Unit tests for assembled devices and the catalog."""

import pytest

from repro.core.errors import AttackError
from repro.core.types import BdAddr, LinkKey
from repro.devices.catalog import (
    IPHONE_XS,
    LG_VELVET,
    NEXUS_5X_A8,
    TABLE1_DEVICE_SPECS,
    TABLE2_DEVICE_SPECS,
    UBUNTU_2004,
    WINDOWS_CSR_HARMONY,
    WINDOWS_MS_DRIVER,
    deterministic_addr,
    spec_by_key,
)
from repro.host.storage import BondingRecord


class TestCatalog:
    def test_table1_matches_paper_roster(self):
        names = [spec.marketing_name for spec in TABLE1_DEVICE_SPECS]
        assert len(names) == 9
        assert "Nexus 5x" in names and "Galaxy s21" in names
        assert any("CSR harmony" in name for name in names)
        assert any("Ubuntu" in name for name in names)

    def test_table2_matches_paper_roster(self):
        names = [spec.marketing_name for spec in TABLE2_DEVICE_SPECS]
        assert len(names) == 7
        assert "iPhone Xs" in names

    def test_spec_by_key(self):
        assert spec_by_key("lg_velvet_android11") is LG_VELVET
        with pytest.raises(KeyError):
            spec_by_key("nokia_3310")

    def test_pc_devices_use_usb_dongles(self):
        for spec in (WINDOWS_MS_DRIVER, WINDOWS_CSR_HARMONY, UBUNTU_2004):
            assert spec.transport_kind == "usb"
            assert spec.controller_model == "QSENN CSR V4.0"

    def test_deterministic_addr_is_stable_and_unique(self):
        assert deterministic_addr("M") == deterministic_addr("M")
        assert deterministic_addr("M") != deterministic_addr("C")

    def test_version_split_for_popup_mandate(self):
        assert not NEXUS_5X_A8.bt_version.mandates_justworks_popup
        assert LG_VELVET.bt_version.mandates_justworks_popup


class TestSnoopPaths:
    def test_android_snoop_via_bugreport(self, world):
        device = world.add_device("phone", NEXUS_5X_A8)
        device.power_on()
        device.enable_hci_snoop()
        world.run_for(1.0)
        assert device.pull_bugreport()[:8] == b"btsnoop\x00"

    def test_android_direct_path_needs_su(self, world):
        device = world.add_device("phone", NEXUS_5X_A8)
        device.power_on()
        device.enable_hci_snoop()
        world.run_for(1.0)
        with pytest.raises(PermissionError):
            device.read_snoop_log(su=False)
        assert device.read_snoop_log(su=True)[:8] == b"btsnoop\x00"

    def test_windows_has_no_snoop(self, world):
        device = world.add_device("pc", WINDOWS_MS_DRIVER)
        with pytest.raises(AttackError):
            device.enable_hci_snoop()

    def test_iphone_has_no_snoop(self, world):
        device = world.add_device("phone", IPHONE_XS)
        with pytest.raises(AttackError):
            device.enable_hci_snoop()

    def test_bluez_snoop_needs_su(self, world):
        device = world.add_device("pc", UBUNTU_2004)
        with pytest.raises(PermissionError):
            device.enable_hci_snoop(su=False)
        device.enable_hci_snoop(su=True)

    def test_bluez_has_no_bugreport_path(self, world):
        device = world.add_device("pc", UBUNTU_2004)
        device.enable_hci_snoop(su=True)
        with pytest.raises(AttackError):
            device.pull_bugreport()


class TestUsbSniffing:
    def test_windows_sniffer_unprivileged(self, world):
        device = world.add_device("pc", WINDOWS_MS_DRIVER)
        device.power_on()
        sniffer = device.attach_usb_sniffer()
        world.run_for(1.0)
        assert sniffer.raw_stream()  # power-on commands captured

    def test_linux_sniffer_needs_su(self, world):
        device = world.add_device("pc", UBUNTU_2004)
        with pytest.raises(PermissionError):
            device.attach_usb_sniffer(su=False)
        device.attach_usb_sniffer(su=True)

    def test_uart_device_has_no_usb_bus(self, world):
        device = world.add_device("phone", NEXUS_5X_A8)
        with pytest.raises(AttackError):
            device.attach_usb_sniffer()


class TestIdentityAndBonding:
    def test_set_bd_addr_updates_controller_and_file(self, world):
        device = world.add_device("phone", NEXUS_5X_A8)
        new_addr = BdAddr.parse("de:ad:be:ef:00:01")
        device.set_bd_addr(new_addr)
        assert device.bd_addr == new_addr
        assert device.filesystem.read_text("/persist/bdaddr.txt", su=True) == str(
            new_addr
        )

    def test_install_bonding_and_power_cycle(self, world):
        device = world.add_device("phone", NEXUS_5X_A8)
        peer = BdAddr.parse("48:90:11:22:33:44")
        key = LinkKey(bytes(range(16)))
        device.install_bonding(BondingRecord(addr=peer, link_key=key))
        assert device.bonded_key_for(peer) is None  # not yet reloaded
        device.power_cycle_bluetooth()
        assert device.bonded_key_for(peer) == key

    def test_install_bonding_requires_su(self, world):
        device = world.add_device("phone", NEXUS_5X_A8)
        with pytest.raises(PermissionError):
            device.install_bonding(
                BondingRecord(
                    addr=BdAddr.parse("00:00:00:00:00:01"),
                    link_key=LinkKey(bytes(16)),
                ),
                su=False,
            )
