"""Pin the LE Secure Connections crypto toolbox against published vectors.

Layers of pinning, from the bottom up:

* AES-128 against FIPS-197 Appendix C.1,
* AES-CMAC against the four RFC 4493 test vectors,
* AES-CCM round-trip + tamper detection (RFC 3610 structure),
* f4/f5/f6/g2/h6/h7 against the Bluetooth Core Spec Vol 3 Part H
  Appendix D sample data, and
* the h6/h7 CTKD conversions (BR/EDR↔LE), including the satellite
  requirement that a BR/EDR→LE→BR/EDR round trip is *lossy* — h6/h7
  are one-way CMAC constructions, so converting back does not recover
  the original key.
"""

from __future__ import annotations

import pytest

from repro.crypto.aes import (
    aes128_encrypt,
    aes_ccm_decrypt,
    aes_ccm_encrypt,
    aes_cmac,
    cmac_subkeys,
)
from repro.crypto.smp import (
    SALT_TMP1,
    SALT_TMP2,
    bredr_link_key_from_le_ltk,
    f4,
    f5,
    f6,
    g2,
    h6,
    h7,
    le_ltk_from_bredr_link_key,
    le_session_key,
)

H = bytes.fromhex


# ------------------------------------------------------------------- AES-128


def test_aes128_fips197_appendix_c1():
    key = H("000102030405060708090a0b0c0d0e0f")
    plaintext = H("00112233445566778899aabbccddeeff")
    assert aes128_encrypt(key, plaintext) == H(
        "69c4e0d86a7b0430d8cdb78070b4c55a"
    )


def test_aes128_rejects_bad_lengths():
    with pytest.raises(ValueError):
        aes128_encrypt(b"\x00" * 15, b"\x00" * 16)
    with pytest.raises(ValueError):
        aes128_encrypt(b"\x00" * 16, b"\x00" * 17)


# ------------------------------------------------------------------ AES-CMAC

RFC4493_KEY = H("2b7e151628aed2a6abf7158809cf4f3c")
RFC4493_MSG = H(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


def test_cmac_subkeys_rfc4493():
    k1, k2 = cmac_subkeys(RFC4493_KEY)
    assert k1 == H("fbeed618357133667c85e08f7236a8de")
    assert k2 == H("f7ddac306ae266ccf90bc11ee46d513b")


@pytest.mark.parametrize(
    ("length", "expected"),
    [
        (0, "bb1d6929e95937287fa37d129b756746"),
        (16, "070a16b46b4d4144f79bdd9dd04a287c"),
        (40, "dfa66747de9ae63030ca32611497c827"),
        (64, "51f0bebf7e3b9d92fc49741779363cfe"),
    ],
)
def test_aes_cmac_rfc4493(length, expected):
    assert aes_cmac(RFC4493_KEY, RFC4493_MSG[:length]) == H(expected)


# ------------------------------------------------------------------- AES-CCM


def test_ccm_round_trip_le_parameters():
    # LE link-layer shape: 13-byte nonce, 4-byte MIC, 1-byte AAD.
    key = H("99ad1b5226a37e3e058e3b8e27c2c666")
    nonce = H("00000000000000000000000000")[:13]
    aad = b"\x02"
    plaintext = b"attack at dawn over LE"
    ct = aes_ccm_encrypt(key, nonce, plaintext, aad=aad, tag_len=4)
    assert len(ct) == len(plaintext) + 4
    assert ct[: len(plaintext)] != plaintext
    assert aes_ccm_decrypt(key, nonce, ct, aad=aad, tag_len=4) == plaintext


def test_ccm_detects_tampering_and_wrong_key():
    key = H("99ad1b5226a37e3e058e3b8e27c2c666")
    nonce = b"\x07" * 13
    ct = aes_ccm_encrypt(key, nonce, b"payload", tag_len=4)
    flipped = bytes([ct[0] ^ 0x01]) + ct[1:]
    assert aes_ccm_decrypt(key, nonce, flipped, tag_len=4) is None
    assert aes_ccm_decrypt(b"\x11" * 16, nonce, ct, tag_len=4) is None
    assert aes_ccm_decrypt(key, nonce, ct[:3], tag_len=4) is None


# --------------------------------- Core Spec Vol 3 Part H Appendix D vectors

# Shared sample data used across the f4/f5/f6/g2 vectors.
U = H("20b003d2f297be2c5e2c83a7e9f9a5b9eff49111acf4fddbcc0301480e359de6")
V = H("55188b3d32f6bb9a900afcfbeed4e72a59cb9ac2f19d7cfb6b4fdd49f47fc5fd")
X = H("d5cb8454d177733effffb2ec712baeab")
Y = H("a6e8e7cc25a75f6e216583f7ff3dc4cf")
W = H("ec0234a357c8ad05341010a60a397d9b99796b13b4f866f1868d34f373bfa698")
N1 = X
N2 = Y
A1 = H("0056123737bfce")
A2 = H("00a713702dcfc1")


def test_f4_appendix_d():
    assert f4(U, V, X, 0x00) == H("f2c916f107a9bd1cf1eda1bea974872d")


def test_f5_appendix_d():
    mac_key, ltk = f5(W, N1, N2, A1, A2)
    assert mac_key == H("2965f176a1084a02fd3f6a20ce636e20")
    assert ltk == H("6986791169d7cd23980522b594750a38")


def test_f6_appendix_d():
    mac_key = H("2965f176a1084a02fd3f6a20ce636e20")
    r = H("12a3343bb453bb5408da42d20c2d0fc8")
    io_cap = H("010102")
    assert f6(mac_key, N1, N2, r, io_cap, A1, A2) == H(
        "e3c473989cd0e8c5d26c0b09da958f61"
    )


def test_g2_appendix_d():
    # Appendix D gives the 32-bit CMAC tail 0x2f9ed5ba; the compared
    # value is that mod 10^6.
    assert g2(U, V, X, Y) == 0x2F9ED5BA % 1_000_000


def test_h6_appendix_d():
    key = H("ec0234a357c8ad05341010a60a397d9b")
    assert h6(key, b"lebr") == H("2d9ae102e76dc91ce8d3a9e280b16399")


def test_h7_appendix_d():
    salt = b"\x00" * 12 + b"tmp1"
    key = H("ec0234a357c8ad05341010a60a397d9b")
    assert h7(salt, key) == H("fb173597c6a3c0ecd2998c2a75a57011")


# ----------------------------------------------------------------- CTKD math


def test_ctkd_salts_are_spec_shaped():
    assert SALT_TMP1 == b"\x00" * 12 + b"tmp1"
    assert SALT_TMP2 == b"\x00" * 12 + b"tmp2"


def test_ctkd_composition_matches_primitives():
    link_key = H("ec0234a357c8ad05341010a60a397d9b")
    # CT2=1: ILK = h7(SALT_tmp1, LK); LTK = h6(ILK, "brle").
    assert le_ltk_from_bredr_link_key(link_key, ct2=True) == h6(
        h7(SALT_TMP1, link_key), b"brle"
    )
    # CT2=0 legacy path: ILK = h6(LK, "tmp1").
    assert le_ltk_from_bredr_link_key(link_key, ct2=False) == h6(
        h6(link_key, b"tmp1"), b"brle"
    )
    ltk = H("368df9bc1c1cc1c2b11b5e10cbd8e882")
    assert bredr_link_key_from_le_ltk(ltk, ct2=True) == h6(
        h7(SALT_TMP2, ltk), b"lebr"
    )
    assert bredr_link_key_from_le_ltk(ltk, ct2=False) == h6(
        h6(ltk, b"tmp2"), b"lebr"
    )


def test_ctkd_round_trip_is_lossy():
    """BR/EDR → LE → BR/EDR does NOT recover the original link key.

    h6/h7 are one-way CMAC constructions keyed on different salts in
    each direction (tmp1/brle forward, tmp2/lebr back), so the spec's
    conversion deliberately has no inverse — exactly the property the
    satellite task asks us to pin.
    """
    link_key = H("ec0234a357c8ad05341010a60a397d9b")
    for ct2 in (True, False):
        ltk = le_ltk_from_bredr_link_key(link_key, ct2=ct2)
        back = bredr_link_key_from_le_ltk(ltk, ct2=ct2)
        assert back != link_key
        # And the other orbit likewise never closes.
        ltk2 = le_ltk_from_bredr_link_key(back, ct2=ct2)
        assert ltk2 != ltk


def test_ctkd_is_deterministic_and_direction_sensitive():
    link_key = H("0123456789abcdef0123456789abcdef")
    a = le_ltk_from_bredr_link_key(link_key)
    b = le_ltk_from_bredr_link_key(link_key)
    assert a == b
    assert le_ltk_from_bredr_link_key(link_key) != bredr_link_key_from_le_ltk(
        link_key
    )


# ------------------------------------------------------------ LL session key


def test_le_session_key_is_aes_of_skds():
    ltk = H("4c68384139f574d836bcf34e9dfb01bf")
    skd_m = H("acbdceda79560891")
    skd_s = H("13990641247ac5a3")
    assert le_session_key(ltk, skd_m, skd_s) == aes128_encrypt(
        ltk, skd_m + skd_s
    )
    with pytest.raises(ValueError):
        le_session_key(ltk, skd_m, b"\x00" * 7)


def test_toolbox_rejects_bad_lengths():
    with pytest.raises(ValueError):
        f4(U[:31], V, X, 0)
    with pytest.raises(ValueError):
        f5(W, N1, N2, A1[:6], A2)
    with pytest.raises(ValueError):
        f6(X, N1, N2, X, b"\x01\x01", A1, A2)
    with pytest.raises(ValueError):
        h6(X, b"brl")
    with pytest.raises(ValueError):
        h7(X[:15], X)
