"""End-to-end tests for the page blocking attack (§V / Fig. 6b)."""

import pytest

from repro.attacks.baseline import run_baseline_trial
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.core.types import LinkKeyType
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8


def _run_attack(m_spec=LG_VELVET, seed=8, **kwargs):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world, m_spec=m_spec)
    attack = PageBlockingAttack(world, a, c, m, **kwargs)
    return world, m, c, a, attack.run()


class TestDeterministicMitm:
    @pytest.fixture(scope="class")
    def outcome(self):
        return _run_attack()

    def test_mitm_connection_established(self, outcome):
        _, _, _, _, report = outcome
        assert report.mitm_connection and report.success

    def test_pairing_completed(self, outcome):
        _, _, _, _, report = outcome
        assert report.paired

    def test_downgraded_to_just_works(self, outcome):
        _, m, c, a, report = outcome
        assert report.downgraded_to_just_works
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type == LinkKeyType.UNAUTHENTICATED_COMBINATION_P256

    def test_attacker_holds_matching_key(self, outcome):
        _, m, c, a, report = outcome
        assert (
            m.host.security.bond_for(c.bd_addr).link_key
            == a.host.security.bond_for(m.bd_addr).link_key
        )

    def test_m_flow_matches_fig12b(self, outcome):
        """M must be connection *responder* and pairing *initiator*."""
        _, _, _, _, report = outcome
        flow = report.m_flow
        assert "HCI_Connection_Request" in flow
        assert "HCI_Accept_Connection_Request" in flow
        assert "HCI_Authentication_Requested" in flow
        assert "HCI_Link_Key_Request_Negative_Reply" in flow
        # the tell-tale ordering: incoming connection BEFORE the
        # locally-initiated pairing
        assert flow.index("HCI_Connection_Request") < flow.index(
            "HCI_Authentication_Requested"
        )
        # and no outgoing HCI_Create_Connection at all
        assert "HCI_Create_Connection" not in flow

    def test_deterministic_across_seeds(self):
        for seed in range(5):
            _, _, _, _, report = _run_attack(seed=seed)
            assert report.success, f"seed {seed} failed"


class TestPopupBehaviour:
    def test_v50_victim_sees_yes_no_popup(self):
        _, m, _, _, report = _run_attack(m_spec=LG_VELVET)
        assert report.popup_shown_on_m
        assert m.user.popups_accepted >= 1

    def test_v42_victim_pairs_silently(self):
        """≤4.2 initiators auto-confirm Just Works — zero UI."""
        _, m, _, _, report = _run_attack(m_spec=NEXUS_5X_A8)
        assert report.success and report.paired
        assert not report.popup_shown_on_m


class TestBaselineContrast:
    def test_baseline_race_is_not_deterministic(self):
        outcomes = {run_baseline_trial(LG_VELVET, seed=s).attacker_won for s in range(12)}
        assert outcomes == {True, False}, (
            "expected the un-blocked race to be winnable by both sides"
        )

    def test_baseline_always_connects_to_someone(self):
        for seed in range(6):
            trial = run_baseline_trial(LG_VELVET, seed=seed)
            assert trial.connected


class TestPlocMechanics:
    def test_attacker_host_never_completes_connection_during_hold(self):
        world = build_world(WorldConfig(seed=4))
        m, c, a = standard_cast(world)
        from repro.attacks.attacker import Attacker

        attacker = Attacker(a)
        attacker.spoof_device(c)
        a.host.gap.connect(m.bd_addr)
        attacker.enter_ploc(10.0)
        world.run_for(5.0)
        # M sees a live host-level connection; A's host does not.
        assert m.host.gap.is_connected(c.bd_addr)
        assert not a.host.gap.is_connected(m.bd_addr)
        # Controller-level, the physical link exists on both ends.
        assert len(a.controller.connections) == 1

    def test_held_events_flush_after_hold(self):
        world = build_world(WorldConfig(seed=4))
        m, c, a = standard_cast(world)
        from repro.attacks.attacker import Attacker

        attacker = Attacker(a)
        attacker.spoof_device(c)
        a.host.gap.connect(m.bd_addr)
        attacker.enter_ploc(5.0)
        world.run_for(7.0)
        assert a.host.gap.is_connected(m.bd_addr)

    def test_short_supervision_kills_ploc(self):
        """Ablation: if the link supervision timeout is shorter than
        the PLOC hold, the idle link dies before the victim pairs."""
        world = build_world(WorldConfig(seed=4))
        m, c, a = standard_cast(world)
        m.controller.supervision_timeout_s = 3.0
        a.controller.supervision_timeout_s = 3.0
        attack = PageBlockingAttack(world, a, c, m, ploc_hold_seconds=10.0)
        report = attack.run(pairing_delay=8.0)
        assert not report.success
