"""CLI tests: ``blap detect ...`` and the fault-plan error contract."""

from __future__ import annotations

import io
import json

import pytest

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.cli import main
from repro.snoop.hcidump import HciDump


@pytest.fixture()
def attack_capture(tmp_path):
    world = build_world(WorldConfig(seed=44))
    m, c, a = standard_cast(world)
    report = PageBlockingAttack(world, a, c, m).run()
    assert report.success
    path = tmp_path / "attack.btsnoop"
    path.write_bytes(report.m_dump.to_btsnoop_bytes())
    return path


@pytest.fixture()
def benign_capture(tmp_path):
    world = build_world(WorldConfig(seed=45))
    m, c, a = standard_cast(world)
    dump = HciDump().attach(m.transport)
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    op = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert op.success
    path = tmp_path / "benign.btsnoop"
    path.write_bytes(dump.to_btsnoop_bytes())
    return path


class TestDetectList:
    def test_lists_all_detectors(self, capsys):
        assert main(["detect", "list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "page-blocking",
            "link-key-anomaly",
            "entropy-downgrade",
            "surveillance",
        ):
            assert name in out

    def test_verbose_shows_config(self, capsys):
        assert main(["detect", "list", "-v"]) == 0
        assert "min_key_size" in capsys.readouterr().out


class TestDetectScan:
    def test_attack_capture_raises_alerts(self, attack_capture, capsys):
        assert main(["detect", "scan", str(attack_capture)]) == 0
        out = capsys.readouterr().out
        assert "page-blocking" in out and "high" in out

    def test_benign_capture_is_quiet(self, benign_capture, capsys):
        assert main(["detect", "scan", str(benign_capture)]) == 1
        assert "no detector alerts" in capsys.readouterr().out

    def test_detector_filter(self, attack_capture, capsys):
        assert (
            main(
                [
                    "detect", "scan", str(attack_capture),
                    "--detector", "link-key-anomaly",
                ]
            )
            == 1
        )

    def test_stdin_capture(self, attack_capture, capsys, monkeypatch):
        """``blap detect scan -`` reads the capture from stdin."""

        class FakeStdin:
            buffer = io.BytesIO(attack_capture.read_bytes())

        monkeypatch.setattr("sys.stdin", FakeStdin())
        assert main(["detect", "scan", "-"]) == 0
        assert "page-blocking" in capsys.readouterr().out

    def test_stdin_truncated_capture_is_operator_error(
        self, attack_capture, capsys, monkeypatch
    ):
        class FakeStdin:
            buffer = io.BytesIO(attack_capture.read_bytes()[:40])

        monkeypatch.setattr("sys.stdin", FakeStdin())
        assert main(["detect", "scan", "-"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "truncated" in err


class TestDetectDemo:
    def test_demo_prints_scores_and_succeeds(self, capsys):
        assert main(["detect", "demo", "page-blocking", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "expected detector : page-blocking" in out
        assert "max score 0.95" in out

    def test_demo_with_response(self, capsys):
        assert (
            main(
                ["detect", "demo", "page-blocking", "--seed", "2", "--respond"]
            )
            == 0
        )
        assert "attack succeeded  : False" in capsys.readouterr().out


class TestDetectRoc:
    def test_tiny_sweep_passes_the_gate(self, capsys):
        assert (
            main(
                [
                    "detect", "roc", "--trials", "3", "--no-cache",
                    "--attack", "page-blocking",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "operating point" in out and "TPR 100%" in out

    def test_json_output(self, capsys):
        assert (
            main(
                [
                    "detect", "roc", "--trials", "2", "--no-cache",
                    "--attack", "surveillance", "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert "surveillance" in report
        assert report["surveillance"]["operating_point"]["tpr"] == 1.0


class TestFaultPlanErrors:
    """Satellite: a missing/malformed plan is one stderr line + exit 2,
    on every surface that takes ``--fault-plan``."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["demo", "page-blocking", "--fault-plan", "{path}"],
            ["timeline", "page-blocking", "--fault-plan", "{path}"],
            [
                "campaign", "run", "page-blocking", "--trials", "1",
                "--no-cache", "--fault-plan", "{path}",
            ],
            ["detect", "demo", "page-blocking", "--fault-plan", "{path}"],
        ],
    )
    def test_missing_plan_exits_2(self, argv, capsys):
        argv = [a.format(path="/no/such/plan.json") for a in argv]
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one line
        assert "fault plan not found" in err

    def test_malformed_plan_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "page-blocking", "--fault-plan", str(bad)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "bad fault plan" in err

    def test_plan_with_unknown_point_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "unknown.json"
        bad.write_text(json.dumps([{"point": "warp.core_breach"}]))
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "page-blocking", "--fault-plan", str(bad)])
        assert excinfo.value.code == 2
        assert "bad fault plan" in capsys.readouterr().err
