"""BLURtooth: both cross-transport pivots, including the golden check.

The acceptance bar for the BR/EDR→LE direction is exact: the LTK the
attacker derives from the BLAP-extracted link key must equal, byte for
byte, the LTK the victim's own stack derived via h7/h6 — and must
actually decrypt the victim's sniffed LE session, while a wrong key
decrypts nothing.
"""

from __future__ import annotations

import pytest

from repro.attacks.blurtooth import (
    BlurtoothReport,
    LeOfflineDecryptor,
    derive_le_ltk,
)
from repro.campaign import run_trial
from repro.core.types import LinkKey
from repro.crypto.smp import le_ltk_from_bredr_link_key


class TestDeriveLeLtk:
    def test_matches_the_raw_primitive(self):
        key = LinkKey(bytes(range(16)))
        assert derive_le_ltk(key).value == le_ltk_from_bredr_link_key(
            key.value
        )

    def test_ct2_toggle_changes_the_result(self):
        key = LinkKey(bytes(range(16)))
        assert derive_le_ltk(key, ct2=True) != derive_le_ltk(key, ct2=False)


class TestBredrToLeScenario:
    @pytest.fixture(scope="class")
    def result(self):
        result, _metrics = run_trial("blurtooth-bredr-to-le", seed=5)
        assert result.error is None, result.error
        return result

    def test_pivot_succeeds(self, result):
        assert result.success and result.outcome == "pivoted"

    def test_golden_ltk_matches_victim_derivation(self, result):
        # the attacker's offline h7/h6 output IS the victim's LTK
        assert result.detail["ltk_matches_victim"] is True
        extracted = bytes.fromhex(result.detail["extracted_link_key"])
        assert result.detail["derived_ltk"] == le_ltk_from_bredr_link_key(
            extracted
        ).hex()

    def test_sniffed_session_decrypts(self, result):
        assert result.detail["marker_recovered"] is True
        assert result.detail["payloads_recovered"] >= 2

    def test_wrong_key_is_rejected(self, result):
        assert result.detail["wrong_key_rejected"] is True

    def test_deterministic_across_runs(self):
        first, _ = run_trial("blurtooth-bredr-to-le", seed=9)
        second, _ = run_trial("blurtooth-bredr-to-le", seed=9)
        strip = lambda r: {
            k: v for k, v in r.to_dict().items() if k != "wall_time_s"
        }
        assert strip(first) == strip(second)


class TestLeToBredrScenario:
    @pytest.fixture(scope="class")
    def result(self):
        result, _metrics = run_trial("blurtooth-le-to-bredr", seed=5)
        assert result.error is None, result.error
        return result

    def test_pivot_succeeds(self, result):
        assert result.success and result.outcome == "overwritten"

    def test_bond_overwrite_downgrades_authentication(self, result):
        # authenticated P-256 key (0x08) replaced by an unauthenticated
        # one (0x07) minted from the attacker's Just Works pairing
        assert result.detail["overwrote_bredr_bond"] is True
        assert result.detail["prior_key_type"] == 0x08
        assert result.detail["new_key_type"] == 0x07
        assert result.detail["association"] == "just_works"

    def test_attacker_key_matches_victim_bond(self, result):
        assert result.detail["derived_key_matches_victim"] is True

    def test_bredr_pivot_exfiltrates(self, result):
        assert result.detail["bredr_pivot_success"] is True
        assert result.detail["phonebook_entries"] == 1


class TestReportSemantics:
    def test_bredr_to_le_needs_all_three_facts(self):
        report = BlurtoothReport(direction="bredr-to-le")
        assert not report.success
        report.key_matches_victim = True
        report.decrypted_payloads = [b"x"]
        assert not report.success  # wrong-key control still missing
        report.wrong_key_rejected = True
        assert report.success

    def test_le_to_bredr_needs_the_overwrite(self):
        report = BlurtoothReport(direction="le-to-bredr")
        assert not report.success
        report.overwrote_bredr_bond = True
        assert report.success


class TestOfflineDecryptorEdges:
    def test_empty_capture_raises_attack_error(self):
        from repro.attacks.eavesdrop import AirCapture
        from repro.core.errors import AttackError

        decryptor = LeOfflineDecryptor(
            AirCapture(), LinkKey(bytes(16))
        )
        with pytest.raises(AttackError):
            decryptor.derive_session()
