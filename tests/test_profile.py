"""repro.profile: self-time trees, flamegraph export, artifacts.

Self-time fixtures drive a real :class:`SpanTracker` on a fake clock,
so the invariants under test (additivity, detached-span policy,
overlap handling) are the same ones the campaign pipeline relies on.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.runner import run_trial
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracker
from repro.profile import (
    SelfTimeTree,
    diff_trees,
    load_profile,
    root_wall_s,
    top_self_time_spans,
    write_profile_artifacts,
)
from repro.profile.sampler import ShardProfiler, merge_pstats, top_functions


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracker(clock):
    return SpanTracker(clock)


class TestSelfTimeFixtures:
    def test_nested_spans_are_additive(self, clock, tracker):
        with tracker.span("trial"):
            clock.advance(1.0)
            with tracker.span("attack"):
                clock.advance(2.0)
                with tracker.span("phy"):
                    clock.advance(3.0)
            clock.advance(0.5)
        trial, attack, phy = tracker.spans
        assert trial.self_time == pytest.approx(1.5)
        assert attack.self_time == pytest.approx(2.0)
        assert phy.self_time == pytest.approx(3.0)
        # additivity: self-times sum exactly to the root's wall time
        total = trial.self_time + attack.self_time + phy.self_time
        assert total == pytest.approx(trial.duration)

    def test_detached_span_within_parent_counts_as_child(
        self, clock, tracker
    ):
        with tracker.span("parent"):
            clock.advance(1.0)
            page = tracker.begin("page")
            clock.advance(4.0)
            tracker.finish(page)
            clock.advance(1.0)
        parent = tracker.by_name("parent")[0]
        assert parent.self_time == pytest.approx(2.0)
        assert page.self_time == pytest.approx(4.0)

    def test_detached_span_outliving_parent_keeps_full_self_time(
        self, clock, tracker
    ):
        """Concurrent-work policy: the child keeps its full duration
        as self-time, and the already-closed parent is left unchanged
        (the child was still open when the parent closed, so it never
        became a *finished* child)."""
        with tracker.span("parent"):
            clock.advance(1.0)
            page = tracker.begin("page")
            clock.advance(1.0)
        clock.advance(5.0)
        tracker.finish(page)
        parent = tracker.by_name("parent")[0]
        assert parent.self_time == pytest.approx(2.0)
        assert page.self_time == pytest.approx(6.0)
        assert page.path == ("parent", "page")

    def test_overlapping_detached_siblings(self, clock, tracker):
        with tracker.span("parent"):
            a = tracker.begin("a")
            clock.advance(1.0)
            b = tracker.begin("b")  # overlaps a
            clock.advance(2.0)
            tracker.finish(a)  # a: 3.0
            clock.advance(1.0)
            tracker.finish(b)  # b: 3.0
            clock.advance(0.5)
        parent = tracker.by_name("parent")[0]
        assert parent.duration == pytest.approx(4.5)
        # overlap means children's wall (6.0) exceeds the parent's
        # remaining time; self-time clamps at zero, never negative
        assert parent.self_time == 0.0

    def test_from_spans_groups_by_path(self, clock, tracker):
        for _ in range(3):
            with tracker.span("trial"):
                clock.advance(1.0)
                with tracker.span("hci"):
                    clock.advance(0.25)
        tree = SelfTimeTree.from_spans(tracker.finished_spans())
        assert tree.count(("trial",)) == 3
        assert tree.self_s(("trial",)) == pytest.approx(3.0)
        assert tree.self_s(("trial", "hci")) == pytest.approx(0.75)
        assert tree.subtree_s(("trial",)) == pytest.approx(3.75)
        assert tree.total_self_s == pytest.approx(3.75)


def _snapshot_for(observations):
    registry = MetricsRegistry()
    for name, values in observations:
        hist = registry.histogram(name)
        for value in values:
            hist.observe(value)
    return registry.snapshot()


class TestTreeMergeAndSnapshot:
    def test_from_snapshot_reads_spantree_histograms(self):
        snapshot = _snapshot_for([
            ("spantree.trial_s", [1.0, 2.0]),
            ("spantree.trial;hci_s", [0.5]),
            ("span.trial_s", [2.0, 3.0]),  # ignored by the tree
        ])
        tree = SelfTimeTree.from_snapshot(snapshot)
        assert tree.paths() == [("trial",), ("trial", "hci")]
        assert tree.count(("trial",)) == 2
        assert tree.self_s(("trial",)) == pytest.approx(3.0)

    def test_merge_is_order_independent_bytewise(self):
        # adversarial floats: naive left-to-right summation differs
        parts_a = [0.1, 1e16, 0.1, -1e16]
        parts_b = [0.2, 1e-9, 3.7]

        def tree_of(parts):
            tree = SelfTimeTree()
            for part in parts:
                tree.add(("trial",), part)
            tree.add(("trial", "hci"), 0.5)
            return tree

        ab = tree_of(parts_a).merge(tree_of(parts_b))
        ba = tree_of(parts_b).merge(tree_of(parts_a))
        assert json.dumps(ab.to_jsonable(), sort_keys=True) == json.dumps(
            ba.to_jsonable(), sort_keys=True
        )
        assert ab.to_collapsed() == ba.to_collapsed()

    def test_cross_shard_registry_merge_matches_single_registry(self):
        shard_a = _snapshot_for([("spantree.trial_s", [1.0, 2.0])])
        shard_b = _snapshot_for([
            ("spantree.trial_s", [4.0]),
            ("spantree.trial;hci_s", [0.5]),
        ])
        merged_ab = MetricsRegistry()
        merged_ab.merge(shard_a)
        merged_ab.merge(shard_b)
        merged_ba = MetricsRegistry()
        merged_ba.merge(shard_b)
        merged_ba.merge(shard_a)
        tree_ab = SelfTimeTree.from_snapshot(merged_ab.snapshot())
        tree_ba = SelfTimeTree.from_snapshot(merged_ba.snapshot())
        assert tree_ab.to_collapsed() == tree_ba.to_collapsed()
        assert tree_ab.count(("trial",)) == 3
        assert tree_ab.self_s(("trial",)) == pytest.approx(7.0)

    def test_jsonable_roundtrip(self):
        tree = SelfTimeTree()
        tree.add(("a",), 1.5)
        tree.add(("a", "b"), 0.25, count=4)
        clone = SelfTimeTree.from_jsonable(tree.to_jsonable())
        assert clone.to_jsonable() == tree.to_jsonable()


class TestExports:
    def test_collapsed_format(self):
        tree = SelfTimeTree()
        tree.add(("trial", "hci"), 0.5)
        tree.add(("trial",), 1.25)
        text = tree.to_collapsed()
        assert text == "trial 1250000\ntrial;hci 500000\n"
        assert SelfTimeTree().to_collapsed() == ""

    def test_render_text_orders_siblings_by_subtree(self):
        tree = SelfTimeTree()
        tree.add(("trial",), 0.1)
        tree.add(("trial", "small"), 0.2)
        tree.add(("trial", "big"), 5.0)
        text = tree.render_text()
        assert text.index("big") < text.index("small")

    def test_top_self_time_spans_and_root_wall(self):
        snapshot = _snapshot_for([
            ("spanself.trial_s", [1.0]),
            ("spanself.hci_s", [4.0]),
            ("span.trial_s", [5.5]),
            ("spantree.trial_s", [1.0]),
            ("spantree.trial;hci_s", [4.0]),
        ])
        rows = top_self_time_spans(snapshot, 1)
        assert rows == [{"name": "hci", "count": 1, "self_s": 4.0}]
        # only "trial" is a root path; hci is nested under it
        assert root_wall_s(snapshot) == pytest.approx(5.5)

    def test_diff_trees_sorted_by_absolute_delta(self):
        old = SelfTimeTree()
        old.add(("a",), 1.0)
        old.add(("b",), 2.0)
        new = SelfTimeTree()
        new.add(("a",), 1.1)
        new.add(("c",), 9.0)
        rows = diff_trees(old, new)
        assert [row["path"] for row in rows] == [["c"], ["b"], ["a"]]
        assert rows[0]["delta_s"] == pytest.approx(9.0)
        assert rows[1]["delta_s"] == pytest.approx(-2.0)


class TestArtifacts:
    def test_write_and_load_roundtrip_with_invariant(self, tmp_path):
        _, snapshot = run_trial("page-blocking", 2001)
        summary = write_profile_artifacts(snapshot, tmp_path / "p")
        assert (tmp_path / "p" / "spans.collapsed").exists()
        loaded = load_profile(tmp_path / "p")
        assert loaded["tree"] == summary["tree"]
        assert summary["total_self_s"] <= summary["root_wall_s"] + 1e-9
        assert summary["top_self"]

    def test_artifacts_byte_identical_across_runs(self, tmp_path):
        for name in ("one", "two"):
            _, snapshot = run_trial("extraction", 42)
            write_profile_artifacts(snapshot, tmp_path / name)
        for artifact in ("spans.collapsed", "profile.json"):
            assert (tmp_path / "one" / artifact).read_bytes() == (
                tmp_path / "two" / artifact
            ).read_bytes()

    def test_load_profile_rejects_non_profiles(self, tmp_path):
        bogus = tmp_path / "profile.json"
        bogus.write_text('{"nope": 1}')
        with pytest.raises(ValueError):
            load_profile(bogus)


class TestSampler:
    def test_shard_profiler_merge_and_top_functions(self, tmp_path):
        def busy():
            return sum(i * i for i in range(2000))

        paths = []
        for shard in range(2):
            profiler = ShardProfiler()
            with profiler.trial():
                busy()
            assert profiler.trials == 1
            path = tmp_path / f"shard-x-{shard}-1.pstats"
            profiler.dump(path)
            paths.append(path)
        merged = merge_pstats(paths, tmp_path / "profile.pstats")
        rows = top_functions(merged, n=50)
        assert rows
        assert any("busy" in row["function"] for row in rows)
        assert all(row["ncalls"] >= 1 for row in rows)

    def test_merge_pstats_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            merge_pstats([], tmp_path / "out.pstats")
