"""Streaming campaign telemetry: JSONL records, progress, gauges."""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignTelemetry,
    ResultCache,
    read_telemetry,
)
from repro.campaign.trial import _REGISTRY, Scenario, register_scenario


@pytest.fixture
def scratch_scenario():
    added = []

    def add(cls):
        scenario = register_scenario(cls)
        added.append(scenario.name)
        return scenario

    yield add
    for name in added:
        _REGISTRY.pop(name, None)


class _BoomScenario(Scenario):
    name = "test-telemetry-boom"
    description = "always raises"
    default_params = {}

    def execute(self, world, params, seed):
        raise RuntimeError("boom")


def _telemetry(tmp_path, mode="off", **kwargs):
    return CampaignTelemetry(
        run_id="test-run",
        root=tmp_path / "runs",
        stream=io.StringIO(),
        mode=mode,
        **kwargs,
    )


class TestRecordStream:
    def test_serial_run_streams_one_record_per_trial(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        runner = CampaignRunner(workers=1, telemetry=telemetry)
        result = runner.run(CampaignSpec("baseline-race", seeds=range(5)))
        telemetry.close()
        records = read_telemetry(telemetry.run_dir)
        assert len(records) == result.trials == 5
        assert sorted(record["seed"] for record in records) == list(range(5))
        first = records[0]
        for field in (
            "scenario", "seed", "success", "outcome", "attempts",
            "wall_time_s", "sim_time_s", "cached", "faulted",
        ):
            assert field in first
        assert first["scenario"] == "baseline-race"
        assert first["cached"] is False and first["faulted"] is False

    def test_multiworker_run_streams_every_trial(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        runner = CampaignRunner(workers=2, telemetry=telemetry)
        result = runner.run(CampaignSpec("baseline-race", seeds=range(10, 18)))
        telemetry.close()
        records = read_telemetry(telemetry.run_dir)
        assert len(records) == result.trials == 8
        assert sorted(r["seed"] for r in records) == list(range(10, 18))
        assert sum(1 for r in records if r["success"]) == result.successes

    def test_cache_hits_are_recorded_too(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = CampaignSpec("extraction", seeds=range(3))
        CampaignRunner(workers=1, cache=cache).run(spec)

        telemetry = _telemetry(tmp_path)
        CampaignRunner(workers=1, cache=cache, telemetry=telemetry).run(spec)
        telemetry.close()
        records = read_telemetry(telemetry.run_dir)
        assert len(records) == 3
        assert all(record["cached"] for record in records)

    def test_failed_trials_still_produce_records(
        self, tmp_path, scratch_scenario
    ):
        scratch_scenario(_BoomScenario)
        telemetry = _telemetry(tmp_path)
        runner = CampaignRunner(
            workers=1, max_attempts=2, telemetry=telemetry
        )
        result = runner.run(
            CampaignSpec("test-telemetry-boom", seeds=range(4))
        )
        telemetry.close()
        records = read_telemetry(telemetry.run_dir)
        assert len(records) == result.trials == 4
        assert all(record["error"] for record in records)
        assert all(record["attempts"] == 2 for record in records)

    def test_faulted_flag_follows_the_plan(self, tmp_path):
        with open("examples/plans/lossy.json", encoding="utf-8") as handle:
            plan = json.load(handle)
        telemetry = _telemetry(tmp_path)
        CampaignRunner(workers=1, telemetry=telemetry).run(
            CampaignSpec("baseline-race", seeds=range(2), fault_plan=plan)
        )
        telemetry.close()
        records = read_telemetry(telemetry.run_dir)
        assert len(records) == 2
        assert all(record["faulted"] for record in records)

    def test_detection_scores_ride_along(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        CampaignRunner(workers=1, telemetry=telemetry).run(
            CampaignSpec(
                "detection-attack",
                seeds=[1],
                params={"attack": "page-blocking"},
            )
        )
        telemetry.close()
        (record,) = read_telemetry(telemetry.run_dir)
        assert "scores" in record and record["scores"]


class TestProgressRendering:
    def test_live_mode_uses_carriage_returns(self, tmp_path):
        stream = io.StringIO()
        telemetry = CampaignTelemetry(
            run_id="live", root=tmp_path / "runs", stream=stream, mode="live"
        )
        CampaignRunner(workers=1, telemetry=telemetry).run(
            CampaignSpec("baseline-race", seeds=range(3))
        )
        telemetry.close()
        text = stream.getvalue()
        assert "\r" in text
        assert "baseline-race" in text

    def test_plain_mode_has_no_carriage_returns(self, tmp_path):
        stream = io.StringIO()
        telemetry = CampaignTelemetry(
            run_id="plain",
            root=tmp_path / "runs",
            stream=stream,
            mode="plain",
            plain_interval_s=0.0,
        )
        CampaignRunner(workers=1, telemetry=telemetry).run(
            CampaignSpec("baseline-race", seeds=range(3))
        )
        telemetry.close()
        text = stream.getvalue()
        assert "\r" not in text
        # start line + one per trial + final summary line
        assert len(text.splitlines()) == 5

    def test_auto_mode_picks_plain_for_non_tty(self, tmp_path):
        telemetry = CampaignTelemetry(
            run_id="auto",
            root=tmp_path / "runs",
            stream=io.StringIO(),  # no isatty -> False
            mode="auto",
        )
        assert telemetry.mode == "plain"

    def test_quiet_mode_emits_only_start_and_end(self, tmp_path):
        stream = io.StringIO()
        telemetry = CampaignTelemetry(
            run_id="quiet", root=tmp_path / "runs", stream=stream, mode="quiet"
        )
        CampaignRunner(workers=1, telemetry=telemetry).run(
            CampaignSpec("baseline-race", seeds=range(6))
        )
        telemetry.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "0/6 trials started" in lines[0]
        assert "6/6 trials" in lines[1]

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="telemetry mode"):
            CampaignTelemetry(root=tmp_path, mode="loud")


class TestGaugesAndSummary:
    def test_throughput_and_eta_gauges_update(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        CampaignRunner(workers=1, telemetry=telemetry).run(
            CampaignSpec("baseline-race", seeds=range(4))
        )
        snapshot = telemetry.metrics.snapshot()
        telemetry.close()
        assert snapshot["counters"]["campaign.trials"] == 4
        assert snapshot["gauges"]["campaign.throughput_per_s"] > 0
        assert snapshot["gauges"]["campaign.eta_s"] == 0.0

    def test_run_summary_written_on_close(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        runner = CampaignRunner(workers=1, telemetry=telemetry)
        runner.run(CampaignSpec("baseline-race", seeds=range(2)))
        runner.run(CampaignSpec("extraction", seeds=range(2)))
        summary_path = telemetry.close()
        summary = json.loads(summary_path.read_text())
        assert summary["run_id"] == "test-run"
        assert summary["trials"] == 4
        assert [c["scenario"] for c in summary["campaigns"]] == [
            "baseline-race", "extraction",
        ]
        assert all(c["done"] == 2 for c in summary["campaigns"])

    def test_telemetry_does_not_perturb_results(self, tmp_path):
        """Same campaign with and without telemetry: identical results
        (the stream is an observer, not a participant)."""
        spec = CampaignSpec("baseline-race", seeds=range(20, 26))
        bare = CampaignRunner(workers=1).run(spec)
        telemetry = _telemetry(tmp_path)
        observed = CampaignRunner(workers=2, telemetry=telemetry).run(spec)
        telemetry.close()

        def verdicts(campaign):
            return [
                (r.seed, r.success, r.outcome, r.sim_time_s, r.detail)
                for r in campaign.results
            ]

        assert verdicts(bare) == verdicts(observed)
