"""Service benchmarks (run with ``-m perf``).

Persists sustained-ingest throughput to ``BENCH_service.json`` via
``repro.core.bench`` and pins the acceptance-criteria load shape:
≥ 100 concurrent streaming sessions across multiple tenants with
per-tenant metrics and zero cross-session alert leakage.  The floors
are generous — the artifact is the point.
"""

from __future__ import annotations

import pytest

from repro.campaign.captures import attack_capture, benign_capture
from repro.core.bench import record_bench
from repro.detect import replay_capture
from repro.service.loadgen import run_loadgen

pytestmark = pytest.mark.perf


def test_loadgen_sustains_100_concurrent_sessions():
    captures = [attack_capture(), benign_capture()]
    expected_counts = [
        len(replay_capture(capture).alerts) for capture in captures
    ]
    report = run_loadgen(captures, sessions=100, tenants=4)

    assert report.failures == 0
    assert report.sessions == 100
    assert report.tenants == 4
    # even spread across tenants
    assert sorted(report.by_tenant.values()) == [25, 25, 25, 25]

    # zero cross-session leakage: every verdict's alert count matches
    # the sequential replay of one corpus capture exactly — an alert
    # bleeding between sessions would break the 50/50 split below.
    for verdict in report.verdicts:
        assert verdict["alert_count"] in expected_counts
        for alert in verdict["alerts"]:
            assert alert["monitor"] == verdict["monitor"]
    attack_count = sum(
        1
        for verdict in report.verdicts
        if verdict["alert_count"] == expected_counts[0]
    )
    benign_count = sum(
        1
        for verdict in report.verdicts
        if verdict["alert_count"] == expected_counts[1]
    )
    assert attack_count == benign_count == 50

    record_bench(
        "service",
        "loadgen",
        {
            "sessions": report.sessions,
            "tenants": report.tenants,
            "events": report.events,
            "dropped_events": report.dropped_events,
            "wall_s": report.wall_s,
            "ingest_events_per_s": report.events_per_s,
        },
    )
    assert report.events_per_s > 500, (
        f"sustained ingest {report.events_per_s:.0f} events/s "
        "is implausibly slow"
    )


def test_capture_upload_throughput():
    import asyncio
    import time

    from repro.service import client as service_client
    from repro.service.server import IngestServer

    capture = attack_capture()

    async def main():
        async with IngestServer() as server:
            # warm-up
            await service_client.request(
                server.host, server.port, "POST", "/api/captures", capture
            )
            started = time.perf_counter()
            repeats = 20
            events = 0
            for _ in range(repeats):
                status, verdict = await service_client.request(
                    server.host,
                    server.port,
                    "POST",
                    "/api/captures",
                    capture,
                )
                assert status == 200
                events += verdict["events"]
            elapsed = time.perf_counter() - started
            return repeats, events, elapsed

    repeats, events, elapsed = asyncio.run(main())
    record_bench(
        "service",
        "capture_upload",
        {
            "repeats": repeats,
            "upload_s": elapsed / repeats,
            "upload_events_per_s": events / elapsed,
        },
    )
    assert events / elapsed > 500
