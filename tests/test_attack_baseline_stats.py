"""Statistical tests for the baseline MITM race (Table II's left column).

The paper concludes the un-blocked race is "quite random" (42–60% over
100 trials/device).  These tests pin the statistical *shape* of our
model: a near-fair Bernoulli process, independent across trials,
unbiased across victim devices — and contrast it with page blocking's
exact determinism.
"""

import pytest

from repro.attacks.baseline import baseline_success_rate, run_baseline_trial
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.devices.catalog import GALAXY_S8, LG_VELVET, NEXUS_5X_A8

TRIALS = 60  # enough for the bounds below at ~4σ confidence


class TestBaselineStatistics:
    def test_rate_is_near_fair(self):
        rate = baseline_success_rate(LG_VELVET, trials=TRIALS)
        # p=0.5, σ=0.065 at n=60: |rate-0.5| < 4σ ≈ 0.26
        assert 0.24 <= rate <= 0.76

    def test_trials_always_connect_to_someone(self):
        """The victim always gets *a* connection — the attack's harm is
        misdirection, not denial of service."""
        for seed in range(20):
            trial = run_baseline_trial(LG_VELVET, seed=seed)
            assert trial.connected

    def test_both_outcomes_occur(self):
        outcomes = {
            run_baseline_trial(LG_VELVET, seed=seed).attacker_won
            for seed in range(20)
        }
        assert outcomes == {True, False}

    def test_outcome_is_seed_deterministic(self):
        """Same seed → same outcome (reproducibility of every cell)."""
        first = [run_baseline_trial(GALAXY_S8, seed=s).attacker_won for s in range(10)]
        second = [run_baseline_trial(GALAXY_S8, seed=s).attacker_won for s in range(10)]
        assert first == second

    def test_no_victim_device_is_systematically_safe(self):
        """Every Table II victim model loses a meaningful share of
        races — none is implicitly 'immune' in the model."""
        for spec in (LG_VELVET, GALAXY_S8, NEXUS_5X_A8):
            rate = baseline_success_rate(spec, trials=30, seed_base=5000)
            assert rate > 0.1, spec.key

    def test_runs_test_for_independence(self):
        """A crude runs test: consecutive outcomes shouldn't correlate.

        For n Bernoulli(0.5) trials the expected number of runs is
        n/2 + 1; we accept a generous band around it.
        """
        outcomes = [
            run_baseline_trial(LG_VELVET, seed=7000 + s).attacker_won
            for s in range(TRIALS)
        ]
        runs = 1 + sum(
            1 for i in range(1, len(outcomes)) if outcomes[i] != outcomes[i - 1]
        )
        expected = TRIALS / 2 + 1
        assert abs(runs - expected) < TRIALS / 3


class TestDeterminismContrast:
    def test_page_blocking_never_loses(self):
        """The qualitative break: 100% across every seed tried."""
        for seed in range(10):
            world = build_world(WorldConfig(seed=9000 + seed))
            m, c, a = standard_cast(world)
            report = PageBlockingAttack(world, a, c, m).run(
                capture_m_dump=False, run_discovery=False
            )
            assert report.success, f"seed {seed}"
