"""Fuzz tests: every parser survives arbitrary bytes.

Forensic tools run on data the attacker's victim produced — real dump
files with vendor noise, truncated USB captures, hand-edited config
files.  The contract under fuzzing is uniform: parse successfully or
raise the module's typed error; never an unhandled exception, never a
hang.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import BluetoothError, HciError, StorageError
from repro.controller.lmp_wire import parse_lmp
from repro.core.filesystem import VirtualFilesystem
from repro.hci.eir import eir_local_name, eir_uuid16s
from repro.hci.parser import parse_command, parse_event, parse_h4_stream
from repro.host.storage import BluezInfoStore, BtConfigStore, RegistryStore
from repro.snoop.btsnoop import BTSNOOP_MAGIC, BtsnoopReader
from repro.snoop.extractor import extract_link_keys
from repro.snoop.pcap import parse_pcap
from repro.snoop.usb_extract import scan_hex_for_link_keys

junk = st.binary(max_size=256)


@given(junk)
@settings(max_examples=80)
def test_fuzz_parse_command(raw):
    try:
        parse_command(raw)
    except HciError:
        pass


@given(junk)
@settings(max_examples=80)
def test_fuzz_parse_event(raw):
    try:
        parse_event(raw)
    except HciError:
        pass


@given(junk)
@settings(max_examples=80)
def test_fuzz_parse_h4_stream(raw):
    try:
        list(parse_h4_stream(raw))
    except HciError:
        pass


@given(junk)
@settings(max_examples=80)
def test_fuzz_parse_lmp(raw):
    try:
        parse_lmp(raw)
    except HciError:
        pass  # the only permissible failure mode


@given(junk)
@settings(max_examples=80)
def test_fuzz_btsnoop_reader(raw):
    try:
        BtsnoopReader(raw).records()
    except StorageError:
        pass


@given(st.binary(max_size=512))
@settings(max_examples=60)
def test_fuzz_btsnoop_with_valid_magic(body):
    """Even with a valid header, arbitrary record bytes must not crash."""
    raw = BTSNOOP_MAGIC + (1).to_bytes(4, "big") + (1002).to_bytes(4, "big") + body
    try:
        for record in BtsnoopReader(raw):
            _ = record.direction
    except StorageError:
        pass


@given(junk)
@settings(max_examples=60)
def test_fuzz_extractor_total(raw):
    """The key extractor over fuzzed btsnoop: typed errors only."""
    try:
        extract_link_keys(raw)
    except BluetoothError:
        pass


@given(junk)
@settings(max_examples=80)
def test_fuzz_pcap_parser(raw):
    try:
        parse_pcap(raw)
    except StorageError:
        pass


@given(st.text(alphabet="0123456789abcdef \n", max_size=300))
@settings(max_examples=60)
def test_fuzz_usb_hex_scan(text):
    """The signature scan accepts any hex-ish text without crashing."""
    findings = scan_hex_for_link_keys(text)
    for finding in findings:
        assert len(finding.link_key.value) == 16


@given(junk)
@settings(max_examples=80)
def test_fuzz_eir(raw):
    eir_local_name(raw)
    eir_uuid16s(raw)


@given(st.text(max_size=400))
@settings(max_examples=60)
def test_fuzz_bt_config_loader(text):
    """Hand-edited (or corrupted) bt_config.conf must not crash the
    stack at boot — worst case, entries are skipped."""
    fs = VirtualFilesystem()
    fs.write_text("/bt_config.conf", text)
    store = BtConfigStore(fs, "/bt_config.conf")
    try:
        store.load()
    except ValueError:
        pass  # malformed addr/key strings inside an otherwise valid shape


@given(st.text(max_size=400))
@settings(max_examples=60)
def test_fuzz_bluez_loader(text):
    fs = VirtualFilesystem()
    fs.write_text("/bonds", text)
    try:
        BluezInfoStore(fs, "/bonds").load()
    except ValueError:
        pass


@given(junk)
@settings(max_examples=60)
def test_fuzz_registry_loader(raw):
    fs = VirtualFilesystem()
    fs.write("/registry", raw)
    records = RegistryStore(fs, "/registry").load()
    for record in records.values():
        assert len(record.link_key.value) == 16
