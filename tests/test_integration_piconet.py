"""Integration: multi-connection piconets.

The paper (§V-B1) leans on the fact that "most mobile devices are
implemented for supporting multiple connections in practice" — the
victim keeps functioning (discovery, pairing, profile traffic) while
the attacker's PLOC link sits idle.  These tests pin that behaviour
generally: one device as the center of several simultaneous links.
"""

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import (
    ANDROID_AUTOMOTIVE_HEAD_UNIT,
    GALAXY_S8,
    LG_VELVET,
    NEXUS_5X_A8,
)


@pytest.fixture
def star_network(world):
    """A phone M connected to three peers at once."""
    m = world.add_device("M", LG_VELVET)
    peers = [
        world.add_device("carkit", ANDROID_AUTOMOTIVE_HEAD_UNIT),
        world.add_device("tablet", GALAXY_S8),
        world.add_device("old-phone", NEXUS_5X_A8),
    ]
    m.power_on()
    for peer in peers:
        peer.power_on()
    # Generous supervision: these tests exercise concurrent links, not
    # idle-link decay (covered in test_controller_connection.py).
    for device in [m] + peers:
        device.controller.supervision_timeout_s = 300.0
    world.run_for(0.5)
    for peer in peers:
        op = m.host.gap.connect(peer.bd_addr)
        world.run_for(5.0)
        assert op.success, peer.name
    return world, m, peers


class TestPiconet:
    def test_three_simultaneous_connections(self, star_network):
        world, m, peers = star_network
        assert len(m.host.gap.connections) == 3
        assert len(m.controller.connections) == 3

    def test_handles_are_distinct(self, star_network):
        world, m, peers = star_network
        handles = {m.host.gap.handle_for(p.bd_addr) for p in peers}
        assert len(handles) == 3

    def test_pairing_one_peer_leaves_others_untouched(self, star_network):
        world, m, peers = star_network
        carkit = peers[0]
        carkit.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(carkit.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert len(m.host.gap.connections) == 3
        assert m.host.security.is_bonded(carkit.bd_addr)
        assert not m.host.security.is_bonded(peers[1].bd_addr)

    def test_parallel_sdp_queries(self, star_network):
        world, m, peers = star_network
        ops = [m.host.sdp.query(p.bd_addr) for p in peers]
        world.run_for(5.0)
        assert all(op.success for op in ops)

    def test_disconnecting_one_leaves_others(self, star_network):
        world, m, peers = star_network
        m.host.gap.disconnect(peers[1].bd_addr)
        world.run_for(2.0)
        assert not m.host.gap.is_connected(peers[1].bd_addr)
        assert m.host.gap.is_connected(peers[0].bd_addr)
        assert m.host.gap.is_connected(peers[2].bd_addr)

    def test_discovery_works_while_connected(self, star_network):
        world, m, peers = star_network
        hidden = world.add_device("newcomer", NEXUS_5X_A8)
        hidden.power_on()
        world.run_for(0.5)
        op = m.host.gap.start_discovery()
        world.run_for(8.0)
        assert op.success
        found = {str(d.addr) for d in op.result}
        assert str(hidden.bd_addr) in found

    def test_independent_encryption_per_link(self, star_network):
        world, m, peers = star_network
        carkit, tablet = peers[0], peers[1]
        for peer in (carkit, tablet):
            peer.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
            pair_op = m.host.gap.pair(peer.bd_addr)
            world.run_for(20.0)
            assert pair_op.success
        enc = m.host.gap.enable_encryption(carkit.bd_addr)
        world.run_for(2.0)
        assert enc.success
        assert m.host.gap.connections[carkit.bd_addr].encrypted
        assert not m.host.gap.connections[tablet.bd_addr].encrypted
        carkit_link = m.controller.link_by_handle(
            m.host.gap.handle_for(carkit.bd_addr)
        )
        tablet_link = m.controller.link_by_handle(
            m.host.gap.handle_for(tablet.bd_addr)
        )
        assert carkit_link.encryption_enabled
        assert not tablet_link.encryption_enabled


class TestPlocCoexistence:
    def test_victim_functions_normally_during_ploc(self):
        """The §V-B1 claim in one test: discovery, a *legitimate*
        profile session and pairing with a third device all proceed
        while the attacker's PLOC link is parked."""
        from repro.attacks.attacker import Attacker
        from repro.devices.catalog import NEXUS_5X_A6

        world = build_world(WorldConfig(seed=44))
        m = world.add_device("M", LG_VELVET)
        c = world.add_device("C", NEXUS_5X_A8)
        other = world.add_device("other", GALAXY_S8)
        a = world.add_device("A", NEXUS_5X_A6)
        for device in (m, c, other):
            device.power_on()
        a.power_on(connectable=False, discoverable=False)
        world.run_for(0.5)

        attacker = Attacker(a)
        attacker.spoof_device(c)
        a.host.gap.connect(m.bd_addr)
        attacker.enter_ploc(10.0)
        world.run_for(2.0)
        assert m.host.gap.is_connected(c.bd_addr)  # the parked link

        # The victim's phone is not bricked:
        discovery = m.host.gap.start_discovery(inquiry_length=2)
        world.run_for(4.0)
        assert discovery.success and len(discovery.result) >= 1

        other.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        pair_op = m.host.gap.pair(other.bd_addr)
        world.run_for(20.0)
        assert pair_op.success  # unrelated pairing unaffected
