"""Controller tests: Secure Simple Pairing end to end."""

import pytest

from repro.core.types import IoCapability, LinkKeyType
from repro.devices.catalog import NEXUS_5X_A8, LG_VELVET, WINDOWS_MS_DRIVER


@pytest.fixture
def pair(device_pair):
    world, m, c = device_pair
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    return world, m, c


class TestSuccessfulPairing:
    def test_pairing_derives_identical_keys(self, pair):
        world, m, c = pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert (
            m.host.security.bond_for(c.bd_addr).link_key
            == c.host.security.bond_for(m.bd_addr).link_key
        )

    def test_displayyesno_pair_uses_authenticated_key(self, pair):
        world, m, c = pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type in (
            LinkKeyType.AUTHENTICATED_COMBINATION_P192,
            LinkKeyType.AUTHENTICATED_COMBINATION_P256,
        )

    def test_noinput_peer_downgrades_to_unauthenticated_key(self, pair):
        world, m, c = pair
        c.host.io_capability = IoCapability.NO_INPUT_NO_OUTPUT
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type in (
            LinkKeyType.UNAUTHENTICATED_COMBINATION_P192,
            LinkKeyType.UNAUTHENTICATED_COMBINATION_P256,
        )

    def test_modern_devices_use_p256_keys(self, pair):
        world, m, c = pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type == LinkKeyType.AUTHENTICATED_COMBINATION_P256

    def test_both_sides_persist_bonds(self, pair):
        world, m, c = pair
        m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert m.host.store.load()[c.bd_addr].link_key is not None
        assert c.host.store.load()[m.bd_addr].link_key is not None

    def test_numeric_comparison_shows_same_number(self, pair):
        """Both DisplayYesNo users see the same 6-digit value."""
        world, m, c = pair
        shown = []
        orig_m = m.user.decide_confirmation
        orig_c = c.user.decide_confirmation

        def spy(orig):
            def wrapper(addr, numeric, now):
                shown.append(numeric)
                return orig(addr, numeric, now)

            return wrapper

        m.user.decide_confirmation = spy(orig_m)
        c.user.decide_confirmation = spy(orig_c)
        m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert len(shown) == 2
        assert shown[0] == shown[1]
        assert shown[0] is not None and 0 <= shown[0] <= 999_999


class TestRejectedPairing:
    def test_responder_rejection_fails_pairing(self, device_pair):
        world, m, c = device_pair  # C's user has NO intent → rejects
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.done and not op.success
        assert not m.host.security.is_bonded(c.bd_addr)
        assert not c.host.security.is_bonded(m.bd_addr)

    def test_initiator_rejection_fails_pairing(self, pair):
        world, m, c = pair
        m.user.clear_intent()
        op = m.host.gap.pair(c.bd_addr, initiated_by_user=False)
        world.run_for(20.0)
        assert op.done and not op.success

    def test_unexpected_attacker_pairing_is_rejected(self, pair):
        """§V-B1: an attacker-initiated pairing pops an unexpected
        dialog on the victim, who rejects it."""
        world, m, c = pair
        # C (attacker stand-in here) pairs at M unexpectedly:
        op = c.host.gap.pair(m.bd_addr)
        world.run_for(20.0)
        assert op.done and not op.success


class TestLegacyP192:
    def test_old_controllers_fall_back_to_p192(self, world):
        m = world.add_device("M", WINDOWS_MS_DRIVER)  # BT 4.0
        c = world.add_device("C", NEXUS_5X_A8)
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        m.user.note_pairing_initiated(c.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        record = m.host.security.bond_for(c.bd_addr)
        assert record.key_type in (
            LinkKeyType.AUTHENTICATED_COMBINATION_P192,
            LinkKeyType.UNAUTHENTICATED_COMBINATION_P192,
        )
        assert (
            record.link_key == c.host.security.bond_for(m.bd_addr).link_key
        )
