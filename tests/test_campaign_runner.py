"""Unit tests for the campaign engine: runner, sharding, cache."""

from __future__ import annotations

import json
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultCache,
    run_trial,
    trial_key,
)
from repro.campaign.runner import CampaignRunner as _RunnerClass
from repro.campaign.trial import _REGISTRY, Scenario, register_scenario


@pytest.fixture
def scratch_scenario():
    """Register a throwaway scenario; unregister on teardown."""
    added = []

    def add(cls):
        scenario = register_scenario(cls)
        added.append(scenario.name)
        return scenario

    yield add
    for name in added:
        _REGISTRY.pop(name, None)


class _OkScenario(Scenario):
    name = "test-ok"
    description = "always succeeds"
    default_params = {"knob": 1}

    def execute(self, world, params, seed):
        world.obs.metrics.counter("test.runs").inc()
        return True, "ok", {"seed": seed, "knob": params["knob"]}


class TestRunTrial:
    def test_single_trial_shape(self, scratch_scenario):
        scratch_scenario(_OkScenario)
        result, metrics = run_trial("test-ok", seed=7)
        assert result.scenario == "test-ok"
        assert result.seed == 7
        assert result.success and result.outcome == "ok"
        assert result.attempts == 1
        assert result.error is None
        assert metrics["counters"]["test.runs"] == 1

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_trial("no-such-scenario", seed=1)

    def test_unknown_param_becomes_error_result(self, scratch_scenario):
        scratch_scenario(_OkScenario)
        result, _ = run_trial("test-ok", seed=1, params={"typo": 3})
        assert not result.success
        assert result.outcome == "error"
        assert "typo" in result.error

    def test_retry_with_fresh_world(self, scratch_scenario):
        class _FlakyScenario(Scenario):
            name = "test-flaky"
            default_params = {}
            worlds = []

            def execute(self, world, params, seed):
                self.worlds.append(world)
                if len(self.worlds) == 1:
                    raise RuntimeError("transient")
                return True, "ok", {}

        scratch_scenario(_FlakyScenario)
        result, _ = run_trial("test-flaky", seed=1, max_attempts=2)
        assert result.success
        assert result.attempts == 2
        # each attempt ran in a brand-new world
        first, second = _FlakyScenario.worlds
        assert first is not second

    def test_exhausted_attempts_become_error_result(self, scratch_scenario):
        class _BrokenScenario(Scenario):
            name = "test-broken"
            default_params = {}

            def execute(self, world, params, seed):
                raise RuntimeError("always broken")

        scratch_scenario(_BrokenScenario)
        result, _ = run_trial("test-broken", seed=1, max_attempts=3)
        assert not result.success
        assert result.outcome == "error"
        assert result.attempts == 3
        assert "always broken" in result.error
        assert "RuntimeError" in result.detail["traceback"]

    def test_timeout_produces_timeout_result(self, scratch_scenario):
        class _SlowScenario(Scenario):
            name = "test-slow"
            default_params = {}

            def execute(self, world, params, seed):
                time.sleep(5.0)
                return True, "ok", {}

        scratch_scenario(_SlowScenario)
        started = time.perf_counter()
        result, _ = run_trial("test-slow", seed=1, timeout_s=0.2)
        assert time.perf_counter() - started < 2.0
        assert not result.success
        assert result.outcome == "timeout"
        assert "TrialTimeout" in result.error


class TestCampaignRunner:
    def test_inline_run_in_seed_order(self, scratch_scenario):
        scratch_scenario(_OkScenario)
        spec = CampaignSpec("test-ok", seeds=[5, 3, 9])
        campaign = CampaignRunner(workers=1).run(spec)
        assert [r.seed for r in campaign.results] == [5, 3, 9]
        assert campaign.trials == 3
        assert campaign.success_rate == 1.0
        assert campaign.errors == []
        assert campaign.metrics.counter_value("test.runs") == 3

    def test_duplicate_seeds_computed_once(self, scratch_scenario):
        scratch_scenario(_OkScenario)
        campaign = CampaignRunner().run(CampaignSpec("test-ok", seeds=[4, 4]))
        assert campaign.trials == 2
        assert [r.seed for r in campaign.results] == [4, 4]

    def test_errors_do_not_kill_the_campaign(self, scratch_scenario):
        class _HalfBroken(Scenario):
            name = "test-half-broken"
            default_params = {}

            def execute(self, world, params, seed):
                if seed % 2:
                    raise RuntimeError(f"seed {seed}")
                return True, "ok", {}

        scratch_scenario(_HalfBroken)
        spec = CampaignSpec("test-half-broken", seeds=range(4))
        campaign = CampaignRunner(max_attempts=1).run(spec)
        assert campaign.trials == 4
        assert len(campaign.errors) == 2
        assert campaign.success_rate == 0.5

    def test_progress_callback_sees_every_trial(self, scratch_scenario):
        scratch_scenario(_OkScenario)
        calls = []
        runner = CampaignRunner(progress=lambda done, total: calls.append((done, total)))
        runner.run(CampaignSpec("test-ok", seeds=range(3)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_multiworker_matches_inline(self):
        """Sharding across processes must not change any outcome."""
        spec = CampaignSpec(
            "baseline-race",
            seeds=range(2600, 2606),
            params={"m_spec": "galaxy_s8_android9"},
        )
        inline = CampaignRunner(workers=1).run(spec)
        sharded = CampaignRunner(workers=2).run(spec)
        key = lambda r: (r.seed, r.success, r.outcome, r.detail)  # noqa: E731
        assert [key(r) for r in inline.results] == [key(r) for r in sharded.results]
        assert (
            inline.metrics.snapshot()["counters"]
            == sharded.metrics.snapshot()["counters"]
        )

    def test_round_robin_sharding_balances(self):
        shards = _RunnerClass._shards(list(range(7)), 3)
        assert shards == [[0, 3, 6], [1, 4], [2, 5]]
        assert _RunnerClass._shards([1], 4) == [[1]]


class TestResultCache:
    def test_cold_then_warm(self, tmp_path, scratch_scenario):
        scratch_scenario(_OkScenario)
        spec = CampaignSpec("test-ok", seeds=range(4))
        cache = ResultCache(tmp_path / "cache")

        cold = CampaignRunner(cache=cache).run(spec)
        assert (cold.cache_hits, cold.cache_misses) == (0, 4)
        assert all(not r.cached for r in cold.results)

        warm = CampaignRunner(cache=cache).run(spec)
        assert (warm.cache_hits, warm.cache_misses) == (4, 0)
        assert all(r.cached for r in warm.results)
        key = lambda r: (r.seed, r.success, r.outcome, r.detail)  # noqa: E731
        assert [key(r) for r in cold.results] == [key(r) for r in warm.results]
        assert cold.metrics.snapshot() == warm.metrics.snapshot()

    def test_partial_sweep_is_incremental(self, tmp_path, scratch_scenario):
        scratch_scenario(_OkScenario)
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache).run(CampaignSpec("test-ok", seeds=range(3)))
        widened = CampaignRunner(cache=cache).run(
            CampaignSpec("test-ok", seeds=range(5))
        )
        assert (widened.cache_hits, widened.cache_misses) == (3, 2)
        assert [r.cached for r in widened.results] == [
            True, True, True, False, False,
        ]

    def test_param_change_invalidates(self, tmp_path, scratch_scenario):
        scratch_scenario(_OkScenario)
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache).run(CampaignSpec("test-ok", seeds=[1]))
        changed = CampaignRunner(cache=cache).run(
            CampaignSpec("test-ok", seeds=[1], params={"knob": 2})
        )
        assert (changed.cache_hits, changed.cache_misses) == (0, 1)
        assert changed.results[0].detail["knob"] == 2

    def test_code_version_is_part_of_the_key(self):
        base = trial_key("s", 1, {}, version="aaaa")
        assert base == trial_key("s", 1, {}, version="aaaa")
        assert base != trial_key("s", 1, {}, version="bbbb")
        assert base != trial_key("s", 2, {}, version="aaaa")
        assert base != trial_key("other", 1, {}, version="aaaa")
        assert base != trial_key("s", 1, {"x": 1}, version="aaaa")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = trial_key("s", 1, {}, version="v")
        cache.put(key, {"result": {}, "metrics": {}})
        path = cache._path(key)
        path.write_text("not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_format_bump_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = trial_key("s", 1, {}, version="v")
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"format": 0, "payload": {}}), encoding="utf-8"
        )
        assert cache.get(key) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            cache.put(trial_key("s", seed, {}, version="v"), {"seed": seed})
        assert cache.clear() == 3
        assert cache.get(trial_key("s", 0, {}, version="v")) is None

    def test_no_cache_reports_zero_stats(self, scratch_scenario):
        scratch_scenario(_OkScenario)
        campaign = CampaignRunner().run(CampaignSpec("test-ok", seeds=[1]))
        assert (campaign.cache_hits, campaign.cache_misses) == (0, 0)
        assert not campaign.results[0].cached


class TestTimeLimit:
    """The wall-clock guard must work with and without setitimer."""

    def test_setitimer_armed_and_disarmed(self):
        import signal

        from repro.campaign.runner import _TimeLimit

        calls = []
        original = signal.setitimer

        def spy(which, seconds):
            calls.append((which, seconds))
            return original(which, seconds)

        signal.setitimer = spy
        try:
            with _TimeLimit(5.0) as limit:
                assert limit.armed
        finally:
            signal.setitimer = original
        assert calls == [
            (signal.ITIMER_REAL, 5.0),
            (signal.ITIMER_REAL, 0),
        ]

    def test_alarm_fallback_rounds_subsecond_up(self, monkeypatch):
        """Without setitimer, signal.alarm must arm a >=1s deadline —
        int truncation would turn a 0.5s budget into no guard at all."""
        import signal

        from repro.campaign.runner import _TimeLimit

        armed = []
        monkeypatch.delattr(signal, "setitimer")
        monkeypatch.setattr(signal, "alarm", armed.append)
        with _TimeLimit(0.5) as limit:
            assert limit.armed
            assert armed == [1]
        assert armed == [1, 0]  # symmetric disarm on exit

    def test_subsecond_timeout_fires(self):
        from repro.campaign.runner import TrialTimeout, _TimeLimit

        with pytest.raises(TrialTimeout):
            with _TimeLimit(0.2):
                deadline = time.time() + 5
                while time.time() < deadline:
                    pass

    def test_none_timeout_never_arms(self):
        from repro.campaign.runner import _TimeLimit

        with _TimeLimit(None) as limit:
            assert not limit.armed
