"""The LE vertical slice: advertising, connection, SMP pairing, CCM.

Covers the :mod:`repro.ble` layer end to end on real catalog devices —
including the satellite requirement that a garbled or blackholed
CONNECT_IND cannot hang a trial: the connect guard mirrors
``Gap.CONNECT_TIMEOUT`` and fails the operation instead.
"""

from __future__ import annotations

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.ble.smp import JUST_WORKS, NUMERIC_COMPARISON
from repro.ble.stack import BleStack
from repro.core.types import BdAddr
from repro.crypto.smp import bredr_link_key_from_le_ltk
from repro.devices.catalog import spec_by_key
from repro.faults import FaultPlan, FaultSpec
from repro.hci.constants import ErrorCode


def _le_world(seed=11, central="galaxy_s21_dual", peripheral="nexus_5x_dual",
              fault_plan=None):
    world = build_world(WorldConfig(seed=seed, fault_plan=fault_plan))
    c = world.add_device("central", spec_by_key(central))
    p = world.add_device("peripheral", spec_by_key(peripheral))
    c.power_on()
    p.power_on()
    world.run_for(1.0)
    return world, c, p


def _connect(world, c, p):
    operation = c.ble.connect(p.bd_addr)
    world.run_for(5.0)
    assert operation.success, f"LE connect failed: {operation.status}"
    return operation.result


class TestAdvertisingAndConnection:
    def test_peripheral_advertisements_are_scanned(self):
        world, c, p = _le_world()
        c.ble.le_scan_enabled = True
        world.run_for(3.0)
        seen = {addr for _t, addr, _payload in c.ble.observed_advertisements}
        assert p.bd_addr in seen

    def test_connect_creates_a_link_both_sides_see(self):
        world, c, p = _le_world()
        conn = _connect(world, c, p)
        assert conn.role == "central"
        peer_conn = p.ble.connection_for(c.bd_addr)
        assert peer_conn is not None and peer_conn.role == "peripheral"

    def test_connect_to_absent_address_times_out(self):
        world, c, p = _le_world()
        nobody = BdAddr(bytes(range(6)))
        operation = c.ble.connect(nobody)
        world.run_for(BleStack.LE_CONNECT_TIMEOUT + 1.0)
        assert operation.done and not operation.success
        assert operation.status == ErrorCode.CONNECTION_TIMEOUT

    def test_blackholed_connect_fails_instead_of_hanging(self):
        # A phy blackout eats the CONNECT_IND: the guard must fire.
        plan = FaultPlan(
            specs=(
                FaultSpec("phy.blackout", mode="window", start_s=0.0),
            )
        )
        world, c, p = _le_world(fault_plan=plan)
        operation = c.ble.connect(p.bd_addr)
        world.run_for(BleStack.LE_CONNECT_TIMEOUT + 1.0)
        assert operation.done and not operation.success
        assert operation.status == ErrorCode.CONNECTION_TIMEOUT


class TestPairing:
    def test_display_devices_use_numeric_comparison(self):
        world, c, p = _le_world()
        _connect(world, c, p)
        pairing = c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        assert pairing.success
        assert pairing.result == NUMERIC_COMPARISON

    def test_nino_peripheral_pairs_just_works(self):
        world, c, p = _le_world(peripheral="generic_fitness_tracker")
        _connect(world, c, p)
        pairing = c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        assert pairing.success
        assert pairing.result == JUST_WORKS

    def test_both_sides_store_the_same_ltk(self):
        world, c, p = _le_world()
        _connect(world, c, p)
        c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        ltk_c = c.ble.security.le_ltk_for(p.bd_addr)
        ltk_p = p.ble.security.le_ltk_for(c.bd_addr)
        assert ltk_c is not None and ltk_c == ltk_p

    def test_rejected_numeric_comparison_fails_pairing(self):
        world, c, p = _le_world()
        p.ble.numeric_comparison_autoconfirm = False
        _connect(world, c, p)
        pairing = c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        assert pairing.done and not pairing.success


class TestCtkd:
    def test_dual_mode_pairing_derives_a_bredr_key(self):
        world, c, p = _le_world()
        _connect(world, c, p)
        c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        record = c.ble.security.bond_for(p.bd_addr)
        assert record is not None and record.link_key is not None
        ltk = c.ble.security.le_ltk_for(p.bd_addr)
        assert record.link_key.value == bredr_link_key_from_le_ltk(
            ltk.value
        )
        # numeric comparison -> authenticated P-256 combination key
        assert record.key_type == 0x08

    def test_just_works_yields_unauthenticated_key_type(self):
        world, c, p = _le_world(peripheral="generic_smart_watch")
        p.ble.numeric_comparison_autoconfirm = True
        c.ble.io_capability = spec_by_key(
            "generic_fitness_tracker"
        ).io_capability  # force NINO on one side -> Just Works
        _connect(world, c, p)
        pairing = c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        assert pairing.success and pairing.result == JUST_WORKS
        record = c.ble.security.bond_for(p.bd_addr)
        assert record is not None and record.key_type == 0x07

    def test_le_only_peer_does_not_negotiate_ctkd(self):
        world, c, p = _le_world(peripheral="generic_earbuds")
        _connect(world, c, p)
        c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        assert c.ble.security.le_ltk_for(p.bd_addr) is not None
        record = c.ble.security.bond_for(p.bd_addr)
        assert record is None or record.link_key is None


class TestEncryption:
    def _paired(self, **kwargs):
        world, c, p = _le_world(**kwargs)
        _connect(world, c, p)
        c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        return world, c, p

    def test_encrypted_data_flows_both_ways(self):
        world, c, p = self._paired()
        enc = c.ble.start_encryption(p.bd_addr)
        world.run_for(2.0)
        assert enc.success
        assert c.ble.send_data(p.bd_addr, b"from central")
        assert p.ble.send_data(c.bd_addr, b"from peripheral")
        world.run_for(1.0)
        assert p.ble.received_payloads(c.bd_addr) == [b"from central"]
        assert c.ble.received_payloads(p.bd_addr) == [b"from peripheral"]

    def test_encryption_without_a_bond_fails(self):
        world, c, p = _le_world()
        _connect(world, c, p)
        enc = c.ble.start_encryption(p.bd_addr)
        world.run_for(2.0)
        assert enc.done and not enc.success
        assert enc.status == ErrorCode.PIN_OR_KEY_MISSING

    def test_reconnect_reuses_the_stored_ltk(self):
        world, c, p = self._paired()
        c.ble.disconnect(p.bd_addr)
        world.run_for(1.0)
        assert c.ble.connection_for(p.bd_addr) is None
        _connect(world, c, p)
        enc = c.ble.start_encryption(p.bd_addr)
        world.run_for(2.0)
        assert enc.success


class TestDeviceIntegration:
    def test_le_only_device_has_no_bredr_host_activity(self):
        world = build_world(WorldConfig(seed=3))
        tracker = world.add_device(
            "tracker", spec_by_key("generic_fitness_tracker")
        )
        assert tracker.ble is not None
        tracker.power_on()
        world.run_for(2.0)
        # the BR/EDR host was never initialised; LE advertising runs
        assert not tracker.controller.page_scan_enabled
        assert not tracker.controller.inquiry_scan_enabled
        assert len(tracker.ble.adv_payload.name) > 0
        assert tracker.ble.powered

    def test_classic_device_has_no_ble_stack(self):
        world = build_world(WorldConfig(seed=3))
        phone = world.add_device("phone", spec_by_key("nexus_5x_android8"))
        assert phone.ble is None


@pytest.mark.parametrize("seed", [1, 2])
def test_pairing_is_deterministic_per_seed(seed):
    def ltk_for(run_seed):
        world, c, p = _le_world(seed=run_seed)
        _connect(world, c, p)
        c.ble.pair(p.bd_addr)
        world.run_for(5.0)
        return c.ble.security.le_ltk_for(p.bd_addr)

    assert ltk_for(seed) == ltk_for(seed)
    assert ltk_for(seed) != ltk_for(seed + 100)
