"""Prometheus text exposition: golden rendering plus GET /metrics."""

from __future__ import annotations

import asyncio

import pytest

from repro.campaign.captures import attack_capture
from repro.detect.feed import DetectionEvent
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecord
from repro.obs.prom import (
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)
from repro.service import client as service_client
from repro.service.server import IngestServer
from repro.service.session import SessionManager


class TestNamesAndLabels:
    def test_sanitize_dots_and_namespace(self):
        assert (
            sanitize_metric_name("service.ingest_latency_s")
            == "blap_service_ingest_latency_s"
        )
        assert sanitize_metric_name("a b/c", namespace="") == "a_b_c"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def _registry(build):
    registry = MetricsRegistry()
    build(registry)
    return registry.snapshot()


class TestRenderGolden:
    def test_counter_gauge_exposition(self):
        snapshot = _registry(lambda r: (
            r.counter("service.events").inc(7),
            r.gauge("service.sessions_active").set(3),
        ))
        text = render_prometheus([({}, snapshot)])
        assert text == (
            "# TYPE blap_service_events_total counter\n"
            "blap_service_events_total 7\n"
            "# TYPE blap_service_sessions_active gauge\n"
            "blap_service_sessions_active 3\n"
        )

    def test_histogram_buckets_are_cumulative_with_quantiles(self):
        def build(r):
            hist = r.histogram("lat_s")
            for value in (0.0005, 0.002, 0.002, 5.0):
                hist.observe(value)

        text = render_prometheus([({}, _registry(build))])
        lines = text.splitlines()
        buckets = [ln for ln in lines if "_bucket" in ln]
        # per-bin snapshot folded to cumulative le-series
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith('blap_lat_s_bucket{le="+Inf"} 4'[:30])
        assert counts[-1] == 4
        assert "blap_lat_s_count 4" in lines
        assert any(ln.startswith("blap_lat_s_sum ") for ln in lines)
        for q in ("0.5", "0.9", "0.99"):
            assert any(
                ln.startswith(f'blap_lat_s_quantile{{quantile="{q}"}} ')
                for ln in lines
            )
        # one TYPE line per family, histogram + companion gauge
        assert lines.count("# TYPE blap_lat_s histogram") == 1
        assert lines.count("# TYPE blap_lat_s_quantile gauge") == 1

    def test_tenant_labels_and_merged_coexist(self):
        merged = _registry(lambda r: r.counter("service.events").inc(5))
        acme = _registry(lambda r: r.counter("service.events").inc(2))
        text = render_prometheus([({}, merged), ({"tenant": "acme"}, acme)])
        assert "blap_service_events_total 5" in text
        assert 'blap_service_events_total{tenant="acme"} 2' in text
        assert text.count("# TYPE blap_service_events_total counter") == 1

    def test_label_values_escaped_in_series(self):
        snap = _registry(lambda r: r.counter("c").inc())
        text = render_prometheus([({"tenant": 'we"ird\\t'}, snap)])
        assert 'tenant="we\\"ird\\\\t"' in text

    def test_deterministic_rendering(self):
        snap = _registry(lambda r: (
            r.counter("b").inc(),
            r.counter("a").inc(),
            r.histogram("h_s").observe(0.1),
        ))
        groups = [({}, snap), ({"tenant": "t"}, snap)]
        assert render_prometheus(groups) == render_prometheus(groups)

    def test_empty_groups_render_empty(self):
        assert render_prometheus([]) == ""
        assert render_prometheus([({}, MetricsRegistry().snapshot())]) == ""


def _trace_event(seq):
    record = TraceRecord(
        time=0.1 * seq, source="M", category="ble-enc", message="",
        detail={"peer": "aa"},
    )
    return DetectionEvent(
        time=0.1 * seq, seq=seq, monitor="M", channel="trace",
        kind="ble-enc", record=record,
    )


class TestSessionManagerSurface:
    def test_ingest_latency_histogram_per_tenant(self):
        ticks = iter(range(1000))
        manager = SessionManager(clock=lambda: float(next(ticks)))
        session = manager.open(tenant="acme")
        for seq in range(3):
            session.ingest(_trace_event(seq))
        text = manager.prometheus_metrics()
        assert (
            'blap_service_ingest_latency_s_count{tenant="acme"} 3' in text
        )
        assert (
            'blap_service_ingest_latency_s_quantile{tenant="acme",'
            'quantile="0.5"}' in text
        )
        # injected clock drives latency: deterministic 1s per event
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith('blap_service_ingest_latency_s_sum{')
        )
        assert float(line.rsplit(" ", 1)[1]) == pytest.approx(3.0)

    def test_dropped_and_late_counters_exposed(self):
        manager = SessionManager(clock=lambda: 0.0)
        manager.open(tenant="acme")
        text = manager.prometheus_metrics()
        assert 'blap_service_dropped_events_total{tenant="acme"} 0' in text
        assert 'blap_service_late_events_total{tenant="acme"} 0' in text


async def _fetch_text(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = head.decode("latin-1").lower()
    return status, headers, body.decode("utf-8")


class TestMetricsEndpoint:
    def test_get_metrics_end_to_end(self):
        capture = attack_capture()

        async def check(server):
            await service_client.request(
                server.host, server.port, "POST",
                "/api/captures?tenant=acme", capture,
            )
            return await _fetch_text(server.host, server.port, "/metrics")

        async def main():
            async with IngestServer() as server:
                return await check(server)

        status, headers, body = asyncio.run(main())
        assert status == 200
        assert "text/plain; version=0.0.4" in headers
        assert "# TYPE blap_service_events_total counter" in body
        assert 'blap_service_events_total{tenant="acme"}' in body
        assert 'blap_service_ingest_latency_s_quantile{tenant="acme",' \
            'quantile="0.99"}' in body
        assert 'blap_service_dropped_events_total{tenant="acme"} 0' in body
        assert body.endswith("\n")
