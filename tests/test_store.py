"""The queryable run store: round-trips, ingest, sinks, server, and
the ``blap report`` byte-identity pin.

The contract under test is the PR's acceptance line: a campaign run
ingested into the store can be queried back by time-range / device /
source / span-type through the typed query API and the ``blap serve``
JSON API, and a store-backed report renders byte-identically to the
pre-store JSONL path.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign.telemetry import CampaignTelemetry, read_telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_markdown, telemetry_from_store
from repro.obs.timeline import (
    TimelineEvent,
    events_from_jsonl,
    export_jsonl,
    write_jsonl,
)
from repro.store import (
    AlertQuery,
    EventQuery,
    RunStore,
    StoreTelemetrySink,
    TelemetryQuery,
    alert_from_event,
    ingest_run_dir,
    query_from_params,
    store_events,
)
from repro.store.server import StoreServer

RUN = "run-a"


def _events():
    """A small mixed timeline: traces, spans, and one detector alert."""
    return [
        TimelineEvent(0.5, 1, "M", "phy-page", "page tx"),
        TimelineEvent(1.0, 2, "A", "hci", "connect request"),
        TimelineEvent(1.5, 3, "M", "span", "pairing", duration=0.75),
        TimelineEvent(2.0, 4, "C", "hci", "link key stored"),
        TimelineEvent(
            2.5,
            5,
            "detect",
            "alert",
            "[page-blocking] signature on aa:bb",
            detail={"score": 0.9, "peer": "aa:bb", "monitor": "m1"},
        ),
        TimelineEvent(3.0, 6, "M", "span", "inquiry", duration=0.2),
    ]


def _records():
    return [
        {
            "scenario": "baseline-race",
            "seed": seed,
            "success": seed % 2 == 0,
            "outcome": "mitm" if seed % 2 == 0 else "lost-race",
            "attempts": 1,
            "wall_time_s": 0.01 * (seed + 1),
            "sim_time_s": 5.0,
            "cached": seed == 3,
            "faulted": False,
            **({"error": "boom"} if seed == 5 else {}),
        }
        for seed in range(6)
    ]


@pytest.fixture()
def store():
    with RunStore(":memory:") as handle:
        yield handle


@pytest.fixture()
def run_dir(tmp_path):
    """A realistic ``runs/<id>/`` directory: telemetry via the real
    CampaignTelemetry writer plus an exported timeline artifact."""
    telemetry = CampaignTelemetry(run_id=RUN, root=tmp_path, mode="off")
    telemetry.begin_campaign("baseline-race", total=6)
    for record in _records():
        telemetry.record(record)
    telemetry.close()
    with open(
        telemetry.run_dir / "timeline.jsonl", "w", encoding="utf-8"
    ) as fp:
        write_jsonl(_events(), fp)
    return telemetry.run_dir


class TestEventRoundTrip:
    def test_events_come_back_in_time_seq_order(self, store):
        store.add_events(RUN, reversed(_events()), scenario="s", seed=7)
        out = store.query_events(EventQuery(run_id=RUN))
        assert [e.seq for e in out] == [1, 2, 3, 4, 5, 6]
        assert {e.scenario for e in out} == {"s"}
        assert {e.seed for e in out} == {7}

    def test_time_range_is_inclusive_exclusive(self, store):
        store.add_events(RUN, _events())
        out = store.query_events(
            EventQuery(run_id=RUN, since=1.0, until=2.5)
        )
        assert [e.time for e in out] == [1.0, 1.5, 2.0]
        assert store.time_range(RUN) == (0.5, 3.0)

    def test_source_and_category_filters(self, store):
        store.add_events(RUN, _events())
        assert len(
            store.query_events(EventQuery(run_id=RUN, sources=("M",)))
        ) == 3
        assert len(
            store.query_events(
                EventQuery(run_id=RUN, sources=("A", "C"))
            )
        ) == 2
        assert len(
            store.query_events(EventQuery(run_id=RUN, categories=("hci",)))
        ) == 2

    def test_span_type_filter_implies_kind_span(self, store):
        store.add_events(RUN, _events())
        out = store.query_events(
            EventQuery(run_id=RUN, span_type="pairing")
        )
        assert len(out) == 1
        assert out[0].kind == "span"
        assert out[0].duration == pytest.approx(0.75)
        assert len(
            store.query_events(EventQuery(run_id=RUN, kind="span"))
        ) == 2

    def test_pagination_is_stable(self, store):
        store.add_events(RUN, _events())
        first = store.query_events(EventQuery(run_id=RUN, limit=2))
        second = store.query_events(
            EventQuery(run_id=RUN, limit=2, offset=2)
        )
        rest = store.query_events(
            EventQuery(run_id=RUN, limit=-1, offset=4)
        )
        assert [e.seq for e in first + second + rest] == [1, 2, 3, 4, 5, 6]

    def test_count_and_group_by(self, store):
        store.add_events(RUN, _events())
        store.add_events("run-b", _events()[:2])
        query = EventQuery(run_id=RUN)
        assert store.count_events(query) == 6
        assert store.count_events(query, group_by="source") == {
            "A": 1,
            "C": 1,
            "M": 3,
            "detect": 1,
        }
        with pytest.raises(ValueError):
            store.count_events(query, group_by="message")

    def test_detail_survives_the_round_trip(self, store):
        store.add_events(RUN, _events())
        alert = store.query_events(
            EventQuery(run_id=RUN, categories=("alert",))
        )[0]
        assert alert.detail["peer"] == repr("aa:bb")


class TestAlertMirroring:
    def test_store_events_mirrors_alert_rows(self, store):
        counts = store_events(store, RUN, _events(), seed=3)
        assert counts == {"events": 6, "alerts": 1}
        alerts = store.query_alerts(AlertQuery(run_id=RUN))
        assert len(alerts) == 1
        assert alerts[0]["detector"] == "page-blocking"
        assert alerts[0]["score"] == pytest.approx(0.9)
        assert alerts[0]["peer"] == "aa:bb"
        assert alerts[0]["message"] == "signature on aa:bb"
        assert alerts[0]["seed"] == 3

    def test_alert_filters(self, store):
        events = _events() + [
            TimelineEvent(
                4.0,
                7,
                "detect",
                "alert",
                "[surveillance] repeat inquiries",
                detail={"score": 0.4},
            )
        ]
        store_events(store, RUN, events)
        assert len(
            store.query_alerts(AlertQuery(run_id=RUN, min_score=0.5))
        ) == 1
        assert len(
            store.query_alerts(
                AlertQuery(run_id=RUN, detectors=("surveillance",))
            )
        ) == 1
        assert len(
            store.query_alerts(AlertQuery(run_id=RUN, until=3.0))
        ) == 1

    def test_non_alert_events_map_to_none(self):
        assert alert_from_event({"source": "M", "category": "hci"}) is None


class TestTelemetryRoundTrip:
    def test_records_come_back_verbatim_in_order(self, store):
        records = _records()
        store.add_telemetry(RUN, records)
        assert store.query_telemetry(TelemetryQuery(run_id=RUN)) == records

    def test_filters(self, store):
        store.add_telemetry(RUN, _records())
        assert len(
            store.query_telemetry(
                TelemetryQuery(run_id=RUN, success=True)
            )
        ) == 3
        assert len(
            store.query_telemetry(TelemetryQuery(run_id=RUN, cached=True))
        ) == 1
        errored = store.query_telemetry(
            TelemetryQuery(run_id=RUN, errors_only=True)
        )
        assert [r["seed"] for r in errored] == [5]
        assert len(
            store.query_telemetry(
                TelemetryQuery(run_id=RUN, scenario="baseline-race", seed=2)
            )
        ) == 1

    def test_summary_rollup(self, store):
        store.add_telemetry(RUN, _records())
        rollup = store.telemetry_summary(RUN)
        assert rollup["trials"] == 6
        assert rollup["successes"] == 3
        assert rollup["cached"] == 1
        assert rollup["errors"] == 1


class TestQueryFromParams:
    def test_coerces_strings_by_annotation(self):
        query = query_from_params(
            EventQuery,
            {
                "run_id": RUN,
                "since": "1.5",
                "sources": "M,phy",
                "seed": "3",
                "limit": "10",
            },
        )
        assert query.since == 1.5
        assert query.sources == ("M", "phy")
        assert query.seed == 3
        assert query.limit == 10

    def test_unknown_filter_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            query_from_params(EventQuery, {"bogus": "1"})


class TestIngest:
    def test_round_trip_matches_the_artifacts(self, store, run_dir):
        counts = ingest_run_dir(store, run_dir)
        assert counts == {"telemetry": 6, "events": 6, "alerts": 1}
        assert store.query_telemetry(
            TelemetryQuery(run_id=RUN)
        ) == read_telemetry(run_dir)
        info = store.run(RUN)
        assert info is not None and info.trials == 6 and info.errors == 1

    def test_reingest_is_idempotent(self, store, run_dir):
        ingest_run_dir(store, run_dir)
        ingest_run_dir(store, run_dir)
        assert store.count_events(EventQuery(run_id=RUN)) == 6
        assert len(store.query_telemetry(TelemetryQuery(run_id=RUN))) == 6
        assert len(store.runs()) == 1

    def test_jsonl_export_parses_back_identically(self):
        events = _events()
        parsed = list(
            events_from_jsonl(export_jsonl(events).splitlines())
        )
        assert len(parsed) == len(events)
        assert [p["time"] for p in parsed] == [e.time for e in events]
        assert [p["kind"] for p in parsed] == [e.kind for e in events]


class TestStoreTelemetrySink:
    def test_campaign_telemetry_tees_into_the_store(self, tmp_path, store):
        sink = StoreTelemetrySink(store, RUN)
        telemetry = CampaignTelemetry(
            run_id=RUN, root=tmp_path, mode="off", sink=sink
        )
        telemetry.begin_campaign("baseline-race", total=6)
        for record in _records():
            telemetry.record(record)
        telemetry.close()
        # the store saw every record the JSONL did, live
        assert store.query_telemetry(
            TelemetryQuery(run_id=RUN)
        ) == read_telemetry(telemetry.run_dir)
        info = store.run(RUN)
        assert info is not None
        assert info.trials == 6
        assert info.summary["campaigns"][0]["scenario"] == "baseline-race"


class TestServer:
    @pytest.fixture()
    def base_url(self, store, run_dir):
        ingest_run_dir(store, run_dir)
        server = StoreServer(store, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            yield server.url
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def _get(self, url):
        with urllib.request.urlopen(url) as response:
            return json.loads(response.read())

    def test_runs_listing(self, base_url):
        payload = self._get(base_url + "/api/runs")
        assert payload["count"] == 1
        entry = payload["data"][0]
        assert entry["run_id"] == RUN
        assert entry["events"] == 6
        assert entry["telemetry"]["trials"] == 6

    def test_time_range_and_source_query(self, base_url):
        payload = self._get(
            base_url
            + f"/api/runs/{RUN}/events?since=1&until=2.5&source=M,A"
        )
        assert [e["time"] for e in payload["data"]] == [1.0, 1.5]
        assert payload["total"] == 2

    def test_span_type_query(self, base_url):
        payload = self._get(
            base_url + f"/api/runs/{RUN}/events?span_type=inquiry"
        )
        assert payload["count"] == 1
        assert payload["data"][0]["duration"] == pytest.approx(0.2)

    def test_alerts_endpoint(self, base_url):
        payload = self._get(
            base_url + f"/api/runs/{RUN}/alerts?min_score=0.5"
        )
        assert payload["count"] == 1
        assert payload["data"][0]["detector"] == "page-blocking"

    def test_telemetry_endpoint(self, base_url):
        payload = self._get(
            base_url + f"/api/runs/{RUN}/telemetry?success=true"
        )
        assert payload["count"] == 3

    def test_unknown_filter_is_a_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(base_url + f"/api/runs/{RUN}/events?bogus=1")
        assert excinfo.value.code == 400

    def test_unknown_run_is_a_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(base_url + "/api/runs/nope")
        assert excinfo.value.code == 404

    def test_html_views_render(self, base_url):
        with urllib.request.urlopen(base_url + "/") as response:
            index = response.read().decode()
        assert RUN in index
        with urllib.request.urlopen(
            base_url + f"/run/{RUN}"
        ) as response:
            page = response.read().decode()
        assert "page-blocking" in page and "Timeline" in page


def _report_data():
    return {
        "trials": 6,
        "table1": [],
        "table2": [],
        "scenarios": {
            "baseline-race": {"trials": 6, "successes": 3, "errors": 1}
        },
        "metrics": MetricsRegistry().snapshot(),
    }


class TestReportFromStore:
    def test_store_report_is_byte_identical_to_jsonl_path(self, run_dir):
        """The golden pin: telemetry read through the store renders the
        exact same report bytes as the pre-store ``read_telemetry``
        path did."""
        data = _report_data()
        via_jsonl = render_markdown(
            data, telemetry=read_telemetry(run_dir)
        )
        via_store = render_markdown(
            data, telemetry=telemetry_from_store(run_dir=run_dir)
        )
        assert "## Run telemetry" in via_store
        assert via_store == via_jsonl

    def test_file_store_path_matches_run_dir_path(self, tmp_path, run_dir):
        db = tmp_path / "store.db"
        with RunStore(db) as store:
            ingest_run_dir(store, run_dir)
        data = _report_data()
        via_db = render_markdown(
            data,
            telemetry=telemetry_from_store(store_path=db, run_id=RUN),
        )
        via_dir = render_markdown(
            data, telemetry=telemetry_from_store(run_dir=run_dir)
        )
        assert via_db == via_dir


class TestCli:
    def test_ingest_then_query_events_json(self, tmp_path, run_dir, capsys):
        from repro.cli import main

        db = str(tmp_path / "store.db")
        assert main(["store", "ingest", str(run_dir), "--db", db]) == 0
        capsys.readouterr()
        assert main(
            [
                "query",
                "events",
                "--db",
                db,
                "--run",
                RUN,
                "--since",
                "1",
                "--until",
                "2.5",
                "--source",
                "M",
                "--json",
            ]
        ) == 0
        events = json.loads(capsys.readouterr().out)
        assert [e["time"] for e in events] == [1.5]

    def test_query_alerts_and_runs(self, tmp_path, run_dir, capsys):
        from repro.cli import main

        db = str(tmp_path / "store.db")
        main(["store", "ingest", str(run_dir), "--db", db])
        capsys.readouterr()
        assert main(
            ["query", "alerts", "--db", db, "--run", RUN, "--json"]
        ) == 0
        alerts = json.loads(capsys.readouterr().out)
        assert [a["detector"] for a in alerts] == ["page-blocking"]
        assert main(["query", "runs", "--db", db, "--json"]) == 0
        runs = json.loads(capsys.readouterr().out)
        assert runs[0]["run_id"] == RUN and runs[0]["events"] == 6

    def test_group_by_count(self, tmp_path, run_dir, capsys):
        from repro.cli import main

        db = str(tmp_path / "store.db")
        main(["store", "ingest", str(run_dir), "--db", db])
        capsys.readouterr()
        assert main(
            [
                "query",
                "events",
                "--db",
                db,
                "--run",
                RUN,
                "--group-by",
                "kind",
                "--json",
            ]
        ) == 0
        counts = json.loads(capsys.readouterr().out)
        assert counts == {"span": 2, "trace": 4}

    def test_ingest_without_dirs_discovers_runs(
        self, tmp_path, run_dir, capsys, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.setenv("BLAP_RUNS_DIR", str(run_dir.parent))
        db = str(tmp_path / "store.db")
        assert main(["store", "ingest", "--db", db]) == 0
        out = capsys.readouterr().out
        assert f"{RUN}: 6 telemetry, 6 events, 1 alerts" in out
