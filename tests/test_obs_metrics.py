"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_global_registry,
)


class TestCounter:
    def test_inc(self):
        counter = MetricsRegistry().counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_tracks_high_water_mark(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        gauge.set(2)
        assert gauge.max_value == 7


class TestHistogram:
    def test_observe_fills_buckets(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)  # overflow
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)
        hist.flush()  # observations buffer until a read or flush
        assert hist.bucket_counts == [1, 1, 1]

    def test_bucket_boundary_is_inclusive(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.1)
        hist.flush()
        assert hist.bucket_counts == [1, 0, 0]

    def test_pending_buffer_folds_at_cap(self):
        from repro.obs.metrics import PENDING_CAP

        hist = Histogram("lat", buckets=(0.1,))
        for _ in range(PENDING_CAP):
            hist.observe(0.05)
        # the cap-triggered fold already ran — no reads needed
        assert hist.bucket_counts == [PENDING_CAP, 0]
        assert len(hist._pending) == 0
        assert hist.count == PENDING_CAP

    def test_quantile_tracks_observations_not_bucket_bounds(self):
        """The digest resolves quantiles ~1.6% relative, regardless of
        how coarse the rendering buckets are; min/max are exact."""
        hist = Histogram("lat", buckets=(0.1, 1.0))
        for _ in range(9):
            hist.observe(0.05)
        hist.observe(0.5)
        assert hist.quantile(0.5) == pytest.approx(0.05, rel=0.02)
        assert hist.quantile(0.0) == 0.05
        assert hist.quantile(1.0) == 0.5

    def test_quantile_empty_and_range(self):
        hist = Histogram("lat")
        assert hist.quantile(0.9) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.1))


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_value_defaults_to_zero(self):
        assert MetricsRegistry().counter_value("never.touched") == 0

    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_sorted_and_cumulative_shape(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.histogram("h", buckets=(0.1,)).observe(0.05)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 2, "b": 1}
        assert snap["histograms"]["h"]["buckets"] == {"0.1": 1, "+Inf": 0}

    def test_render_table_mentions_instruments(self):
        registry = MetricsRegistry()
        registry.counter("phy.pages").inc()
        registry.gauge("sim.queue_depth").set(4)
        registry.histogram("phy.page_response_latency").observe(0.01)
        table = registry.render_table()
        assert "phy.pages" in table
        assert "sim.queue_depth (gauge)" in table
        assert "phy.page_response_latency (hist)" in table

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.counter_value("a") == 0

    def test_global_registry_is_a_singleton(self):
        assert get_global_registry() is get_global_registry()
        assert get_global_registry().enabled

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMerge:
    def _loaded(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("phy.pages").inc(3)
        registry.gauge("sim.queue_depth").set(5)
        registry.gauge("sim.queue_depth").set(2)
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        return registry

    def test_counters_add(self):
        merged = MetricsRegistry()
        merged.merge(self._loaded()).merge(self._loaded())
        assert merged.counter_value("phy.pages") == 6

    def test_gauges_sum_values_and_max_high_water(self):
        a = MetricsRegistry()
        a.gauge("links").set(4)
        a.gauge("links").set(1)
        b = MetricsRegistry()
        b.gauge("links").set(2)
        merged = MetricsRegistry()
        merged.merge(a).merge(b)
        assert merged.gauge("links").value == 3  # 1 + 2
        assert merged.gauge("links").max_value == 4

    def test_histograms_add_bucket_by_bucket(self):
        merged = MetricsRegistry()
        merged.merge(self._loaded()).merge(self._loaded())
        hist = merged.histogram("lat", buckets=(0.1, 1.0))
        assert hist.bucket_counts == [2, 0, 2]
        assert hist.count == 4
        assert hist.sum == pytest.approx(10.1)

    def test_histogram_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_snapshot_merge_equals_live_merge(self):
        """Workers ship snapshot dicts; the fold must be identical."""
        via_registry = MetricsRegistry()
        via_registry.merge(self._loaded())
        via_snapshot = MetricsRegistry()
        via_snapshot.merge(self._loaded().snapshot())
        assert via_registry.snapshot() == via_snapshot.snapshot()

    def test_snapshot_merge_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(0.1,)).observe(0.5)
        snap = MetricsRegistry()
        snap.histogram("lat", buckets=(0.3,)).observe(0.5)
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(snap.snapshot())

    def test_merge_into_empty_creates_instruments(self):
        merged = MetricsRegistry()
        merged.merge(self._loaded())
        assert merged.snapshot() == self._loaded().snapshot()

    def test_disabled_registry_merge_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.merge(self._loaded()) is registry
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_is_shard_order_independent(self):
        """Folding worker snapshots in any permutation must yield a
        byte-identical campaign snapshot — the sharded runner merges in
        whatever order the pool returns, and cached replays must agree
        with live runs.  Digest buckets merge by integer addition and
        sums fold through exact ``fsum``, so this holds bit-for-bit.
        """
        import itertools
        import json

        shards = []
        for shard_seed in range(4):
            registry = MetricsRegistry()
            registry.counter("phy.pages").inc(shard_seed + 1)
            registry.gauge("sim.queue_depth").set(shard_seed)
            hist = registry.histogram("lat", buckets=(0.1, 1.0))
            for sample in range(5):
                # shard-distinct awkward floats to catch order-dependent
                # rounding in the sum
                hist.observe(0.1 / 3 * (shard_seed + 1) + sample * 1e-9)
            shards.append(registry.snapshot())

        rendered = set()
        for permutation in itertools.permutations(shards):
            merged = MetricsRegistry()
            for snap in permutation:
                merged.merge(snap)
            rendered.add(json.dumps(merged.snapshot(), sort_keys=True))
        assert len(rendered) == 1

    def test_names_collide_only_within_kind(self):
        """A counter and a gauge may share a name; merge keeps them apart."""
        a = MetricsRegistry()
        a.counter("x").inc(2)
        a.gauge("x").set(7)
        merged = MetricsRegistry()
        merged.merge(a)
        assert merged.counter_value("x") == 2
        assert merged.gauge("x").value == 7


class TestDeterminism:
    def test_same_seed_same_counter_snapshot(self):
        """Two same-seed runs in isolated registries count identically.

        Only counters are compared: ``sim.callback_wall_s`` measures
        host wall time and is legitimately nondeterministic.
        """
        from repro.attacks.baseline import run_baseline_trial
        from repro.devices.catalog import LG_VELVET

        snapshots = []
        for _ in range(2):
            registry = MetricsRegistry()
            run_baseline_trial(LG_VELVET, seed=7, registry=registry)
            snapshots.append(registry.snapshot()["counters"])
        assert snapshots[0] == snapshots[1]
        # The run exercised every layer's instruments.
        for name in (
            "phy.pages",
            "hci.events_emitted",
            "host.events_processed",
            "sim.events_processed",
            "attack.race_attempts",
        ):
            assert snapshots[0][name] > 0, name

    def test_different_seeds_may_diverge_without_error(self):
        from repro.attacks.baseline import run_baseline_trial
        from repro.devices.catalog import LG_VELVET

        registry = MetricsRegistry()
        run_baseline_trial(LG_VELVET, seed=1, registry=registry)
        assert registry.counter_value("attack.race_attempts") == 1
