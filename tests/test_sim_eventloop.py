"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.eventloop import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "latest")
    sim.run()
    assert fired == ["early", "late", "latest"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.5]
    assert sim.now == 5.5


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in-window")
    sim.schedule(10.0, fired.append, "after-window")
    sim.run(until=5.0)
    assert fired == ["in-window"]
    assert sim.now == 5.0  # clock advances to the requested horizon
    sim.run()
    assert fired == ["in-window", "after-window"]


def test_run_for_is_relative():
    sim = Simulator()
    sim.run_for(3.0)
    assert sim.now == 3.0
    sim.run_for(2.0)
    assert sim.now == 5.0


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain():
        fired.append("first")
        sim.schedule(1.0, fired.append, "second")

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_runaway_guard_trips():
    sim = Simulator()

    def respawn():
        sim.schedule(0.001, respawn)

    sim.schedule(0.001, respawn)
    with pytest.raises(SimulationError):
        sim.run(until=1e9, max_events=1000)


def test_pending_and_processed_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    sim.run()
    assert sim.pending == 0
    assert sim.events_processed == 2


def test_pending_counts_cancellations_immediately():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    drop.cancel()
    assert sim.pending == 1  # O(1) live count, no heap scan
    drop.cancel()  # double-cancel must not decrement again
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    assert sim.events_processed == 1
    assert keep.popped


def test_cancel_then_pop_does_not_double_count():
    """A cancelled event still sits in the heap until run() pops it;
    the pop must not decrement the live count a second time."""
    sim = Simulator()
    cancelled = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    cancelled.cancel()
    sim.run()  # pops the cancelled entry, then the live one
    assert sim.pending == 0
    assert sim.events_processed == 1


def test_cancel_after_pop_is_a_noop():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "ran")
    sim.schedule(2.0, lambda: event.cancel())  # too late: already popped
    sim.run()
    assert fired == ["ran"]
    assert sim.pending == 0
    assert not event.cancelled


def test_cancel_inside_run_keeps_pending_consistent():
    sim = Simulator()
    fired = []
    later = sim.schedule(2.0, fired.append, "later")

    def first():
        fired.append("first")
        later.cancel()
        assert sim.pending == 0

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first"]
    assert sim.pending == 0


def test_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1
