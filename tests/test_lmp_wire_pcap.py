"""Tests: LMP wire serialization and pcap export."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.eavesdrop import AirCapture
from repro.controller import lmp
from repro.controller.lmp_wire import parse_lmp, serialize_lmp
from repro.core.errors import HciError, StorageError
from repro.snoop.hcidump import HciDump
from repro.snoop.pcap import (
    AirPcapWriter,
    LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR,
    hci_dump_to_pcap,
    parse_pcap,
    read_air_pcap,
)

RAND = bytes(range(16))


_SAMPLE_PDUS = [
    lmp.LmpAuRand(RAND),
    lmp.LmpSres(b"\x01\x02\x03\x04"),
    lmp.LmpDetach(0x22),
    lmp.LmpInRand(RAND),
    lmp.LmpCombKey(RAND),
    lmp.LmpEncryptionModeReq(True),
    lmp.LmpEncryptionKeySizeReq(16),
    lmp.LmpEncryptionKeySizeRes(7, True),
    lmp.LmpStartEncryption(RAND),
    lmp.LmpStopEncryption(),
    lmp.LmpNotAccepted("LMP_au_rand", 0x06),
    lmp.LmpIoCapabilityReq(1, 0, 3),
    lmp.LmpIoCapabilityRes(3, 0, 0),
    lmp.LmpEncapsulatedKey(b"\xAB" * 64, "P-256"),
    lmp.LmpSimplePairingConfirm(RAND),
    lmp.LmpSimplePairingNumber(RAND),
    lmp.LmpDhkeyCheck(RAND),
    lmp.LmpConnectionAccepted(0x5A020C),
    lmp.LmpConnectionRejected(0x0E),
    lmp.LmpFeaturesInfo(True, False),
    lmp.LmpStage1Confirmed(),
    lmp.LmpPasskeyConfirm(7, RAND),
    lmp.LmpPasskeyNumber(19, RAND),
    lmp.LmpAuRandSC(RAND),
    lmp.LmpScAuthResponse(RAND, b"\x09\x08\x07\x06"),
    lmp.LmpScAuthConfirm(b"\x01\x02\x03\x04"),
    lmp.LmpLegacyComplete(),
    lmp.AclPayload(b"l2cap bytes"),
    lmp.LmpScoSetup(True),
]


class TestLmpWire:
    @pytest.mark.parametrize(
        "pdu", _SAMPLE_PDUS, ids=lambda p: type(p).__name__
    )
    def test_roundtrip(self, pdu):
        assert parse_lmp(serialize_lmp(pdu)) == pdu

    def test_every_pdu_class_has_a_wire_form(self):
        """No PDU class may be added without wire coverage."""
        covered = {type(pdu) for pdu in _SAMPLE_PDUS}
        all_pdus = {
            cls
            for cls in vars(lmp).values()
            if isinstance(cls, type)
            and issubclass(cls, lmp.LmpPdu)
            and cls is not lmp.LmpPdu
        }
        assert all_pdus == covered

    def test_unknown_opcode_rejected(self):
        with pytest.raises(HciError):
            parse_lmp(b"\x63\x00\x00")

    def test_short_packet_rejected(self):
        with pytest.raises(HciError):
            parse_lmp(b"\x0b")

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=20)
    def test_au_rand_payload_property(self, rand):
        assert parse_lmp(serialize_lmp(lmp.LmpAuRand(rand))).rand == rand


class TestHciPcap:
    def _dump(self):
        from repro.hci import commands as cmd
        from repro.sim.eventloop import Simulator
        from repro.transport.uart import UartH4Transport

        sim = Simulator()
        transport = UartH4Transport(sim)
        transport.attach_host(lambda raw: None)
        transport.attach_controller(lambda raw: None)
        dump = HciDump().attach(transport)
        transport.send_from_host(cmd.Reset())
        sim.run()
        return dump

    def test_pcap_header_and_linktype(self):
        raw = hci_dump_to_pcap(self._dump())
        linktype, packets = parse_pcap(raw)
        assert linktype == LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR
        assert len(packets) == 1

    def test_pcap_record_carries_direction_and_h4(self):
        from repro.hci import commands as cmd

        raw = hci_dump_to_pcap(self._dump())
        _, packets = parse_pcap(raw)
        payload = packets[0][1]
        assert payload[:4] == b"\x00\x00\x00\x00"  # host→controller
        assert payload[4:] == cmd.Reset().to_h4_bytes()

    def test_pcap_from_btsnoop_bytes(self):
        dump = self._dump()
        assert hci_dump_to_pcap(dump.to_btsnoop_bytes()) == hci_dump_to_pcap(dump)

    def test_garbage_rejected(self):
        with pytest.raises(StorageError):
            parse_pcap(b"nope")


class TestAirPcap:
    def test_air_capture_roundtrip(self, bonded_pair):
        world, m, c = bonded_pair
        capture = AirCapture().attach(world.medium)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success
        raw = AirPcapWriter().add_capture(capture).to_bytes()
        frames = read_air_pcap(raw)
        assert frames
        pdu_names = {type(pdu).__name__ for _, _, _, pdu in frames}
        assert "LmpAuRand" in pdu_names
        assert "LmpSres" in pdu_names
        senders = {sender for _, _, sender, _ in frames}
        assert senders == {"M", "C"}

    def test_air_pcap_preserves_challenge_bytes(self, bonded_pair):
        world, m, c = bonded_pair
        capture = AirCapture().attach(world.medium)
        m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        original = capture.lmp_frames(lmp.LmpAuRand)[-1].frame.payload.rand
        raw = AirPcapWriter().add_capture(capture).to_bytes()
        recovered = [
            pdu.rand
            for _, _, _, pdu in read_air_pcap(raw)
            if isinstance(pdu, lmp.LmpAuRand)
        ]
        assert original in recovered
