"""Tests: key size negotiation and the KNOB-style brute force."""

import pytest

from repro.attacks.eavesdrop import AirCapture
from repro.attacks.knob import brute_force_low_entropy_session
from repro.core.errors import AttackError


def _encrypted_session(world, m, c, knobbed: bool):
    """Authenticated + encrypted session; optionally KNOB'd to 1 byte."""
    if knobbed:
        # KNOB manipulates the controllers' negotiation (firmware-level
        # in the real attack); we model the post-manipulation state.
        m.controller.max_encryption_key_size = 1
    capture = AirCapture().attach(world.medium)
    op = m.host.gap.pair(c.bd_addr)
    world.run_for(10.0)
    assert op.success
    enc = m.host.gap.enable_encryption(c.bd_addr)
    world.run_for(2.0)
    sdp = m.host.sdp.query(c.bd_addr)
    world.run_for(5.0)
    return capture, enc, sdp


class TestKeySizeNegotiation:
    def test_default_negotiation_is_full_entropy(self, bonded_pair):
        world, m, c = bonded_pair
        _, enc, _ = _encrypted_session(world, m, c, knobbed=False)
        assert enc.success
        link = m.controller.link_by_handle(m.host.gap.handle_for(c.bd_addr))
        assert link.encryption_key_size == 16

    def test_knobbed_negotiation_drops_to_one_byte(self, bonded_pair):
        world, m, c = bonded_pair
        _, enc, sdp = _encrypted_session(world, m, c, knobbed=True)
        assert enc.success and sdp.success  # victims notice nothing
        m_link = m.controller.link_by_handle(m.host.gap.handle_for(c.bd_addr))
        c_link = c.controller.link_by_handle(c.host.gap.handle_for(m.bd_addr))
        assert m_link.encryption_key_size == 1
        assert c_link.encryption_key_size == 1
        assert m_link.kc == c_link.kc
        assert m_link.kc[1:] == b"\x00" * 15

    def test_minimum_size_mitigation_refuses_knob(self, bonded_pair):
        """The post-KNOB erratum: enforce ≥7 bytes of entropy."""
        world, m, c = bonded_pair
        m.controller.max_encryption_key_size = 1  # KNOB'd proposal
        c.controller.min_encryption_key_size = 7  # mitigated peer
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success
        enc = m.host.gap.enable_encryption(c.bd_addr)
        world.run_for(2.0)
        assert enc.done and not enc.success  # encryption refused


class TestKnobBruteForce:
    def test_one_byte_session_falls_to_256_candidates(self, bonded_pair):
        world, m, c = bonded_pair
        capture, _, _ = _encrypted_session(world, m, c, knobbed=True)
        result = brute_force_low_entropy_session(
            capture,
            master_addr=m.bd_addr,
            master_name=m.name,
            entropy_bytes=1,
            plaintext_predicate=lambda ps: any(
                b"Personal Ad-hoc" in p for p in ps
            ),
        )
        assert result is not None
        assert result.candidates_tried <= 256
        link = m.controller.link_by_handle(m.host.gap.handle_for(c.bd_addr))
        assert result.kc_prime == link.kc

    def test_full_entropy_session_is_infeasible(self, bonded_pair):
        world, m, c = bonded_pair
        capture, _, _ = _encrypted_session(world, m, c, knobbed=False)
        with pytest.raises(AttackError):
            brute_force_low_entropy_session(
                capture,
                master_addr=m.bd_addr,
                master_name=m.name,
                entropy_bytes=16,
                plaintext_predicate=lambda ps: True,
            )

    def test_empty_capture_rejected(self, bonded_pair):
        world, m, c = bonded_pair
        with pytest.raises(AttackError):
            brute_force_low_entropy_session(
                AirCapture(),
                master_addr=m.bd_addr,
                master_name=m.name,
                entropy_bytes=1,
                plaintext_predicate=lambda ps: True,
            )
