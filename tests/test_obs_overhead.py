"""Instrumentation overhead guards (run with ``-m perf``; skipped by
``-m "not perf"`` in CI).

The event loop promises that a *disabled* registry costs nothing on the
hot path: ``run()`` checks ``metrics.enabled`` once and then takes the
identical uninstrumented branch.  This test holds that promise to <5%
on a 10k-event run.

Timing discipline: one discarded warm-up run (first-call costs —
allocator growth, bytecode specialisation, branch warm-up — land
there), then the *median* of the repeats.  The old min-of-repeats
divided the best-case outlier of one distribution by the best-case
outlier of another, so the recorded enabled-overhead ratio swung from
~14% to ~54% run to run.  Warm-up + median compares typical runs to
typical runs and lands reproducibly near ~40% (``BENCH_obs.json``
records 0.41) — the honest post-instrument-caching figure (down from
the pre-caching 57%); the ~11% once claimed in the changelog was
itself a lucky-minimum artifact.

The span-tracker guard charges spans separately from metrics: the
tracker's own open/close bookkeeping (parent linkage, self-time
accounting, timeline record) is measured against a disabled registry,
and the metrics observation it feeds (the three histogram families of
``Observability._observe_span``) against an enabled one — so
``BENCH_obs.json`` attributes "span overhead" and "metrics overhead"
to their actual owners instead of one conflated number.
"""

import statistics
import time

import pytest

from repro.core.bench import record_bench
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.sim.eventloop import Simulator

EVENTS = 10_000
#: span opens/closes per timed span-workload run (half outer, half inner)
SPANS = 10_000
REPEATS = 15


def _run_chain(metrics) -> float:
    """Wall time of a 10k-event chained run under the given registry."""
    sim = Simulator(metrics=metrics)
    remaining = [EVENTS]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert sim.events_processed == EVENTS
    return elapsed


def _median_of(metrics_factory) -> float:
    _run_chain(metrics_factory())  # warm-up, discarded
    return statistics.median(
        _run_chain(metrics_factory()) for _ in range(REPEATS)
    )


@pytest.mark.perf
def test_disabled_registry_under_five_percent_overhead():
    bare = _median_of(lambda: None)
    disabled = _median_of(lambda: MetricsRegistry(enabled=False))
    record_bench(
        "campaign",
        "obs_overhead_disabled",
        {
            "events": EVENTS,
            "bare_s": bare,
            "disabled_s": disabled,
            "overhead": disabled / bare - 1,
        },
    )
    # 0.5 ms absolute slack keeps sub-millisecond timer jitter from
    # failing runs where 5% of the baseline is only a few hundred µs.
    assert disabled <= bare * 1.05 + 0.0005, (
        f"disabled-registry run took {disabled:.6f}s vs {bare:.6f}s bare "
        f"({disabled / bare - 1:+.1%})"
    )


@pytest.mark.perf
def test_enabled_registry_stays_cheap_enough_for_benchmarks():
    bare = _median_of(lambda: None)
    enabled = _median_of(MetricsRegistry)
    record_bench(
        "campaign",
        "obs_overhead_enabled",
        {
            "events": EVENTS,
            "bare_s": bare,
            "enabled_s": enabled,
            "overhead": enabled / bare - 1,
        },
    )
    record_bench(
        "obs",
        "hot_loop_overhead",
        {
            "events": EVENTS,
            # the last measurement before histogram observations were
            # buffered and the loop's counter/gauge flushed once per
            # run (per-event inc/set + eager bucket fold)
            "before_overhead": 0.5705,
            "after_overhead": enabled / bare - 1,
        },
    )
    # Live counters + the wall-time histogram may cost real work, but
    # "cheap enough to stay on in benchmarks" means small-multiple, not
    # order-of-magnitude.
    assert enabled <= bare * 3 + 0.0005, (
        f"enabled-registry run took {enabled:.6f}s vs {bare:.6f}s bare"
    )


def _run_spans(obs: Observability) -> float:
    """Wall time of SPANS nested span opens/closes."""
    started = time.perf_counter()
    for _ in range(SPANS // 2):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
    return time.perf_counter() - started


def _median_spans(factory) -> float:
    _run_spans(factory())  # warm-up, discarded
    return statistics.median(_run_spans(factory()) for _ in range(REPEATS))


@pytest.mark.perf
def test_span_tracker_overhead_split_from_metrics():
    tracker_only = _median_spans(
        lambda: Observability(registry=MetricsRegistry(enabled=False))
    )
    with_metrics = _median_spans(
        lambda: Observability(registry=MetricsRegistry())
    )
    record_bench(
        "obs",
        "span_overhead",
        {
            "spans": SPANS,
            "tracker_s": tracker_only,
            "with_metrics_s": with_metrics,
            "metrics_overhead": with_metrics / tracker_only - 1,
        },
        spans=["outer", "inner"],
    )
    # Three cached-histogram observes per close on top of the tracker's
    # bookkeeping: small-multiple, never order-of-magnitude.
    assert with_metrics <= tracker_only * 5 + 0.0005, (
        f"span close with metrics took {with_metrics:.6f}s vs "
        f"{tracker_only:.6f}s tracker-only per {SPANS} spans"
    )
