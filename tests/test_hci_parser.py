"""Unit tests for the tolerant HCI byte-stream parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HciError
from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import PacketIndicator
from repro.hci.packets import HciAclData, HciCommand, HciEvent
from repro.hci.parser import parse_command, parse_event, parse_h4_stream, parse_packet

ADDR = BdAddr.parse("48:90:11:22:33:44")
KEY = LinkKey(bytes(range(16)))


def test_parse_typed_command():
    raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_bytes()
    parsed = parse_command(raw)
    assert isinstance(parsed, cmd.LinkKeyRequestReply)
    assert parsed.link_key == KEY


def test_parse_typed_event():
    raw = evt.ConnectionRequest(
        bd_addr=ADDR, class_of_device=0x5A020C, link_type=1
    ).to_bytes()
    parsed = parse_event(raw)
    assert isinstance(parsed, evt.ConnectionRequest)
    assert parsed.class_of_device == 0x5A020C


def test_unknown_opcode_becomes_raw_command():
    raw = HciCommand.raw(0xFC01, b"\xde\xad").to_bytes()  # vendor command
    parsed = parse_command(raw)
    assert parsed.opcode == 0xFC01
    assert parsed.parameters() == b"\xde\xad"


def test_unknown_event_becomes_raw_event():
    raw = HciEvent.raw(0xFF, b"\x01").to_bytes()
    parsed = parse_event(raw)
    assert parsed.event_code == 0xFF


def test_truncated_command_rejected():
    raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_bytes()
    with pytest.raises(HciError):
        parse_command(raw[:-4])


def test_truncated_event_rejected():
    raw = evt.LinkKeyRequest(bd_addr=ADDR).to_bytes()
    with pytest.raises(HciError):
        parse_event(raw[:-1])


def test_parse_packet_dispatch():
    command = cmd.Reset()
    event = evt.InquiryComplete(status=0)
    acl = HciAclData(handle=3, data=b"x")
    assert isinstance(
        parse_packet(PacketIndicator.COMMAND, command.to_bytes()), HciCommand
    )
    assert isinstance(parse_packet(PacketIndicator.EVENT, event.to_bytes()), HciEvent)
    assert isinstance(
        parse_packet(PacketIndicator.ACL_DATA, acl.to_bytes()), HciAclData
    )


def test_parse_packet_rejects_unknown_indicator():
    with pytest.raises(HciError):
        parse_packet(0x09, b"")


class TestH4Stream:
    def _stream(self):
        return (
            cmd.AuthenticationRequested(connection_handle=6).to_h4_bytes()
            + evt.LinkKeyRequest(bd_addr=ADDR).to_h4_bytes()
            + cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_h4_bytes()
            + HciAclData(handle=6, data=b"l2cap!").to_h4_bytes()
        )

    def test_walks_all_packets(self):
        packets = [packet for _, packet in parse_h4_stream(self._stream())]
        assert len(packets) == 4
        assert isinstance(packets[2], cmd.LinkKeyRequestReply)
        assert isinstance(packets[3], HciAclData)

    def test_offsets_are_monotonic(self):
        offsets = [offset for offset, _ in parse_h4_stream(self._stream())]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_garbage_indicator_rejected(self):
        with pytest.raises(HciError):
            list(parse_h4_stream(b"\x07\x01\x02"))

    def test_truncated_tail_rejected(self):
        with pytest.raises(HciError):
            list(parse_h4_stream(self._stream()[:-3]))

    @given(st.lists(st.sampled_from(["cmd", "evt", "acl"]), max_size=12))
    @settings(max_examples=25)
    def test_arbitrary_sequences_roundtrip(self, kinds):
        stream = b""
        for kind in kinds:
            if kind == "cmd":
                stream += cmd.Reset().to_h4_bytes()
            elif kind == "evt":
                stream += evt.InquiryComplete(status=0).to_h4_bytes()
            else:
                stream += HciAclData(handle=1, data=b"ab").to_h4_bytes()
        assert len(list(parse_h4_stream(stream))) == len(kinds)
