"""Tests for the §VII mitigations: each defeats its attack."""

import pytest

from repro.attacks.attacker import Attacker
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.core.types import BdAddr, IoCapability, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.mitigations.dump_filter import FilteredHciDump, redact_record
from repro.mitigations.hci_encryption import (
    HciPayloadCipher,
    SecureUartTransport,
)
from repro.sim.eventloop import Simulator
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import HciDump
from repro.snoop.usb_extract import bin2hex, scan_hex_for_link_keys

ADDR = BdAddr.parse("48:90:11:22:33:44")
KEY = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")


class TestDumpFilter:
    def _record(self, dump_cls):
        sim = Simulator()
        from repro.transport.uart import UartH4Transport

        transport = UartH4Transport(sim)
        transport.attach_host(lambda raw: None)
        transport.attach_controller(lambda raw: None)
        dump = dump_cls().attach(transport)
        transport.send_from_host(
            cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY)
        )
        transport.send_from_controller(
            evt.LinkKeyNotification(bd_addr=ADDR, link_key=KEY, key_type=7)
        )
        transport.send_from_host(cmd.Reset())
        sim.run()
        return dump

    def test_redact_record_zeroes_only_the_key(self):
        raw = cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY).to_h4_bytes()
        safe, redacted = redact_record(raw)
        assert redacted
        assert safe[:10] == raw[:10]  # indicator+header+addr intact
        assert safe[10:26] == b"\x00" * 16

    def test_redact_leaves_other_packets_alone(self):
        raw = cmd.Reset().to_h4_bytes()
        safe, redacted = redact_record(raw)
        assert not redacted and safe == raw

    def test_notification_event_also_redacted(self):
        raw = evt.LinkKeyNotification(
            bd_addr=ADDR, link_key=KEY, key_type=7
        ).to_h4_bytes()
        safe, redacted = redact_record(raw)
        assert redacted
        assert KEY.to_hci_bytes() not in safe

    def test_extractor_defeated_by_filtered_dump(self):
        dump = self._record(FilteredHciDump)
        findings = extract_link_keys(dump.to_btsnoop_bytes())
        assert all(f.link_key != KEY for f in findings)
        assert dump.redactions == 2

    def test_unfiltered_dump_still_leaks_control(self):
        dump = self._record(HciDump)
        findings = extract_link_keys(dump.to_btsnoop_bytes())
        assert any(f.link_key == KEY for f in findings)

    def test_filtered_dump_preserves_flow_structure(self):
        """The filter redacts payloads, not forensics: frames remain."""
        dump = self._record(FilteredHciDump)
        names = [entry.packet.display_name for entry in dump.entries()]
        assert names == [
            "HCI_Link_Key_Request_Reply",
            "HCI_Link_Key_Notification",
            "HCI_Reset",
        ]


class TestHciPayloadEncryption:
    def _secure_exchange(self):
        sim = Simulator()
        transport = SecureUartTransport(sim)
        host_rx, taps = [], []
        transport.attach_host(host_rx.append)
        transport.attach_controller(lambda raw: None)
        transport.add_tap(lambda t, d, raw: taps.append(raw))
        transport.send_from_host(
            cmd.LinkKeyRequestReply(bd_addr=ADDR, link_key=KEY)
        )
        transport.send_from_controller(
            evt.LinkKeyNotification(bd_addr=ADDR, link_key=KEY, key_type=7)
        )
        sim.run()
        return transport, host_rx, taps

    def test_cipher_roundtrip(self):
        cipher = HciPayloadCipher(b"k" * 32)
        assert cipher.process(5, cipher.process(5, b"secret")) == b"secret"

    def test_cipher_nonce_separation(self):
        cipher = HciPayloadCipher(b"k" * 32)
        assert cipher.process(1, b"secret") != cipher.process(2, b"secret")

    def test_wire_taps_see_ciphertext(self):
        transport, _, taps = self._secure_exchange()
        for raw in taps:
            assert KEY.to_hci_bytes() not in raw
        assert transport.protected_packets == 2

    def test_endpoints_see_plaintext(self):
        _, host_rx, _ = self._secure_exchange()
        assert KEY.to_hci_bytes() in host_rx[0]

    def test_usb_signature_scan_defeated(self):
        """The '0b 04 16' grep still matches the header but recovers
        ciphertext, not the key."""
        _, _, taps = self._secure_exchange()
        findings = scan_hex_for_link_keys(bin2hex(b"".join(taps)))
        assert all(f.link_key != KEY for f in findings)

    def test_unprotected_packets_pass_through_unchanged(self):
        sim = Simulator()
        transport = SecureUartTransport(sim)
        taps = []
        transport.attach_host(lambda raw: None)
        transport.attach_controller(lambda raw: None)
        transport.add_tap(lambda t, d, raw: taps.append(raw))
        transport.send_from_host(cmd.Reset())
        sim.run()
        assert taps == [cmd.Reset().to_h4_bytes()]


class TestPageBlockingGuard:
    def test_guard_stops_the_attack(self):
        world = build_world(WorldConfig(seed=9))
        m, c, a = standard_cast(world)
        m.host.security.page_blocking_guard = True
        report = PageBlockingAttack(world, a, c, m).run()
        assert not report.paired
        assert m.host.security.guard_rejections >= 1
        assert not m.host.security.is_bonded(c.bd_addr)

    def test_guard_allows_legitimate_pairing(self):
        """No false positive on an ordinary user-initiated pairing."""
        world = build_world(WorldConfig(seed=10))
        m, c, a = standard_cast(world)
        m.host.security.page_blocking_guard = True
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert m.host.security.guard_rejections == 0

    def test_guard_allows_legit_headset_pairing(self):
        """A NoInputNoOutput accessory paired the normal way (we page
        it) is fine — only remote-initiated connections are suspect."""
        from repro.devices.catalog import HEADSET

        world = build_world(WorldConfig(seed=11))
        m = world.add_device("M", spec=__import__(
            "repro.devices.catalog", fromlist=["LG_VELVET"]
        ).LG_VELVET)
        headset = world.add_device("H", HEADSET)
        m.power_on()
        headset.power_on()
        world.run_for(0.5)
        m.host.security.page_blocking_guard = True
        op = m.host.gap.pair(headset.bd_addr)
        world.run_for(20.0)
        assert op.success
        assert m.host.security.guard_rejections == 0
