"""The ingest server end to end: HTTP, WebSocket, store, shedding."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.campaign.captures import attack_capture
from repro.detect import replay_capture
from repro.service import client as service_client
from repro.service.server import IngestServer, enqueue_or_shed
from repro.service.session import SessionConfig, SessionManager
from repro.service.websocket import accept_key


@pytest.fixture(scope="module")
def attack_bytes():
    return attack_capture()


def run(coro):
    return asyncio.run(coro)


async def with_server(fn, **server_kwargs):
    async with IngestServer(**server_kwargs) as server:
        return await fn(server)


class TestHttp:
    def test_healthz(self):
        async def check(server):
            status, payload = await service_client.request(
                server.host, server.port, "GET", "/healthz"
            )
            assert status == 200
            assert payload["status"] == "ok"

        run(with_server(check))

    def test_unknown_route_404(self):
        async def check(server):
            status, payload = await service_client.request(
                server.host, server.port, "GET", "/nope"
            )
            assert status == 404
            assert "error" in payload

        run(with_server(check))

    def test_upload_verdict_identical_to_replay_capture(self, attack_bytes):
        """Acceptance: online capture verdict ≡ offline replay."""
        offline = [
            alert.to_dict() for alert in replay_capture(attack_bytes).alerts
        ]

        async def check(server):
            status, verdict = await service_client.request(
                server.host,
                server.port,
                "POST",
                "/api/captures",
                attack_bytes,
            )
            assert status == 200
            assert json.dumps(verdict["alerts"], sort_keys=True) == (
                json.dumps(offline, sort_keys=True)
            )
            assert verdict["dropped_events"] == 0

        run(with_server(check))

    def test_truncated_upload_is_structured_400(self, attack_bytes):
        """Satellite: bad client bytes → 400 with a one-line reason."""

        async def check(server):
            for body in (b"", b"garbage", attack_bytes[:40]):
                status, payload = await service_client.request(
                    server.host, server.port, "POST", "/api/captures", body
                )
                assert status == 400, body
                assert isinstance(payload.get("error"), str)
                assert "\n" not in payload["error"]

        run(with_server(check))

    def test_capture_query_params_select_tenant_and_detectors(
        self, attack_bytes
    ):
        async def check(server):
            status, verdict = await service_client.request(
                server.host,
                server.port,
                "POST",
                "/api/captures?tenant=acme&detectors=page-blocking",
                attack_bytes,
            )
            assert status == 200
            assert verdict["tenant"] == "acme"
            assert verdict["detectors"] == ["page-blocking"]
            assert set(verdict["max_scores"]) == {"page-blocking"}
            return server.manager

        manager = run(with_server(check))
        assert "acme" in manager.tenants

    def test_metrics_endpoint_merges_tenants(self, attack_bytes):
        async def check(server):
            await service_client.request(
                server.host,
                server.port,
                "POST",
                "/api/captures?tenant=a",
                attack_bytes,
            )
            await service_client.request(
                server.host,
                server.port,
                "POST",
                "/api/captures?tenant=b",
                attack_bytes,
            )
            status, payload = await service_client.request(
                server.host, server.port, "GET", "/api/metrics"
            )
            assert status == 200
            assert sorted(payload["tenants"]) == ["a", "b"]
            per_tenant = [
                payload["tenants"][t]["counters"]["service.events"]
                for t in ("a", "b")
            ]
            assert payload["service"]["counters"]["service.events"] == sum(
                per_tenant
            )
            assert payload["sessions"]["finished"] == 2

        run(with_server(check))

    def test_finished_session_verdict_stays_addressable(self, attack_bytes):
        async def check(server):
            _, verdict = await service_client.request(
                server.host, server.port, "POST", "/api/captures",
                attack_bytes,
            )
            status, payload = await service_client.request(
                server.host,
                server.port,
                "GET",
                f"/api/sessions/{verdict['session']}",
            )
            assert status == 200
            assert payload["type"] == "verdict"
            status, _ = await service_client.request(
                server.host, server.port, "GET", "/api/sessions/s9999"
            )
            assert status == 404

        run(with_server(check))


class TestWebSocket:
    def test_stream_verdict_identical_to_replay_capture(self, attack_bytes):
        offline = [
            alert.to_dict() for alert in replay_capture(attack_bytes).alerts
        ]

        async def check(server):
            verdict = await service_client.stream_capture(
                server.host, server.port, attack_bytes, tenant="ws"
            )
            assert json.dumps(verdict["alerts"], sort_keys=True) == (
                json.dumps(offline, sort_keys=True)
            )
            assert verdict["tenant"] == "ws"

        run(with_server(check))

    def test_small_window_streams_alerts_live(self, attack_bytes):
        """With a reorder window smaller than the stream, alerts are
        pushed mid-session instead of only at finish."""

        async def check(server):
            verdict = await service_client.stream_capture(
                server.host, server.port, attack_bytes, window=4
            )
            assert verdict["alert_count"] > 0
            assert len(verdict["streamed_alerts"]) == verdict["alert_count"]

        run(with_server(check))

    def test_bad_event_frame_gets_error_frame_not_disconnect(self):
        async def check(server):
            ws, welcome = await service_client.open_stream(
                server.host, server.port
            )
            try:
                await ws.send_json({"type": "event", "channel": "hci"})
                reply = await ws.recv_json()
                assert reply["type"] == "error"
                assert "\n" not in reply["reason"]
                # the stream is still alive: finishing works
                await ws.send_json({"type": "finish"})
                verdict = await ws.recv_json()
                assert verdict["type"] == "verdict"
                assert verdict["session"] == welcome["session"]
            finally:
                await ws.close()

        run(with_server(check))

    def test_listing_shows_open_stream(self):
        async def check(server):
            ws, welcome = await service_client.open_stream(
                server.host, server.port, tenant="live"
            )
            try:
                status, payload = await service_client.request(
                    server.host, server.port, "GET", "/api/sessions"
                )
                assert status == 200
                rows = {
                    row["session"]: row for row in payload["sessions"]
                }
                assert welcome["session"] in rows
                assert rows[welcome["session"]]["tenant"] == "live"
            finally:
                await ws.close()

        run(with_server(check))


class TestStoreSourcedSessions:
    @pytest.fixture()
    def store(self, tmp_path):
        from repro.store import RunStore, store_events

        store = RunStore(str(tmp_path / "store.db"))
        # a synthetic recon run: one radio flooding inquiries, which
        # the surveillance detector (trace channel) must flag
        events = [
            {
                "kind": "trace",
                "time": 0.5 * index,
                "seq": index,
                "source": "phy",
                "category": "phy-inquiry",
                "message": "inquiry",
                "detail": {"initiator": "aa:bb:cc:dd:ee:01"},
            }
            for index in range(8)
        ]
        store_events(store, "recon-run", events)
        yield store
        store.close()

    def test_session_sourced_from_archived_run(self, store):
        """Satellite: store query → feed → verdict, alerts archived."""

        async def check(server):
            status, verdict = await service_client.request(
                server.host,
                server.port,
                "POST",
                "/api/sessions",
                json.dumps({"run_id": "recon-run"}).encode(),
                "application/json",
            )
            assert status == 200
            assert verdict["source_run_id"] == "recon-run"
            assert verdict["max_scores"]["surveillance"] > 0
            return verdict

        verdict = run(with_server(check, store=store))
        from repro.store import AlertQuery

        rows = store.query_alerts(
            AlertQuery(run_id=f"service-{verdict['session']}")
        )
        assert len(rows) == verdict["alert_count"] > 0

    def test_unknown_run_is_404(self, store):
        async def check(server):
            status, payload = await service_client.request(
                server.host,
                server.port,
                "POST",
                "/api/sessions",
                json.dumps({"run_id": "missing"}).encode(),
                "application/json",
            )
            assert status == 404
            assert "missing" in payload["error"]

        run(with_server(check, store=store))

    def test_without_store_is_400(self):
        async def check(server):
            status, payload = await service_client.request(
                server.host,
                server.port,
                "POST",
                "/api/sessions",
                json.dumps({"run_id": "x"}).encode(),
                "application/json",
            )
            assert status == 400
            assert "store" in payload["error"]

        run(with_server(check))


class TestBackpressure:
    def test_enqueue_or_shed_is_deterministic(self):
        """Satellite: a stalled consumer sheds exactly the overflow."""

        async def check():
            manager = SessionManager()
            session = manager.open(
                config=SessionConfig(queue_size=4)
            )
            queue = asyncio.Queue(maxsize=session.config.queue_size)
            accepted = sum(
                enqueue_or_shed(session, queue, object())
                for _ in range(10)
            )
            assert accepted == 4
            assert session.dropped_events == 6
            verdict = manager.finish(session)
            assert verdict["dropped_events"] == 6

        run(check())

    def test_idle_eviction_closes_sessions(self):
        async def check(server):
            clock = {"now": 0.0}
            server.manager.clock = lambda: clock["now"]
            session = server.manager.open()
            clock["now"] = 1000.0
            evicted = server.manager.evict_idle()
            assert evicted == [session.id]
            assert session.id in server.manager.finished

        run(with_server(check, idle_timeout_s=10.0))


class TestServiceCli:
    def test_loadgen_self_hosted(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("BLAP_BENCH_DIR", str(tmp_path))
        assert (
            main(
                [
                    "service", "loadgen",
                    "--sessions", "6",
                    "--tenants", "2",
                    "--captures", "2",
                    "--bench",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["sessions"] == 6
        assert payload["failures"] == 0
        bench = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert bench["loadgen"]["ingest_events_per_s"] > 0
        assert (tmp_path / "BENCH_HISTORY.jsonl").exists()

    def test_sessions_against_dead_server_is_operator_error(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["service", "sessions", "--url", "http://127.0.0.1:9"]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err


def test_accept_key_matches_rfc_example():
    # the worked example from RFC 6455 §1.3
    assert (
        accept_key("dGhlIHNhbXBsZSBub25jZQ==")
        == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    )
