"""Tests: Secure Connections mutual authentication (h4/h5).

Opt-in hardening beyond the paper's fleet.  Two properties matter:

* the link key extraction attack is **authentication-scheme agnostic**
  — the plaintext key still crosses the HCI on every challenge; and
* mutuality closes the one-way gap BIAS exploited: a verifier that
  cannot prove key possession is rejected by the prover.
"""

import pytest

from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.controller import lmp
from repro.attacks.eavesdrop import AirCapture
from repro.core.types import LinkKey
from repro.hci.constants import ErrorCode
from repro.host.storage import BondingRecord


@pytest.fixture
def sc_pair(bonded_pair):
    world, m, c = bonded_pair
    m.controller.secure_auth_enabled = True
    c.controller.secure_auth_enabled = True
    return world, m, c


class TestMutualAuthentication:
    def test_sc_reauth_succeeds(self, sc_pair):
        world, m, c = sc_pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success

    def test_sc_pdus_on_the_air(self, sc_pair):
        world, m, c = sc_pair
        capture = AirCapture().attach(world.medium)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success
        assert capture.lmp_frames(lmp.LmpAuRandSC)
        assert capture.lmp_frames(lmp.LmpScAuthResponse)
        assert capture.lmp_frames(lmp.LmpScAuthConfirm)
        assert not capture.lmp_frames(lmp.LmpAuRand)  # legacy path unused

    def test_one_legacy_side_falls_back(self, bonded_pair):
        world, m, c = bonded_pair
        m.controller.secure_auth_enabled = True  # C stays legacy
        capture = AirCapture().attach(world.medium)
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success
        assert capture.lmp_frames(lmp.LmpAuRand)
        assert not capture.lmp_frames(lmp.LmpAuRandSC)

    def test_wrong_prover_key_rejected(self, sc_pair):
        world, m, c = sc_pair
        c.host.security.add_bond(
            BondingRecord(addr=m.bd_addr, link_key=LinkKey(b"\xEE" * 16))
        )
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.done and op.status == ErrorCode.AUTHENTICATION_FAILURE

    def test_mutuality_detects_bogus_verifier(self, sc_pair):
        """The anti-BIAS property: the prover checks the verifier."""
        world, m, c = sc_pair
        # M (the verifier) holds a wrong key; C (the prover) is honest.
        m.host.security.add_bond(
            BondingRecord(addr=c.bd_addr, link_key=LinkKey(b"\xEE" * 16))
        )
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        # The exchange fails — with one-way legacy auth the honest
        # prover would simply answer and never learn anything.
        assert op.done and not op.success
        assert not c.host.gap.is_connected(m.bd_addr)

    def test_encryption_works_over_sc_aco(self, sc_pair):
        world, m, c = sc_pair
        op = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        assert op.success
        enc = m.host.gap.enable_encryption(c.bd_addr)
        world.run_for(2.0)
        assert enc.success
        sdp = m.host.sdp.query(c.bd_addr)
        world.run_for(5.0)
        assert sdp.success


class TestExtractionAgnosticism:
    def test_extraction_attack_unaffected_by_sc_auth(self):
        """SC authentication changes the LMP math, not the HCI leak."""
        world = build_world(WorldConfig(seed=61))
        m, c, a = standard_cast(world)
        for device in (m, c, a):
            device.controller.secure_auth_enabled = True
        bond(world, c, m)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=True)
        assert report.vulnerable
        assert report.validated_against_m
