"""Tests for the forensic page blocking detector."""

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.mitigations.detector import detect_page_blocking
from repro.snoop.hcidump import HciDump


def _attack_capture(seed=33):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    report = PageBlockingAttack(world, a, c, m).run()
    assert report.success
    return report.m_dump, c


def _normal_capture(seed=34):
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    dump = HciDump().attach(m.transport)
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    op = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert op.success
    return dump


def test_attack_capture_flagged():
    dump, c = _attack_capture()
    findings = detect_page_blocking(dump)
    assert len(findings) == 1
    assert findings[0].peer == c.bd_addr


def test_attack_flagged_with_high_confidence():
    dump, _ = _attack_capture()
    finding = detect_page_blocking(dump)[0]
    assert finding.confidence == "high"
    assert any("NoInputNoOutput" in text for text in finding.indicators)
    assert any("Create_Connection" in text for text in finding.indicators)


def test_normal_pairing_not_flagged():
    dump = _normal_capture()
    assert detect_page_blocking(dump) == []


def test_detector_works_on_btsnoop_bytes():
    dump, c = _attack_capture(seed=35)
    findings = detect_page_blocking(dump.to_btsnoop_bytes())
    assert findings and findings[0].peer == c.bd_addr


def test_incoming_connection_without_pairing_not_flagged():
    """Merely accepting a connection (e.g. an accessory reconnecting)
    is normal; the signature needs the local pairing on top."""
    world = build_world(WorldConfig(seed=36))
    m, c, a = standard_cast(world)
    dump = HciDump().attach(m.transport)
    op = c.host.gap.connect(m.bd_addr)  # inbound at M, no pairing
    world.run_for(5.0)
    assert op.success
    assert detect_page_blocking(dump) == []


def test_finding_str_is_informative():
    dump, c = _attack_capture(seed=37)
    text = str(detect_page_blocking(dump)[0])
    assert str(c.bd_addr) in text and "high" in text
