"""Run reports: Wilson intervals, Markdown/HTML rendering, determinism."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, ResultCache
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    PAPER_TABLE1_SU,
    PAPER_TABLE2_BASELINE,
    generate_report,
    render_html,
    render_markdown,
    wilson_interval,
)


class TestWilsonInterval:
    def test_empty_sample_is_degenerate(self):
        assert wilson_interval(0, 0) == (0.0, 0.0)

    def test_all_successes_does_not_collapse_to_one(self):
        low, high = wilson_interval(10, 10)
        assert high == pytest.approx(1.0)
        assert low == pytest.approx(0.7225, abs=5e-4)

    def test_all_failures_mirrors_all_successes(self):
        low, high = wilson_interval(0, 10)
        mlow, mhigh = wilson_interval(10, 10)
        assert low == pytest.approx(0.0)
        assert high == pytest.approx(1.0 - mlow)

    def test_half_is_symmetric_around_half(self):
        low, high = wilson_interval(50, 100)
        assert low == pytest.approx(1.0 - high)
        assert low < 0.5 < high

    def test_more_trials_tighten_the_interval(self):
        low10, high10 = wilson_interval(5, 10)
        low1000, high1000 = wilson_interval(500, 1000)
        assert high1000 - low1000 < high10 - low10

    def test_bounds_stay_in_unit_interval(self):
        for s, n in [(0, 1), (1, 1), (3, 7), (99, 100)]:
            low, high = wilson_interval(s, n)
            assert 0.0 <= low <= high <= 1.0


def _synthetic_data():
    registry = MetricsRegistry()
    hist = registry.histogram("sim.callback_wall_s")
    for i in range(1, 101):
        hist.observe(i / 1000.0)
    # One nested chain pairing > inquiry > page: wall per span type
    # plus the self-time families the attribution section reads.  Self
    # totals (9.2 + 0.28 + 0.01) stay below the root wall total (9.5).
    for name, values in [
        ("span.pairing_s", [0.5, 1.0, 8.0]),
        ("span.inquiry_s", [0.1, 0.2]),
        ("span.page_s", [0.01]),
        ("spanself.pairing_s", [0.4, 0.9, 7.9]),
        ("spanself.inquiry_s", [0.09, 0.19]),
        ("spanself.page_s", [0.01]),
        ("spantree.pairing_s", [0.4, 0.9, 7.9]),
        ("spantree.pairing;inquiry_s", [0.09, 0.19]),
        ("spantree.pairing;inquiry;page_s", [0.01]),
    ]:
        h = registry.histogram(name)
        for value in values:
            h.observe(value)
    return {
        "trials": 10,
        "table1": [
            {
                "key": "nexus_5x_android8",
                "os": "Android 8",
                "stack": "bluedroid",
                "device": "Nexus 5X",
                "channel": "hci_injection",
                "su_required": False,
                "su_paper": PAPER_TABLE1_SU["nexus_5x_android8"],
                "vulnerable": True,
            },
        ],
        "table2": [
            {
                "key": "galaxy_s8_android9",
                "device": "Galaxy S8 (Android 9)",
                "paper_baseline": PAPER_TABLE2_BASELINE["galaxy_s8_android9"],
                "baseline_successes": 4,
                "blocked_successes": 10,
                "trials": 10,
            },
        ],
        "scenarios": {
            "baseline-race": {"trials": 10, "successes": 4, "errors": 0},
            "page-blocking": {"trials": 10, "successes": 10, "errors": 0},
        },
        "metrics": registry.snapshot(),
    }


class TestRenderMarkdown:
    def test_tables_and_paper_columns_render(self):
        text = render_markdown(_synthetic_data())
        assert "# BLAP campaign run report" in text
        assert "## Table I" in text and "## Table II" in text
        assert "| Nexus 5X | Android 8 | bluedroid | hci_injection |" in text
        # paper baseline 42% next to ours 40% with a Wilson CI
        assert "| 42% | 40% | [17%, 69%] | 100% | 100% |" in text
        assert "| page-blocking | 10 | 10 | 100% |" in text

    def test_metric_quantiles_come_from_the_digest(self):
        text = render_markdown(_synthetic_data())
        assert "## Metric quantiles (merged digests)" in text
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("| sim.callback_wall_s ")
        )
        cells = [c.strip() for c in line.strip("|").split("|")]
        # name, count, mean, p50, p90, p99, max
        assert cells[1] == "100"
        assert float(cells[3]) == pytest.approx(0.0505, rel=0.05)
        assert float(cells[6]) == pytest.approx(0.1, rel=1e-6)

    def test_attribution_tree_hierarchical_and_capped(self):
        text = render_markdown(_synthetic_data(), top_spans=2)
        assert "## Self-time attribution (merged span trees)" in text
        # the old wall-total ranking double-counted parents; gone
        assert "slowest span types" not in text
        lines = [ln for ln in text.splitlines() if ln.startswith("| ")]
        rows = [
            ln for ln in lines
            if ln.startswith(("| pairing ", "| · "))
        ]
        assert len(rows) == 2
        assert rows[0].startswith("| pairing ")
        assert rows[1].startswith("| · inquiry ")
        assert "(1 deeper paths elided)" in text

    def test_attribution_self_total_bounded_by_root_wall(self):
        from repro.obs.report import collect_attribution

        attribution = collect_attribution(
            _synthetic_data()["metrics"]["histograms"]
        )
        assert attribution["rows"]
        assert attribution["total_self_s"] == pytest.approx(9.49)
        assert attribution["total_self_s"] <= attribution["root_wall_s"]
        assert attribution["root_wall_s"] == pytest.approx(9.5)

    def test_optional_sections_render_when_given(self):
        roc = {
            "rate-anomaly": {
                "attack": "page-blocking",
                "operating_point": {
                    "threshold": 0.5,
                    "tpr": 0.95,
                    "fpr": 0.02,
                    "mean_latency_s": 1.25,
                },
            }
        }
        bench = {"sim": {"hot_loop": {"events_per_s": 125000.0, "events": 9}}}
        telemetry = [
            {
                "scenario": "baseline-race",
                "seed": seed,
                "success": seed % 2 == 0,
                "outcome": "mitm",
                "wall_time_s": 0.1 * seed,
                "cached": seed == 0,
            }
            for seed in range(4)
        ]
        text = render_markdown(
            _synthetic_data(), roc=roc, bench=bench, telemetry=telemetry
        )
        assert "## Detector operating points" in text
        assert "| rate-anomaly | page-blocking | 0.5 | 95% | 2% | 1.25s |" in text
        assert "### BENCH_sim" in text
        assert "| hot_loop | events_per_s | 125000 |" in text
        assert "## Run telemetry" in text
        assert "4 trial records (2 successes, 1 cache hits)" in text
        # slowest trial listed first
        slow = text.split("Slowest trials:")[1]
        assert slow.index("| baseline-race | 3 ") < slow.index(
            "| baseline-race | 2 "
        )

    def test_optional_sections_absent_by_default(self):
        text = render_markdown(_synthetic_data())
        for heading in (
            "## Detector operating points",
            "## Benchmark numbers",
            "## Run telemetry",
        ):
            assert heading not in text

    def test_render_is_pure(self):
        data = _synthetic_data()
        assert render_markdown(data) == render_markdown(data)


class TestRenderJson:
    def test_payload_shape_and_determinism(self):
        from repro.obs.report import render_json

        data = _synthetic_data()
        text = render_json(data)
        assert text == render_json(data)
        payload = json.loads(text)
        assert payload["format"] == 1
        assert payload["trials"] == 10
        assert payload["table2"][0]["blocked_successes"] == 10
        attribution = payload["attribution"]
        assert attribution["total_self_s"] <= attribution["root_wall_s"]
        paths = [tuple(row["path"]) for row in attribution["rows"]]
        assert ("pairing", "inquiry", "page") in paths
        # optional sections absent unless provided
        for key in ("roc", "bench", "telemetry"):
            assert key not in payload

    def test_optional_sections_included(self):
        from repro.obs.report import render_json

        payload = json.loads(
            render_json(
                _synthetic_data(),
                bench={"sim": {"hot_loop": {"events_per_s": 1.0}}},
                telemetry=[
                    {"scenario": "extraction", "seed": 1, "success": True,
                     "wall_time_s": 0.1, "cached": False},
                ],
            )
        )
        assert payload["bench"]["sim"]["hot_loop"]["events_per_s"] == 1.0
        assert payload["telemetry"]["trials"] == 1


class TestRenderHtml:
    def test_headings_tables_and_escaping(self):
        markdown = "\n".join(
            [
                "# Title <x>",
                "",
                "Some & prose.",
                "",
                "| A | B |",
                "| --- | --- |",
                "| 1 | <2> |",
            ]
        )
        html = render_html(markdown, title="a < b")
        assert "<title>a &lt; b</title>" in html
        assert "<h1>Title &lt;x&gt;</h1>" in html
        assert "<p>Some &amp; prose.</p>" in html
        assert "<tr><th>A</th><th>B</th></tr>" in html
        assert "<tr><td>1</td><td>&lt;2&gt;</td></tr>" in html
        assert "---" not in html  # separator row consumed

    def test_full_report_roundtrip(self):
        html = render_html(render_markdown(_synthetic_data()))
        assert html.startswith("<!doctype html>")
        assert "<h2>Table I — link key extraction across the device fleet</h2>" in html
        assert "<table>" in html


class TestGenerateReport:
    def test_report_is_deterministic_from_a_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = generate_report(
            CampaignRunner(workers=2, cache=cache), trials=2
        )
        warm = generate_report(
            CampaignRunner(workers=1, cache=cache), trials=2
        )
        assert warm == cold
        assert "## Table I" in warm and "## Table II" in warm
        from repro.devices.catalog import TABLE1_DEVICE_SPECS, TABLE2_DEVICE_SPECS

        for spec in (*TABLE1_DEVICE_SPECS, *TABLE2_DEVICE_SPECS):
            assert spec.marketing_name in warm
        assert "Self-time attribution" in warm

    def test_artifact_sections_are_wired_through(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BLAP_BENCH_DIR", str(tmp_path / "bench"))
        from repro.core.bench import record_bench

        record_bench("demo", "loop", {"wall_s": 0.5})
        roc_path = tmp_path / "roc.json"
        roc_path.write_text(json.dumps({
            "burst": {
                "attack": "page-blocking",
                "operating_point": {"threshold": 1.0, "tpr": 1.0, "fpr": 0.0},
            }
        }))
        run_dir = tmp_path / "runs" / "r1"
        run_dir.mkdir(parents=True)
        (run_dir / "telemetry.jsonl").write_text(
            json.dumps({
                "scenario": "extraction", "seed": 7, "success": True,
                "outcome": "key", "wall_time_s": 0.01, "cached": False,
            }) + "\n"
        )
        cache = ResultCache(tmp_path / "cache")
        text = generate_report(
            CampaignRunner(workers=1, cache=cache),
            trials=1,
            roc_path=roc_path,
            bench_directory=tmp_path / "bench",
            run_dir=run_dir,
            html=True,
        )
        assert "<h3>BENCH_demo</h3>" in text
        assert "<h2>Detector operating points</h2>" in text
        assert "<h2>Run telemetry</h2>" in text
