"""Chaos smoke: an 8-trial degraded-race slice under the canned lossy
plan.  CI runs this job to prove fault-injected campaigns stay
deterministic and error-free — the robustness-sweep contract."""

from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec
from repro.faults import FaultPlan

PLAN_PATH = Path(__file__).resolve().parent.parent / "examples/plans/lossy.json"
TRIALS = 8


def _run_slice():
    # Degradation comes only from the canned plan — the scenario's own
    # loss/jitter knobs are zeroed so the attacker wins a deterministic
    # *mix* of trials (an 8/8 or 0/8 vector would be a weak replay
    # check).
    spec = CampaignSpec(
        "degraded-race",
        seeds=range(TRIALS),
        params={"loss_rate": 0.0, "jitter_probability": 0.0},
        fault_plan=FaultPlan.from_file(PLAN_PATH),
    )
    return CampaignRunner(workers=1, timeout_s=None).run(spec)


def test_canned_plan_parses():
    plan = FaultPlan.from_file(PLAN_PATH)
    assert plan.name == "lossy-rf" and len(plan) == 2


def test_degraded_slice_completes_without_errors():
    result = _run_slice()
    assert result.trials == TRIALS
    assert result.errors == []
    outcomes = {trial.outcome for trial in result.results}
    assert outcomes == {"mitm", "lost"}  # a genuine mix, not all-or-nothing
    for trial in result.results:
        assert "faults_injected" in trial.detail
        assert trial.detail["faults_injected"]["counts"]


def test_degraded_slice_outcomes_are_deterministic():
    first = _run_slice()
    second = _run_slice()
    fingerprint = lambda r: [  # noqa: E731 - tiny local helper
        (t.seed, t.success, t.outcome, t.detail) for t in r.results
    ]
    assert fingerprint(first) == fingerprint(second)
