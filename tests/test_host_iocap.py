"""Unit tests for the Fig. 7 IO-capability / association-model mapping."""

import pytest

from repro.core.types import AssociationModel, BluetoothVersion, IoCapability
from repro.host.iocap import (
    ConfirmationBehavior,
    association_model,
    confirmation_behavior,
    confirmation_matrix,
    render_confirmation_matrix,
)

DYN = IoCapability.DISPLAY_YES_NO
NIO = IoCapability.NO_INPUT_NO_OUTPUT
KBD = IoCapability.KEYBOARD_ONLY
DSP = IoCapability.DISPLAY_ONLY


class TestAssociationModel:
    def test_both_display_yesno_numeric_comparison(self):
        assert association_model(DYN, DYN) is AssociationModel.NUMERIC_COMPARISON

    @pytest.mark.parametrize("other", [DYN, NIO, KBD, DSP])
    def test_any_noinput_forces_just_works(self, other):
        assert association_model(NIO, other) is AssociationModel.JUST_WORKS
        assert association_model(other, NIO) is AssociationModel.JUST_WORKS

    def test_keyboard_gives_passkey_entry(self):
        assert association_model(KBD, DYN) is AssociationModel.PASSKEY_ENTRY

    def test_display_only_pair_degrades_to_just_works(self):
        assert association_model(DSP, DYN) is AssociationModel.JUST_WORKS


class TestConfirmationBehaviorV42:
    V = BluetoothVersion.V4_2

    def test_numeric_comparison_pops_number_both_sides(self):
        assert (
            confirmation_behavior(self.V, DYN, DYN, True)
            is ConfirmationBehavior.POPUP_WITH_NUMBER
        )
        assert (
            confirmation_behavior(self.V, DYN, DYN, False)
            is ConfirmationBehavior.POPUP_WITH_NUMBER
        )

    def test_justworks_initiator_auto_confirms_silently(self):
        """≤4.2: no mandated popup — the initiator pairs silently."""
        assert (
            confirmation_behavior(self.V, DYN, NIO, True)
            is ConfirmationBehavior.AUTO_CONFIRM
        )

    def test_justworks_responder_still_notifies(self):
        assert (
            confirmation_behavior(self.V, DYN, NIO, False)
            is ConfirmationBehavior.POPUP_YES_NO
        )

    def test_noinput_device_always_auto(self):
        assert (
            confirmation_behavior(self.V, NIO, DYN, True)
            is ConfirmationBehavior.AUTO_CONFIRM
        )


class TestConfirmationBehaviorV50:
    V = BluetoothVersion.V5_0

    def test_justworks_initiator_must_popup(self):
        """5.0+: DisplayYesNo devices must ask — but without the value."""
        assert (
            confirmation_behavior(self.V, DYN, NIO, True)
            is ConfirmationBehavior.POPUP_YES_NO
        )

    def test_popup_has_no_confirmation_value(self):
        behavior = confirmation_behavior(self.V, DYN, NIO, True)
        assert behavior is not ConfirmationBehavior.POPUP_WITH_NUMBER

    def test_noinput_auto_regardless_of_version(self):
        assert (
            confirmation_behavior(self.V, NIO, DYN, False)
            is ConfirmationBehavior.AUTO_CONFIRM
        )

    def test_passkey_sides(self):
        assert (
            confirmation_behavior(self.V, KBD, DYN, True)
            is ConfirmationBehavior.PASSKEY_INPUT
        )
        assert (
            confirmation_behavior(self.V, DYN, KBD, False)
            is ConfirmationBehavior.PASSKEY_DISPLAY
        )


class TestMatrix:
    def test_matrix_has_four_cells(self):
        rows = confirmation_matrix(BluetoothVersion.V5_0)
        assert len(rows) == 4

    def test_both_noinput_cell_is_double_auto(self):
        rows = confirmation_matrix(BluetoothVersion.V4_2)
        cell = [r for r in rows if r[0] == r[1] == "NoInputNoOutput"][0]
        assert cell[3] == cell[4] == ConfirmationBehavior.AUTO_CONFIRM.value

    def test_version_split_changes_initiator_cell(self):
        """The exact delta between Fig. 7a and Fig. 7b."""
        old = {
            (r[0], r[1]): r[3] for r in confirmation_matrix(BluetoothVersion.V4_2)
        }
        new = {
            (r[0], r[1]): r[3] for r in confirmation_matrix(BluetoothVersion.V5_0)
        }
        cell = ("NoInputNoOutput", "DisplayYesNo")  # responder NIO, initiator DYN
        assert old[cell] == ConfirmationBehavior.AUTO_CONFIRM.value
        assert new[cell] == ConfirmationBehavior.POPUP_YES_NO.value

    def test_render_contains_headers(self):
        text = render_confirmation_matrix(BluetoothVersion.V5_0)
        assert "Responder" in text and "Initiator" in text
        assert "just_works" in text
