"""Unit tests for the radio medium: inquiry, paging, the race, links."""

from dataclasses import dataclass, field
from typing import List, Optional

import pytest

from repro.core.types import BdAddr
from repro.phy.medium import AirFrame, PhysicalLink, RadioMedium
from repro.sim.eventloop import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class FakeController:
    """A minimal RadioPeer for medium-level tests."""

    name: str
    addr: BdAddr
    page_scan: bool = True
    inquiry_scan: bool = True
    scan_interval: float = 1.28
    cod: int = 0x5A020C
    pages_received: List[str] = field(default_factory=list)
    frames: List[AirFrame] = field(default_factory=list)
    drops: List[int] = field(default_factory=list)
    link: Optional[PhysicalLink] = None

    @property
    def bd_addr(self) -> BdAddr:
        return self.addr

    @property
    def inquiry_scan_enabled(self) -> bool:
        return self.inquiry_scan

    @property
    def page_scan_enabled(self) -> bool:
        return self.page_scan

    @property
    def page_scan_interval_s(self) -> float:
        return self.scan_interval

    @property
    def class_of_device_value(self) -> int:
        return self.cod

    def on_page_reached(self, link, initiator):
        self.pages_received.append(initiator.name)
        self.link = link

    def on_air_frame(self, link, frame):
        self.frames.append(frame)

    def on_link_dropped(self, link, reason):
        self.drops.append(reason)


def _world(seed=0):
    sim = Simulator()
    medium = RadioMedium(sim, RngRegistry(seed))
    return sim, medium


def _addr(suffix: int) -> BdAddr:
    return BdAddr(bytes([0, 0, 0, 0, 0, suffix]))


class TestInquiry:
    def test_discoverable_peers_respond(self):
        sim, medium = _world()
        src = FakeController("src", _addr(1))
        peer = FakeController("peer", _addr(2))
        hidden = FakeController("hidden", _addr(3), inquiry_scan=False)
        for controller in (src, peer, hidden):
            medium.register(controller)
        responses, complete = [], []
        medium.start_inquiry(src, 2.0, responses.append, lambda: complete.append(1))
        sim.run()
        assert [str(r.bd_addr) for r in responses] == [str(peer.addr)]
        assert complete == [1]

    def test_out_of_range_peers_silent(self):
        sim, medium = _world()
        src = FakeController("src", _addr(1))
        peer = FakeController("peer", _addr(2))
        medium.register(src)
        medium.register(peer)
        medium.set_in_range(src, peer, False)
        responses = []
        medium.start_inquiry(src, 2.0, responses.append, lambda: None)
        sim.run()
        assert responses == []

    def test_inquiry_response_carries_cod(self):
        sim, medium = _world()
        src = FakeController("src", _addr(1))
        peer = FakeController("peer", _addr(2), cod=0x3C0404)
        medium.register(src)
        medium.register(peer)
        responses = []
        medium.start_inquiry(src, 2.0, responses.append, lambda: None)
        sim.run()
        assert responses[0].class_of_device == 0x3C0404


class TestPaging:
    def test_single_responder_connects(self):
        sim, medium = _world()
        src = FakeController("src", _addr(1))
        target = FakeController("target", _addr(2))
        medium.register(src)
        medium.register(target)
        results = []
        medium.page(src, target.addr, 5.12, results.append)
        sim.run()
        assert len(results) == 1 and results[0] is not None
        assert target.pages_received == ["src"]
        assert medium.active_links == [results[0]]

    def test_no_responder_times_out(self):
        sim, medium = _world()
        src = FakeController("src", _addr(1))
        medium.register(src)
        results = []
        medium.page(src, _addr(9), 5.12, results.append)
        sim.run()
        assert results == [None]
        assert sim.now == pytest.approx(5.12)

    def test_non_scanning_target_unreachable(self):
        sim, medium = _world()
        src = FakeController("src", _addr(1))
        target = FakeController("target", _addr(2), page_scan=False)
        medium.register(src)
        medium.register(target)
        results = []
        medium.page(src, target.addr, 1.0, results.append)
        sim.run()
        assert results == [None]

    def test_spoofed_address_race_is_roughly_fair(self):
        """Two responders with one address: each wins ~half the time."""
        wins = {"real": 0, "spoof": 0}
        for seed in range(200):
            sim, medium = _world(seed)
            src = FakeController("src", _addr(1))
            real = FakeController("real", _addr(2))
            spoof = FakeController("spoof", _addr(2))
            for controller in (src, real, spoof):
                medium.register(controller)
            results = []
            medium.page(src, _addr(2), 5.12, results.append)
            sim.run()
            link = results[0]
            wins[link.responder.name] += 1
        assert wins["real"] + wins["spoof"] == 200
        assert 60 <= wins["spoof"] <= 140  # fair coin ± generous slack

    def test_shorter_scan_interval_wins_more(self):
        """An aggressive scanner (small interval) captures the page."""
        spoof_wins = 0
        for seed in range(100):
            sim, medium = _world(seed)
            src = FakeController("src", _addr(1))
            real = FakeController("real", _addr(2), scan_interval=1.28)
            spoof = FakeController("spoof", _addr(2), scan_interval=0.16)
            for controller in (src, real, spoof):
                medium.register(controller)
            results = []
            medium.page(src, _addr(2), 5.12, results.append)
            sim.run()
            if results[0].responder.name == "spoof":
                spoof_wins += 1
        assert spoof_wins >= 85


class TestLinks:
    def _linked(self):
        sim, medium = _world()
        a = FakeController("a", _addr(1))
        b = FakeController("b", _addr(2))
        medium.register(a)
        medium.register(b)
        results = []
        medium.page(a, b.addr, 5.12, results.append)
        sim.run()
        return sim, medium, a, b, results[0]

    def test_frames_flow_both_ways(self):
        sim, medium, a, b, link = self._linked()
        medium.send_frame(link, a, AirFrame(kind="lmp", payload="ping"))
        medium.send_frame(link, b, AirFrame(kind="lmp", payload="pong"))
        sim.run()
        assert b.frames[0].payload == "ping"
        assert a.frames[0].payload == "pong"

    def test_peer_of(self):
        _, _, a, b, link = self._linked()
        assert link.peer_of(a) is b and link.peer_of(b) is a
        outsider = FakeController("x", _addr(9))
        with pytest.raises(ValueError):
            link.peer_of(outsider)

    def test_drop_notifies_both_ends(self):
        sim, medium, a, b, link = self._linked()
        medium.drop_link(link, 0x08)
        sim.run()
        assert a.drops == [0x08] and b.drops == [0x08]
        assert not link.alive
        assert medium.active_links == []

    def test_frames_after_drop_are_lost(self):
        sim, medium, a, b, link = self._linked()
        medium.drop_link(link, 0x08)
        medium.send_frame(link, a, AirFrame(kind="acl", payload=b"late"))
        sim.run()
        assert b.frames == []

    def test_air_sniffer_sees_everything(self):
        sim, medium, a, b, link = self._linked()
        captured = []
        medium.add_air_sniffer(
            lambda t, lid, sender, frame: captured.append((sender, frame.payload))
        )
        medium.send_frame(link, a, AirFrame(kind="lmp", payload="secret"))
        sim.run()
        assert captured == [("a", "secret")]

    def test_double_drop_is_idempotent(self):
        sim, medium, a, b, link = self._linked()
        medium.drop_link(link, 0x08)
        medium.drop_link(link, 0x13)
        sim.run()
        assert a.drops == [0x08]


class TestSnifferFilterOrdering:
    """Passive sniffers observe frames *before* fault filters touch
    them: a dropped or mutated frame was still transmitted, so air
    captures and the detection feed always see the original."""

    def _linked(self):
        sim, medium = _world()
        a = FakeController("a", _addr(1))
        b = FakeController("b", _addr(2))
        medium.register(a)
        medium.register(b)
        results = []
        medium.page(a, b.addr, 5.12, results.append)
        sim.run()
        return sim, medium, a, b, results[0]

    def _capture(self, medium):
        captured = []
        medium.add_air_sniffer(
            lambda t, lid, sender, frame: captured.append(
                (sender, frame.kind, frame.payload)
            )
        )
        return captured

    def test_sniffer_sees_dropped_data_frame(self):
        from repro.phy.medium import FrameFate

        sim, medium, a, b, link = self._linked()
        captured = self._capture(medium)
        medium.add_frame_fault_filter(
            lambda now, lnk, sender, frame: FrameFate(action="drop")
        )
        medium.send_frame(link, a, AirFrame(kind="acl", payload=b"gone"))
        sim.run()
        assert b.frames == []  # the receiver never got it
        assert captured == [("a", "acl", b"gone")]  # the sniffer did

    def test_sniffer_sees_pre_mutation_payload(self):
        from repro.phy.medium import FrameFate

        sim, medium, a, b, link = self._linked()
        captured = self._capture(medium)
        medium.add_frame_fault_filter(
            lambda now, lnk, sender, frame: FrameFate(
                action="mutate", payload=b"garbled"
            )
        )
        medium.send_frame(link, a, AirFrame(kind="acl", payload=b"original"))
        sim.run()
        assert b.frames[0].payload == b"garbled"  # receiver: mutated
        assert captured == [("a", "acl", b"original")]  # sniffer: original

    def test_sniffer_sees_lost_page_train(self):
        from repro.phy.medium import FrameFate

        sim, medium = _world()
        a = FakeController("a", _addr(1))
        b = FakeController("b", _addr(2))
        medium.register(a)
        medium.register(b)
        captured = self._capture(medium)
        medium.add_frame_fault_filter(
            lambda now, lnk, sender, frame: FrameFate(
                action="drop" if frame.kind == "page" else "deliver"
            )
        )
        results = []
        medium.page(a, b.addr, 5.12, results.append)
        sim.run()
        assert results == [None]  # nobody heard the page
        assert ("a", "page", b"") in captured  # but it was transmitted

    def test_sniffer_sees_page_train_and_responses(self):
        sim, medium = _world()
        a = FakeController("a", _addr(1))
        b = FakeController("b", _addr(2))
        medium.register(a)
        medium.register(b)
        captured = self._capture(medium)
        results = []
        medium.page(a, b.addr, 5.12, results.append)
        sim.run()
        assert results[0] is not None
        kinds = [(sender, kind) for sender, kind, _ in captured]
        assert kinds == [("a", "page"), ("b", "page-response")]
