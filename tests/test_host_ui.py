"""Unit tests for the scripted user model (§V-B2 reasoning)."""

import random

from repro.core.types import BdAddr
from repro.host.ui import UserModel

ADDR = BdAddr.parse("aa:bb:cc:dd:ee:01")
OTHER = BdAddr.parse("aa:bb:cc:dd:ee:02")


def _user(**kwargs) -> UserModel:
    return UserModel(rng=random.Random(0), **kwargs)


def test_accepts_popup_right_after_initiating_pairing():
    user = _user()
    user.note_pairing_initiated(ADDR, now=10.0)
    assert user.decide_confirmation(ADDR, None, now=11.0)


def test_rejects_unexpected_popup():
    user = _user()
    assert not user.decide_confirmation(ADDR, 123456, now=5.0)


def test_cannot_distinguish_spoofed_peer():
    """The popup shows no address: intent for C accepts A's pairing."""
    user = _user()
    user.note_pairing_initiated(ADDR, now=0.0)
    assert user.decide_confirmation(OTHER, None, now=1.0)


def test_intent_expires():
    user = _user()
    user.note_pairing_initiated(ADDR, now=0.0)
    assert not user.decide_confirmation(ADDR, None, now=UserModel.INTENT_WINDOW + 1)


def test_clear_intent():
    user = _user()
    user.note_pairing_initiated(ADDR, now=0.0)
    user.clear_intent()
    assert not user.decide_confirmation(ADDR, None, now=1.0)


def test_paranoid_user_rejects_valueless_popup():
    user = _user(paranoid=True)
    user.note_pairing_initiated(ADDR, now=0.0)
    assert not user.decide_confirmation(ADDR, None, now=1.0)


def test_paranoid_user_accepts_numeric_comparison():
    user = _user(paranoid=True)
    user.note_pairing_initiated(ADDR, now=0.0)
    assert user.decide_confirmation(ADDR, 123456, now=1.0)


def test_popup_statistics():
    user = _user()
    user.note_pairing_initiated(ADDR, now=0.0)
    user.decide_confirmation(ADDR, None, now=1.0)
    user.clear_intent()
    user.decide_confirmation(ADDR, None, now=2.0)
    assert user.popups_seen == 2
    assert user.popups_accepted == 1


def test_decision_delay_is_positive_and_bounded():
    user = _user(reaction_time=0.8)
    for _ in range(50):
        delay = user.decision_delay()
        assert 0.8 * 0.6 <= delay <= 0.8 * 1.8
