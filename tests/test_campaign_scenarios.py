"""Equivalence tests: every scenario matches its legacy entrypoint.

The scenario wrappers must not drift from the attack classes and free
functions they wrap — same seed, same world construction, same verdict.
Each test replays fixed seeds through both paths and compares.
"""

from __future__ import annotations

import json

import pytest

from repro.attacks.baseline import run_baseline_trial
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.campaign import get_scenario, run_trial, scenario_names
from repro.devices.catalog import GALAXY_S8, LG_VELVET

EXPECTED_SCENARIOS = [
    "baseline-race",
    "blurtooth-bredr-to-le",
    "blurtooth-le-to-bredr",
    "degraded-race",
    "detection-ambient",
    "detection-attack",
    "detection-benign",
    "eavesdrop",
    "exfiltration",
    "extraction",
    "extraction-ambient",
    "knob",
    "page-blocking",
    "page-blocking-ambient",
    "pin-crack",
]


def test_registry_lists_every_attack():
    assert [n for n in scenario_names() if not n.startswith("test-")] == (
        EXPECTED_SCENARIOS
    )


def test_every_result_is_json_serialisable():
    for name in EXPECTED_SCENARIOS:
        params = {"pin": "0042"} if name == "pin-crack" else None
        result, metrics = run_trial(name, seed=11, params=params)
        assert result.error is None, f"{name}: {result.error}"
        json.dumps(result.to_dict())
        json.dumps(metrics)


class TestBaselineEquivalence:
    def test_matches_run_baseline_trial_over_seeds(self):
        for seed in range(2000, 2010):
            legacy = run_baseline_trial(LG_VELVET, seed=seed)
            result, _ = run_trial("baseline-race", seed=seed)
            assert result.success == legacy.attacker_won, seed
            assert result.detail["connected"] == legacy.connected, seed

    def test_matches_for_other_victim_device(self):
        for seed in (12000, 12001, 12002):
            legacy = run_baseline_trial(GALAXY_S8, seed=seed)
            result, _ = run_trial(
                "baseline-race",
                seed=seed,
                params={"m_spec": "galaxy_s8_android9"},
            )
            assert result.success == legacy.attacker_won, seed


class TestPageBlockingEquivalence:
    def test_matches_attack_class(self):
        for seed in (52000, 61001):
            world = build_world(WorldConfig(seed=seed))
            m, c, a = standard_cast(world, m_spec=LG_VELVET)
            report = PageBlockingAttack(world, a, c, m).run(
                capture_m_dump=False, run_discovery=False
            )
            result, _ = run_trial("page-blocking", seed=seed)
            assert result.success == report.success, seed
            assert result.detail["paired"] == report.paired, seed
            assert (
                result.detail["downgraded_to_just_works"]
                == report.downgraded_to_just_works
            ), seed


class TestExtractionEquivalence:
    def test_matches_attack_class_including_key(self):
        seed = 1000
        world = build_world(WorldConfig(seed=seed))
        m, c, a = standard_cast(world)
        bond(world, c, m)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=True)

        result, _ = run_trial("extraction", seed=seed)
        assert result.success == report.vulnerable
        assert result.detail["extraction_channel"] == report.extraction_channel
        assert result.detail["su_required"] == report.su_required
        assert result.detail["extracted_key"] == report.extracted_key.hex()


class TestScenarioSemantics:
    """Fixed-seed smoke of the scenarios without a 1:1 legacy function."""

    def test_exfiltration_steals_the_seeded_data(self):
        result, _ = run_trial("exfiltration", seed=21)
        assert result.success
        assert result.outcome == "exfiltrated"
        assert result.detail["silent"]
        assert result.detail["phonebook"] == [
            {"name": "Alice Example", "phone": "+1-555-0100"}
        ]
        assert result.detail["messages"][0]["sender"] == "Alice Example"

    def test_eavesdrop_needs_the_right_key(self):
        result, _ = run_trial("eavesdrop", seed=31)
        assert result.success
        assert result.outcome == "decrypted"
        assert result.detail["decrypted_hit"]
        assert not result.detail["wrong_key_hit"]
        assert result.detail["captured_frames"] > 0

    def test_knob_cracks_one_byte_entropy(self):
        result, _ = run_trial("knob", seed=41)
        assert result.success
        assert result.outcome == "session_cracked"
        assert 1 <= result.detail["candidates_tried"] <= 256

    def test_pin_crack_recovers_the_pin(self):
        result, _ = run_trial("pin-crack", seed=51, params={"pin": "0042"})
        assert result.success
        assert result.outcome == "pin_recovered"
        assert result.detail["pin"] == "0042"
        assert result.detail["key_matches_bond"]

    def test_same_seed_is_deterministic(self):
        first, first_metrics = run_trial("page-blocking", seed=777)
        second, second_metrics = run_trial("page-blocking", seed=777)
        assert first.to_dict()["detail"] == second.to_dict()["detail"]
        assert first.success == second.success
        assert first_metrics["counters"] == second_metrics["counters"]

    def test_unknown_param_is_rejected(self):
        scenario = get_scenario("baseline-race")
        from repro.campaign import TrialConfig

        with pytest.raises(KeyError, match="unknown params"):
            scenario.merged_params(TrialConfig(seed=1, params={"nope": 1}))


class TestWorldConfigDeprecation:
    def test_legacy_seed_spelling_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            world = build_world(seed=1)
        assert world.devices == {}

    def test_legacy_positional_seed_warns(self):
        with pytest.warns(DeprecationWarning):
            build_world(3)

    def test_worldconfig_spelling_is_clean(self, recwarn):
        build_world(WorldConfig(seed=1))
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_worldconfig_plus_legacy_args_rejected(self):
        with pytest.raises(TypeError):
            build_world(WorldConfig(seed=1), max_trace_records=5)

    def test_positional_and_keyword_seed_rejected(self):
        with pytest.raises(TypeError):
            build_world(1, seed=2)

    def test_legacy_and_new_build_identically(self):
        with pytest.warns(DeprecationWarning):
            legacy = build_world(seed=9, max_trace_records=32)
        modern = build_world(WorldConfig(seed=9, max_trace_records=32))
        assert legacy.tracer.max_records == modern.tracer.max_records
        legacy_m, _, _ = standard_cast(legacy)
        modern_m, _, _ = standard_cast(modern)
        assert legacy_m.bd_addr == modern_m.bd_addr
