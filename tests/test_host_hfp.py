"""Tests: the Hands-Free Profile and its abuse with a stolen key."""

import pytest

from repro.attacks.exfiltration import exfiltrate  # noqa: F401 (related API)
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.attacks.attacker import Attacker


@pytest.fixture
def hfp_session(bonded_pair):
    world, m, c = bonded_pair
    op = c.host.hfp.connect(m.bd_addr)
    world.run_for(15.0)
    assert op.success
    return world, m, c


class TestServiceLevelConnection:
    def test_slc_establishes_with_bond(self, hfp_session):
        world, m, c = hfp_session
        assert m.bd_addr in c.host.hfp._client_channels

    def test_slc_refused_without_bond(self, device_pair):
        world, m, c = device_pair
        op = c.host.hfp.connect(m.bd_addr)
        world.run_for(15.0)
        assert op.done and not op.success

    def test_dial_places_call_on_gateway(self, hfp_session):
        world, m, c = hfp_session
        op = c.host.hfp.dial(m.bd_addr, "+1-555-0100")
        world.run_for(5.0)
        assert op.success
        assert m.host.hfp.call_log[-1].number == "+1-555-0100"
        assert m.host.hfp.call_log[-1].direction == "outgoing"
        assert m.host.hfp.audio_connected

    def test_dial_brings_up_sco_on_both_sides(self, hfp_session):
        """The call audio rides a SCO channel negotiated at HCI level."""
        world, m, c = hfp_session
        assert not c.host.hfp.audio_connected
        c.host.hfp.dial(m.bd_addr, "+1-555-0100")
        world.run_for(5.0)
        assert m.host.hfp.audio_connected
        assert c.host.hfp.audio_connected
        m_link = m.controller.link_by_handle(
            m.host.gap.handle_for(c.bd_addr)
        )
        assert m_link.sco_handle is not None

    def test_incoming_ring_delivers_caller_id(self, hfp_session):
        world, m, c = hfp_session
        m.host.hfp.ring("+1-555-0199")
        world.run_for(2.0)
        assert any("+1-555-0199" in e for e in c.host.hfp.caller_id_events)

    def test_clcc_lists_calls(self, hfp_session):
        world, m, c = hfp_session
        c.host.hfp.dial(m.bd_addr, "+1-555-0100")
        world.run_for(5.0)
        op = c.host.hfp.list_calls(m.bd_addr)
        world.run_for(5.0)
        assert op.success
        assert any("+1-555-0100" in line for line in op.result)

    def test_dial_without_slc_fails_fast(self, bonded_pair):
        world, m, c = bonded_pair
        op = c.host.hfp.dial(m.bd_addr, "+1-555-0100")
        assert op.done and not op.success


class TestHfpAbuseWithExtractedKey:
    def test_attacker_places_silent_call(self):
        """With the extracted key, the attacker's fake hands-free unit
        can dial out through the victim's phone — the 'phone call
        conversations' exposure of §IV."""
        world = build_world(WorldConfig(seed=88))
        m, c, a = standard_cast(world)
        bond(world, c, m)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        assert report.extraction_success

        world.set_in_range(c, m, False)
        a.host.drop_link_key_requests = False
        c.host.gap.set_scan_mode(connectable=False, discoverable=False)
        attacker = Attacker(a)
        attacker.spoof_identity(
            c.bd_addr,
            class_of_device=c.controller.class_of_device,
            name=c.controller.local_name,
        )
        attacker.install_fake_bonding(m.bd_addr, report.extracted_key)
        world.run_for(0.5)
        popups_before = m.user.popups_seen

        slc = a.host.hfp.connect(m.bd_addr)
        world.run_for(15.0)
        assert slc.success
        dial = a.host.hfp.dial(m.bd_addr, "+1-900-PREMIUM")
        world.run_for(5.0)
        assert dial.success
        assert m.host.hfp.call_log[-1].number == "+1-900-PREMIUM"
        assert m.user.popups_seen == popups_before  # completely silent
