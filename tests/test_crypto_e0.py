"""Unit + property tests for the E0 stream cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import BdAddr
from repro.crypto.e0 import E0Cipher, e0_encrypt, e0_keystream

ADDR = BdAddr.parse("aa:bb:cc:dd:ee:ff")
KC = b"\x11" * 16

payloads = st.binary(min_size=0, max_size=128)
keys = st.binary(min_size=16, max_size=16)
clocks = st.integers(min_value=0, max_value=2**28)


def test_encrypt_decrypt_roundtrip():
    ciphertext = e0_encrypt(KC, ADDR, 42, b"attack at dawn")
    assert e0_encrypt(KC, ADDR, 42, ciphertext) == b"attack at dawn"


@given(keys, clocks, payloads)
@settings(max_examples=40)
def test_roundtrip_property(kc, clock, payload):
    ciphertext = e0_encrypt(kc, ADDR, clock, payload)
    assert e0_encrypt(kc, ADDR, clock, ciphertext) == payload


def test_wrong_key_does_not_decrypt():
    ciphertext = e0_encrypt(KC, ADDR, 42, b"attack at dawn")
    assert e0_encrypt(b"\x12" * 16, ADDR, 42, ciphertext) != b"attack at dawn"


def test_keystream_depends_on_clock():
    assert e0_keystream(KC, ADDR, 1, 32) != e0_keystream(KC, ADDR, 2, 32)


def test_keystream_depends_on_address():
    other = BdAddr.parse("11:22:33:44:55:66")
    assert e0_keystream(KC, ADDR, 1, 32) != e0_keystream(KC, other, 1, 32)


def test_keystream_is_deterministic():
    assert e0_keystream(KC, ADDR, 7, 64) == e0_keystream(KC, ADDR, 7, 64)


def test_keystream_is_balanced_ish():
    """Roughly half the keystream bits should be set."""
    stream = e0_keystream(KC, ADDR, 3, 2048)
    ones = sum(bin(byte).count("1") for byte in stream)
    total = len(stream) * 8
    assert 0.40 < ones / total < 0.60


def test_keystream_not_short_cycle():
    stream = e0_keystream(KC, ADDR, 3, 256)
    assert stream[:64] != stream[64:128]


def test_cipher_object_is_stateful_stream():
    cipher = E0Cipher(KC, ADDR, 5)
    first = cipher.keystream(16)
    second = cipher.keystream(16)
    assert first != second
    fresh = E0Cipher(KC, ADDR, 5)
    assert fresh.keystream(32) == first + second


def test_bad_key_length_rejected():
    with pytest.raises(ValueError):
        E0Cipher(b"short", ADDR, 0)
