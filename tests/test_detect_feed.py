"""Tests for the DetectionFeed: taps, ordering, degraded input."""

from __future__ import annotations

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.core.types import BdAddr
from repro.detect.feed import DetectionFeed
from repro.hci import events as evt
from repro.transport.base import Direction


class FakeTransport:
    def __init__(self):
        self.taps = []

    def add_tap(self, tap):
        self.taps.append(tap)

    def remove_tap(self, tap):
        self.taps.remove(tap)


def _collect(feed):
    events = []
    feed.subscribe(events.append)
    return events


def test_transport_tap_parses_packets_and_counts_frames():
    feed = DetectionFeed()
    events = _collect(feed)
    transport = FakeTransport()
    feed.tap_transport("M", transport)
    packet = evt.ConnectionRequest(
        bd_addr=BdAddr(b"\x00\x00\x00\x00\x00\x07"),
        class_of_device=0,
        link_type=1,
    )
    transport.taps[0](1.5, Direction.CONTROLLER_TO_HOST, packet.to_h4_bytes())
    transport.taps[0](2.0, Direction.CONTROLLER_TO_HOST, packet.to_h4_bytes())
    assert [e.frame_no for e in events] == [1, 2]  # 1-based, like btsnoop
    assert events[0].channel == "hci"
    assert events[0].kind == "ConnectionRequest"
    assert isinstance(events[0].packet, evt.ConnectionRequest)
    assert events[0].monitor == "M"
    assert events[0].time == 1.5


def test_garbled_packets_become_undecodable_events():
    feed = DetectionFeed()
    events = _collect(feed)
    transport = FakeTransport()
    feed.tap_transport("M", transport)
    transport.taps[0](1.0, Direction.CONTROLLER_TO_HOST, b"\xff\x99\x99")
    assert len(events) == 1
    assert events[0].kind == "undecodable"
    assert events[0].packet is None
    assert feed.undecodable_packets == 1


def test_detach_removes_all_taps():
    feed = DetectionFeed()
    events = _collect(feed)
    transport = FakeTransport()
    feed.tap_transport("M", transport)
    feed.detach()
    assert transport.taps == []
    assert events == []


def test_detect_trace_source_is_never_reingested():
    world = build_world(WorldConfig(seed=5))
    feed = DetectionFeed()
    events = _collect(feed)
    feed.tap_tracer(world.tracer)
    world.tracer.emit(0.0, "detect", "alert", "feedback loop")
    world.tracer.emit(0.0, "phy", "phy-page", "fine")
    assert [e.kind for e in events] == ["phy-page"]


def test_attach_world_roles_filter_and_ordering():
    world = build_world(WorldConfig(seed=6))
    m, c, a = standard_cast(world)
    feed = DetectionFeed()
    events = _collect(feed)
    feed.attach_world(world, roles=["M"])
    PageBlockingAttack(world, a, c, m).run()
    assert events, "a monitored attack produces feed events"
    channels = {e.channel for e in events}
    assert channels == {"hci", "air", "trace"}
    hci_monitors = {e.monitor for e in events if e.channel == "hci"}
    assert hci_monitors == {"M"}  # roles filter held
    # Live streams arrive already ordered by (time, seq).
    keys = [(e.time, e.seq) for e in events]
    assert keys == sorted(keys)
    assert feed.events_published == len(events)


def test_attach_world_all_roles_by_default():
    world = build_world(WorldConfig(seed=7))
    m, c, a = standard_cast(world)
    feed = DetectionFeed()
    events = _collect(feed)
    feed.attach_world(world)
    c.host.gap.connect(m.bd_addr)
    world.run_for(5.0)
    hci_monitors = {e.monitor for e in events if e.channel == "hci"}
    assert {"M", "C"} <= hci_monitors
