"""Detection-subsystem benchmarks (run with ``-m perf``).

Persists the measured numbers to ``BENCH_detect.json`` (see
``repro.core.bench``): monitored-trial wall time, feed throughput in
events/second, and the wall time of a small serial ROC sweep.  The
assertions are generous sanity floors — the artifact is the point.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.runner import run_trial
from repro.core.bench import record_bench

pytestmark = pytest.mark.perf


def test_monitored_trial_throughput():
    # warm-up takes imports out of the measurement
    run_trial("detection-attack", 89_999, params={"attack": "page-blocking"})
    started = time.perf_counter()
    repeats = 5
    events = 0
    for index in range(repeats):
        result, _ = run_trial(
            "detection-attack",
            90_000 + index,
            params={"attack": "page-blocking"},
        )
        assert result.error is None
        events += result.detail["events"]
    elapsed = time.perf_counter() - started
    per_trial = elapsed / repeats
    events_per_s = events / elapsed
    record_bench(
        "detect",
        "monitored_trial",
        {
            "repeats": repeats,
            "trial_s": per_trial,
            "feed_events": events // repeats,
            "feed_events_per_s": events_per_s,
        },
    )
    assert events_per_s > 1_000, (
        f"detection feed throughput {events_per_s:.0f} events/s "
        "is implausibly slow"
    )


def test_small_roc_sweep_wall_time():
    runner = CampaignRunner(workers=1)
    started = time.perf_counter()
    attack = runner.run(
        CampaignSpec(
            "detection-attack",
            seeds=range(91_000, 91_004),
            params={"attack": "page-blocking"},
        )
    )
    benign = runner.run(
        CampaignSpec("detection-benign", seeds=range(92_000, 92_004))
    )
    elapsed = time.perf_counter() - started
    assert not attack.errors and not benign.errors
    record_bench(
        "detect",
        "roc_sweep",
        {
            "attack_trials": attack.trials,
            "benign_trials": benign.trials,
            "wall_s": elapsed,
            "trial_s": elapsed / (attack.trials + benign.trials),
        },
    )
