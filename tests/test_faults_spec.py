"""Tests: fault-plan schema — validation, JSON round-trips, catalogue."""

import json
import random

import pytest

from repro.faults import (
    INJECTION_POINTS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    get_point,
    point_names,
)


class TestCatalog:
    def test_every_layer_is_represented(self):
        layers = {point.layer for point in INJECTION_POINTS.values()}
        assert layers == {"phy", "transport", "controller", "host"}

    def test_point_names_sorted_and_complete(self):
        names = list(point_names())
        assert names == sorted(names)
        assert set(names) == set(INJECTION_POINTS)

    def test_get_point_unknown_lists_known(self):
        with pytest.raises(KeyError) as excinfo:
            get_point("phy.typo")
        assert "phy.frame_loss" in str(excinfo.value)

    def test_scopes_match_layers(self):
        for point in INJECTION_POINTS.values():
            expected = "medium" if point.layer == "phy" else "device"
            assert point.scope == expected, point.name


class TestFaultSpecValidation:
    def test_minimal_probabilistic_spec(self):
        spec = FaultSpec("phy.frame_loss", probability=0.1)
        assert spec.mode == "probabilistic"
        assert spec.active(0.0) and spec.active(1e9)

    def test_unknown_point_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("phy.nonexistent")

    def test_unsupported_mode_rejected(self):
        # phy.blackout is window-only.
        with pytest.raises(FaultPlanError):
            FaultSpec("phy.blackout", mode="probabilistic")

    def test_oneshot_requires_at_s(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("controller.hard_reset", mode="oneshot")
        FaultSpec("controller.hard_reset", mode="oneshot", at_s=3.0)

    def test_at_s_forbidden_outside_oneshot(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("phy.frame_loss", at_s=3.0)

    def test_window_must_be_nonempty(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("phy.blackout", mode="window", start_s=5.0, end_s=5.0)
        FaultSpec("phy.blackout", mode="window", start_s=5.0, end_s=6.0)

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("phy.frame_loss", probability=1.5)
        with pytest.raises(FaultPlanError):
            FaultSpec("phy.frame_loss", probability=-0.1)

    def test_unknown_params_rejected(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultSpec("phy.bit_flip", params={"flops": 2})
        assert "flips" in str(excinfo.value)

    def test_window_activity(self):
        spec = FaultSpec(
            "phy.blackout", mode="window", start_s=2.0, end_s=4.0
        )
        assert not spec.active(1.9)
        assert spec.active(2.0)
        assert not spec.active(4.0)

    def test_oneshot_never_polls_active(self):
        spec = FaultSpec("host.bond_loss", mode="oneshot", at_s=1.0)
        assert not spec.active(1.0)

    def test_certain_probability_needs_no_rng_draw(self):
        spec = FaultSpec("phy.frame_loss", probability=1.0)
        assert spec.fires(0.0, rng=None)  # would raise if it drew

    def test_probabilistic_fires_matches_stream(self):
        spec = FaultSpec("phy.frame_loss", probability=0.5)
        rng_a, rng_b = random.Random(42), random.Random(42)
        fired = [spec.fires(float(i), rng_a) for i in range(50)]
        assert fired == [rng_b.random() < 0.5 for _ in range(50)]
        assert any(fired) and not all(fired)


class TestJsonRoundTrip:
    def test_spec_round_trip(self):
        spec = FaultSpec(
            "transport.garble",
            mode="window",
            start_s=1.0,
            end_s=2.0,
            target="C",
            params={"flips": 3, "direction": "h2c"},
        )
        assert FaultSpec.from_jsonable(spec.to_jsonable()) == spec

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_jsonable({"point": "phy.frame_loss", "prob": 0.5})

    def test_spec_requires_point(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_jsonable({"probability": 0.5})

    def test_plan_round_trip_via_json_text(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("phy.frame_loss", probability=0.05),
                FaultSpec("controller.hard_reset", mode="oneshot", at_s=9.0),
            ),
            name="mixed",
        )
        rebuilt = FaultPlan.from_jsonable(json.loads(plan.canonical_json()))
        assert rebuilt == plan
        assert rebuilt.canonical_json() == plan.canonical_json()

    def test_plan_from_bare_list(self):
        plan = FaultPlan.from_jsonable(
            [{"point": "phy.frame_loss", "probability": 0.3}]
        )
        assert len(plan) == 1 and plan.name == ""

    def test_plan_rejects_garbage(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_jsonable("phy.frame_loss")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_jsonable({"name": "no-faults-key"})


class TestCoerce:
    def test_none_and_empty_normalise_to_none(self):
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce([]) is None
        assert FaultPlan.coerce(FaultPlan()) is None

    def test_plan_passes_through(self):
        plan = FaultPlan(specs=(FaultSpec("host.bond_loss", mode="oneshot", at_s=1.0),))
        assert FaultPlan.coerce(plan) is plan

    def test_list_and_mapping_spellings(self):
        from_list = FaultPlan.coerce([{"point": "phy.frame_loss"}])
        from_map = FaultPlan.coerce(
            {"name": "x", "faults": [{"point": "phy.frame_loss"}]}
        )
        assert from_list.specs == from_map.specs
        assert from_map.name == "x"


class TestFromFile:
    def test_example_plan_loads(self):
        plan = FaultPlan.from_file("examples/plans/lossy.json")
        assert plan.name == "lossy-rf"
        assert [spec.point for spec in plan.specs] == [
            "phy.frame_loss",
            "phy.latency_jitter",
        ]

    def test_invalid_json_reports_path(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_file(bad)
        assert "bad.json" in str(excinfo.value)

    def test_unnamed_plan_defaults_to_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([{"point": "phy.frame_loss"}]))
        plan = FaultPlan.from_file(path)
        assert plan.name == str(path)
