"""Tests: live fault injection — every catalogued point, determinism,
timeline integration and the deprecated ``loss_rate`` shim."""

import math

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8
from repro.faults import TRACE_SOURCE, FaultPlan, apply_fault_plan


def _world(seed, plan=None):
    world = build_world(WorldConfig(seed=seed, fault_plan=plan))
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    return world, m, c


def _pair(world, m, c, budget=60.0):
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    op = m.host.gap.pair(c.bd_addr)
    world.run_for(budget)
    return op


class TestPhyInjectors:
    def test_frame_loss_window_blocks_pairing(self):
        plan = [{"point": "phy.frame_loss", "mode": "window", "start_s": 0.0}]
        world, m, c = _world(seed=1, plan=plan)
        op = _pair(world, m, c)
        assert op.done and not op.success
        assert world.medium.frames_lost > 0
        assert world.faults.counts["phy.frame_loss"] > 0

    def test_blackout_window_then_recovery(self):
        # A blackout that covers the first pairing attempt; afterwards a
        # fresh attempt on the clean channel succeeds.
        plan = [
            {
                "point": "phy.blackout",
                "mode": "window",
                "start_s": 0.0,
                "end_s": 90.0,
            }
        ]
        world, m, c = _world(seed=2, plan=plan)
        first = _pair(world, m, c, budget=90.0)
        assert first.done and not first.success
        second = _pair(world, m, c)
        assert second.success
        edges = [e["edge"] for e in world.faults.events if "edge" in e]
        assert edges == ["open", "close"]

    def test_bit_flip_corrupts_acl_data(self):
        world, m, c = _world(seed=3)
        op = _pair(world, m, c)
        assert op.success
        # Flip every ACL payload from here on; the attack exfil layers
        # checksum their dumps, but here we just prove the hook fires
        # on byte payloads without crashing either stack.
        apply_fault_plan(
            world,
            [
                {
                    "point": "phy.bit_flip",
                    "mode": "window",
                    "start_s": world.simulator.now,
                    "params": {"flips": 3},
                }
            ],
        )
        m.host.gap.connect(c.bd_addr)
        world.run_for(10.0)
        assert world.faults.counts.get("phy.bit_flip", 0) > 0

    def test_latency_jitter_preserves_success(self):
        plan = [
            {
                "point": "phy.latency_jitter",
                "probability": 1.0,
                "params": {"jitter_s": 0.0005},
            }
        ]
        world, m, c = _world(seed=4, plan=plan)
        op = _pair(world, m, c)
        assert op.success
        assert world.faults.counts["phy.latency_jitter"] > 0
        assert world.medium.frames_lost == 0


class TestTransportInjectors:
    def test_stall_window_delays_but_completes(self):
        plan = [
            {
                "point": "transport.stall",
                "mode": "window",
                "start_s": 0.6,
                "end_s": 1.2,
                "target": "C",
            }
        ]
        world, m, c = _world(seed=5, plan=plan)
        op = _pair(world, m, c)
        assert op.success  # packets are parked, not lost
        assert world.faults.counts.get("transport.stall", 0) > 0

    def test_open_ended_stall_kills_the_device(self):
        plan = [
            {
                "point": "transport.stall",
                "mode": "window",
                "start_s": 0.0,
                "target": "C",
            }
        ]
        world, m, c = _world(seed=6, plan=plan)
        op = _pair(world, m, c)
        assert op.done and not op.success

    def test_garble_during_window_breaks_hci(self):
        plan = [
            {
                "point": "transport.garble",
                "mode": "window",
                "start_s": 0.6,
                "end_s": 30.0,
                "target": "M",
                "params": {"flips": 16},
            }
        ]
        world, m, c = _world(seed=7, plan=plan)
        op = _pair(world, m, c)
        assert op.done and not op.success
        assert world.faults.counts["transport.garble"] > 0

    def test_direction_filter_restricts_garbling(self):
        plan = [
            {
                "point": "transport.garble",
                "mode": "window",
                "start_s": 0.0,
                "target": "M",
                "params": {"direction": "h2c"},
            }
        ]
        world, m, c = _world(seed=8, plan=plan)
        _pair(world, m, c)
        for event in world.tracer.records:
            if event.source == TRACE_SOURCE and "flipped" in event.message:
                assert "host->controller" in event.message


class TestControllerInjectors:
    def test_hard_reset_tears_down_links(self):
        plan = [
            {
                "point": "controller.hard_reset",
                "mode": "oneshot",
                "at_s": 8.0,
                "target": "C",
            }
        ]
        world, m, c = _world(seed=9, plan=plan)
        m.host.gap.connect(c.bd_addr)
        world.run_for(5.0)
        assert c.controller._links_by_handle
        world.run_for(10.0)
        assert not c.controller._links_by_handle
        events = [e for e in world.faults.events
                  if e["point"] == "controller.hard_reset"]
        assert len(events) == 1 and events[0]["target"] == "C"

    def test_lmp_hang_window_fails_pairing_cleanly(self):
        plan = [
            {
                "point": "controller.lmp_hang",
                "mode": "window",
                "start_s": 0.0,
                "end_s": 40.0,
                "target": "C",
            }
        ]
        world, m, c = _world(seed=10, plan=plan)
        op = _pair(world, m, c)
        assert op.done and not op.success

    def test_lmp_hang_expires_with_window(self):
        plan = [
            {
                "point": "controller.lmp_hang",
                "mode": "window",
                "start_s": 0.0,
                "end_s": 1.0,
                "target": "C",
            }
        ]
        world, m, c = _world(seed=11, plan=plan)
        world.run_for(2.0)
        assert world.simulator.now >= c.controller.lmp_silence_until
        op = _pair(world, m, c)
        assert op.success

    def test_open_ended_lmp_hang(self):
        plan = [
            {
                "point": "controller.lmp_hang",
                "mode": "window",
                "start_s": 0.0,
                "target": "C",
            }
        ]
        world, m, c = _world(seed=12, plan=plan)
        assert c.controller.lmp_silence_until == math.inf
        op = _pair(world, m, c)
        assert op.done and not op.success


class TestHostInjectors:
    def _bonded_world(self, seed, plan):
        # Stop short of the oneshot at_s=45.0 so each test can observe
        # the pre-fault bonded state first.
        world, m, c = _world(seed=seed, plan=plan)
        op = _pair(world, m, c, budget=40.0)
        assert op.success
        assert world.simulator.now < 45.0
        return world, m, c

    def test_bond_loss_forgets_every_bond(self):
        plan = [
            {
                "point": "host.bond_loss",
                "mode": "oneshot",
                "at_s": 45.0,
                "target": "C",
            }
        ]
        world, m, c = self._bonded_world(13, plan)
        assert c.host.security.keys
        world.run_for(10.0)
        assert not c.host.security.keys
        assert m.host.security.keys  # untargeted device keeps its bond

    def test_bond_corrupt_replaces_link_keys(self):
        plan = [
            {
                "point": "host.bond_corrupt",
                "mode": "oneshot",
                "at_s": 45.0,
                "target": "C",
            }
        ]
        world, m, c = self._bonded_world(14, plan)
        before = {a: r.link_key.value for a, r in c.host.security.keys.items()}
        world.run_for(10.0)
        after = {a: r.link_key.value for a, r in c.host.security.keys.items()}
        assert set(before) == set(after)
        assert all(before[a] != after[a] for a in before)

    def test_stack_restart_reloads_persisted_bonds(self):
        plan = [
            {
                "point": "host.stack_restart",
                "mode": "oneshot",
                "at_s": 45.0,
                "target": "C",
            }
        ]
        world, m, c = self._bonded_world(15, plan)
        before = dict(c.host.security.keys)
        world.run_for(10.0)
        assert dict(c.host.security.keys) == before
        assert world.faults.counts["host.stack_restart"] == 1


class TestDeterminismAndObservability:
    LOSSY = [
        {"point": "phy.frame_loss", "probability": 0.05},
        {
            "point": "phy.latency_jitter",
            "probability": 0.25,
            "params": {"jitter_s": 0.002},
        },
    ]

    def _run(self, seed):
        world, m, c = _world(seed=seed, plan=self.LOSSY)
        op = _pair(world, m, c)
        return op.success, world.medium.frames_lost, world.faults.summary()

    def test_same_seed_same_plan_replays_identically(self):
        for seed in (20, 21, 22):
            assert self._run(seed) == self._run(seed)

    def test_fault_stream_is_seed_dependent(self):
        summaries = {repr(self._run(seed)) for seed in range(30, 36)}
        assert len(summaries) > 1

    def test_fault_events_share_the_world_timeline(self):
        plan = [
            {
                "point": "phy.frame_loss",
                "mode": "window",
                "start_s": 0.6,
                "end_s": 0.8,
            }
        ]
        world, m, c = _world(seed=23, plan=plan)
        _pair(world, m, c)
        sources = {record.source for record in world.tracer.records}
        assert TRACE_SOURCE in sources
        categories = {record.category for record in world.tracer.records}
        assert "fault" in categories

    def test_window_fault_opens_a_span(self):
        plan = [
            {
                "point": "phy.blackout",
                "mode": "window",
                "start_s": 1.0,
                "end_s": 2.0,
            }
        ]
        world, m, c = _world(seed=24, plan=plan)
        world.run_for(5.0)
        spans = [
            span
            for span in world.obs.spans.finished_spans()
            if span.name == "fault:phy.blackout"
        ]
        assert len(spans) == 1
        assert spans[0].duration == pytest.approx(1.0)

    def test_no_plan_worlds_carry_no_fault_machinery(self):
        world, m, c = _world(seed=25)
        assert world.faults is None
        assert not world.medium._frame_fault_filters
        op = _pair(world, m, c)
        assert op.success

    def test_metrics_count_injections(self):
        plan = [{"point": "phy.frame_loss", "probability": 1.0}]
        world, m, c = _world(seed=26, plan=plan)
        _pair(world, m, c, budget=10.0)
        snapshot = world.obs.metrics.snapshot()
        assert snapshot["counters"]["faults.injected"] > 0
