"""Fleet-scaling guard: events/s versus ambient device count.

The population subsystem only earns its keep if the simulator stays
usable at fleet scale — the O(n) page fan-out and sniffer loops in
``phy.medium`` and the event-allocation hot path in ``sim.eventloop``
were rebuilt for exactly this.  This guard pins the scaling curve:
build time and event throughput at 10, 100 and 500 ambient devices,
recorded to ``BENCH_population.json`` / ``BENCH_HISTORY.jsonl`` so
``blap bench compare`` can flag regressions across PRs.

Run with ``-m perf`` (CI's scaling-bench step); deselected from the
functional matrix by ``-m "not perf"``.
"""

from __future__ import annotations

import time

import pytest

from repro.attacks.scenario import WorldConfig, build_world
from repro.core.bench import record_bench
from repro.population import ambient_spec

#: device counts the scaling curve samples
COUNTS = (10, 100, 500)

#: simulated seconds of ambient churn each sample runs
RUN_S = 10.0


def _sample(count: int) -> dict:
    started = time.perf_counter()
    world = build_world(
        WorldConfig(seed=4000 + count, population=ambient_spec(count))
    )
    build_s = time.perf_counter() - started
    base_events = world.simulator.events_processed

    started = time.perf_counter()
    world.run_for(RUN_S)
    run_s = time.perf_counter() - started
    events = world.simulator.events_processed - base_events
    return {
        "devices": count,
        "build_s": build_s,
        "run_s": run_s,
        "events": events,
        "events_per_s": events / run_s if run_s else 0.0,
    }


@pytest.mark.perf
def test_events_per_second_vs_device_count():
    samples = {count: _sample(count) for count in COUNTS}
    for count, sample in samples.items():
        record_bench(
            "population",
            f"scale_{count}",
            {
                "build_s": sample["build_s"],
                "run_s": sample["run_s"],
                "events": sample["events"],
                "events_per_s": sample["events_per_s"],
            },
        )

    # Loose floors — an order of magnitude under current numbers, so
    # only a genuine scaling regression (an O(n) loop creeping back
    # into the medium or the event loop) trips them.
    assert samples[500]["build_s"] < 5.0, samples[500]
    assert samples[500]["events_per_s"] > 5_000, samples[500]
    # Per-event cost must not balloon with fleet size: 500 devices may
    # cost at most 10x the per-event wall time of 10 devices.
    cost_10 = samples[10]["run_s"] / samples[10]["events"]
    cost_500 = samples[500]["run_s"] / samples[500]["events"]
    assert cost_500 < cost_10 * 10, (cost_10, cost_500)
