"""Unit + property tests for the bonding storage backends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filesystem import VirtualFilesystem
from repro.core.types import BdAddr, LinkKey
from repro.host.storage import (
    BluezInfoStore,
    BondingRecord,
    BtConfigStore,
    RegistryStore,
)

ADDR = BdAddr.parse("48:90:11:22:33:44")
KEY = LinkKey.parse("71a70981f30d6af9e20adee8aafe3264")

STORES = [
    (BtConfigStore, "/data/misc/bluedroid/bt_config.conf"),
    (BluezInfoStore, "/var/lib/bluetooth/bonds"),
    (RegistryStore, "HKLM/.../Keys"),
]

addr_strategy = st.binary(min_size=6, max_size=6).map(BdAddr)
key_strategy = st.binary(min_size=16, max_size=16).map(LinkKey)


@pytest.mark.parametrize("store_cls,path", STORES, ids=lambda s: getattr(s, "__name__", s))
class TestAllBackends:
    def _store(self, store_cls, path):
        return store_cls(VirtualFilesystem(), path, requires_su=True)

    def test_roundtrip_single_record(self, store_cls, path):
        store = self._store(store_cls, path)
        store.save({ADDR: BondingRecord(addr=ADDR, link_key=KEY)})
        loaded = store.load()
        assert loaded[ADDR].link_key == KEY

    def test_empty_load(self, store_cls, path):
        assert self._store(store_cls, path).load() == {}

    def test_su_bit_applied(self, store_cls, path):
        store = self._store(store_cls, path)
        store.save({ADDR: BondingRecord(addr=ADDR, link_key=KEY)})
        with pytest.raises(PermissionError):
            store.filesystem.read(path)

    @given(
        st.dictionaries(addr_strategy, key_strategy, min_size=0, max_size=8)
    )
    @settings(max_examples=20)
    def test_roundtrip_property(self, store_cls, path, mapping):
        store = self._store(store_cls, path)
        records = {
            addr: BondingRecord(addr=addr, link_key=key)
            for addr, key in mapping.items()
        }
        store.save(records)
        loaded = store.load()
        assert {a: r.link_key for a, r in loaded.items()} == mapping


class TestBtConfigFormat:
    """The exact Fig. 10 file format details."""

    def _saved_text(self, record):
        fs = VirtualFilesystem()
        store = BtConfigStore(fs, "/bt_config.conf")
        store.save({record.addr: record})
        return fs.read("/bt_config.conf", su=True).decode()

    def test_section_header_is_the_address(self):
        text = self._saved_text(BondingRecord(addr=ADDR, link_key=KEY))
        assert f"[{ADDR}]" in text

    def test_linkkey_line_format(self):
        text = self._saved_text(BondingRecord(addr=ADDR, link_key=KEY))
        assert f"LinkKey = {KEY.hex()}" in text

    def test_pan_service_uuids_serialized(self):
        record = BondingRecord(
            addr=ADDR, link_key=KEY, name="VELVET", services=[0x1115, 0x1116]
        )
        text = self._saved_text(record)
        assert "00001115-0000-1000-8000-00805f9b34fb" in text
        assert "00001116-0000-1000-8000-00805f9b34fb" in text
        assert "Name = VELVET" in text

    def test_services_roundtrip(self):
        fs = VirtualFilesystem()
        store = BtConfigStore(fs, "/bt_config.conf")
        record = BondingRecord(
            addr=ADDR, link_key=KEY, services=[0x1115, 0x1116]
        )
        store.save({ADDR: record})
        assert store.load()[ADDR].services == [0x1115, 0x1116]

    def test_fig10_example_parses(self):
        """Parse a file shaped exactly like the paper's Fig. 10."""
        fs = VirtualFilesystem()
        fs.write_text(
            "/bt_config.conf",
            "[48:90:aa:bb:cc:dd]\n"
            "Name = VELVET\n"
            "Service = 00001115-0000-1000-8000-00805f9b34fb "
            "00001116-0000-1000-8000-00805f9b34fb\n"
            "LinkKey = 71a70981f30d6af9e20adee8aafe3264\n",
        )
        store = BtConfigStore(fs, "/bt_config.conf")
        records = store.load()
        addr = BdAddr.parse("48:90:aa:bb:cc:dd")
        assert records[addr].link_key == KEY
        assert records[addr].name == "VELVET"
        assert records[addr].services == [0x1115, 0x1116]


class TestBluezFormat:
    def test_info_sections_present(self):
        fs = VirtualFilesystem()
        store = BluezInfoStore(fs, "/var/lib/bluetooth/bonds")
        store.save({ADDR: BondingRecord(addr=ADDR, link_key=KEY, name="car")})
        text = fs.read("/var/lib/bluetooth/bonds", su=True).decode()
        assert "[LinkKey]" in text
        assert f"Key={KEY.hex().upper()}" in text


class TestRegistryFormat:
    def test_binary_layout(self):
        fs = VirtualFilesystem()
        store = RegistryStore(fs, "/registry")
        store.save({ADDR: BondingRecord(addr=ADDR, link_key=KEY)})
        blob = fs.read("/registry", su=True)
        assert blob == ADDR.value + KEY.value
