"""Unit tests for span tracing."""

import pytest

from repro.obs.spans import SpanTracker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracker(clock):
    return SpanTracker(clock)


class TestScopedSpans:
    def test_span_times_come_from_the_clock(self, tracker, clock):
        with tracker.span("op") as span:
            clock.now = 2.5
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5

    def test_nesting_sets_parent_and_depth(self, tracker, clock):
        with tracker.span("outer") as outer:
            with tracker.span("inner") as inner:
                pass
        assert inner.parent_seq == outer.seq
        assert inner.depth == outer.depth + 1
        assert tracker.children_of(outer) == [inner]
        assert outer in tracker.roots()

    def test_current_tracks_the_stack(self, tracker):
        assert tracker.current is None
        with tracker.span("outer"):
            with tracker.span("inner") as inner:
                assert tracker.current is inner
        assert tracker.current is None

    def test_exception_still_closes_the_span(self, tracker, clock):
        with pytest.raises(RuntimeError):
            with tracker.span("doomed") as span:
                clock.now = 1.0
                raise RuntimeError("boom")
        assert span.end == 1.0
        assert tracker.current is None

    def test_attrs_and_set_attr(self, tracker):
        with tracker.span("op", source="A", seed=7) as span:
            span.set_attr("outcome", "won")
        assert span.source == "A"
        assert span.attrs == {"seed": 7, "outcome": "won"}

    def test_seq_orders_spans_by_opening(self, tracker):
        with tracker.span("first") as first:
            pass
        with tracker.span("second") as second:
            pass
        assert second.seq > first.seq


class TestDetachedSpans:
    def test_begin_finish(self, tracker, clock):
        span = tracker.begin("page_procedure", source="A")
        clock.now = 3.0
        assert not span.finished
        with pytest.raises(ValueError):
            _ = span.duration
        tracker.finish(span)
        assert span.duration == 3.0

    def test_detached_span_takes_stack_parent_but_never_joins_it(
        self, tracker
    ):
        with tracker.span("attack") as attack:
            detached = tracker.begin("page")
            # the detached span is NOT the current parent...
            with tracker.span("child") as child:
                pass
        assert detached.parent_seq == attack.seq
        assert child.parent_seq == attack.seq
        tracker.finish(detached)

    def test_out_of_order_finish_is_safe(self, tracker, clock):
        a = tracker.begin("a")
        b = tracker.begin("b")
        clock.now = 1.0
        tracker.finish(b)
        clock.now = 2.0
        tracker.finish(a)
        assert b.end == 1.0
        assert a.end == 2.0

    def test_double_finish_keeps_first_end(self, tracker, clock):
        span = tracker.begin("op")
        clock.now = 1.0
        tracker.finish(span)
        clock.now = 9.0
        tracker.finish(span)
        assert span.end == 1.0


class TestQueries:
    def test_finished_spans_excludes_open(self, tracker):
        open_span = tracker.begin("open")
        with tracker.span("closed") as closed:
            pass
        assert tracker.finished_spans() == [closed]
        tracker.finish(open_span)

    def test_by_name(self, tracker):
        with tracker.span("page"):
            pass
        with tracker.span("page"):
            pass
        with tracker.span("auth"):
            pass
        assert len(tracker.by_name("page")) == 2

    def test_clear_keeps_open_spans(self, tracker):
        still_open = tracker.begin("open")
        with tracker.span("done"):
            pass
        tracker.clear()
        assert tracker.spans == [still_open]

    def test_str_of_open_and_closed(self, tracker):
        span = tracker.begin("op")
        assert "open" in str(span)
        tracker.finish(span)
        assert "open" not in str(span)


class TestSimulatedTime:
    def test_spans_key_to_simulator_clock(self):
        from repro.sim.eventloop import Simulator

        sim = Simulator()
        tracker = SpanTracker(lambda: sim.now)
        span = tracker.begin("window")
        sim.schedule(4.0, lambda: tracker.finish(span))
        sim.run()
        assert span.start == 0.0
        assert span.end == 4.0


class TestSpanObserver:
    """The observer hook feeds ``span.<name>_s`` histograms — the run
    report's "slowest spans" table reads the merged result."""

    def _clock(self):
        state = {"now": 0.0}

        def advance(dt):
            state["now"] += dt

        return (lambda: state["now"]), advance

    def test_observer_fires_on_scoped_close(self):
        closed = []
        clock, advance = self._clock()
        tracker = SpanTracker(clock, observer=closed.append)
        with tracker.span("pairing"):
            advance(2.5)
            assert closed == []  # only *closed* spans are observed
        (span,) = closed
        assert span.name == "pairing"
        assert span.end - span.start == 2.5

    def test_observer_fires_once_on_detached_finish(self):
        closed = []
        clock, advance = self._clock()
        tracker = SpanTracker(clock, observer=closed.append)
        span = tracker.begin("page")
        advance(1.0)
        tracker.finish(span)
        tracker.finish(span)  # idempotent: no double observe
        assert len(closed) == 1

    def test_observability_records_span_duration_histograms(self):
        from repro.obs import Observability
        from repro.obs.metrics import MetricsRegistry

        clock, advance = self._clock()
        obs = Observability(clock=clock, registry=MetricsRegistry())
        for dt in (0.5, 1.5):
            with obs.span("pairing"):
                advance(dt)
        with obs.span("inquiry"):
            advance(3.0)
        snap = obs.metrics.snapshot()["histograms"]
        assert snap["span.pairing_s"]["count"] == 2
        assert snap["span.pairing_s"]["sum"] == pytest.approx(2.0)
        assert snap["span.inquiry_s"]["count"] == 1
        assert snap["span.inquiry_s"]["sum"] == pytest.approx(3.0)

    def test_disabled_registry_skips_the_observer_entirely(self):
        from repro.obs import Observability
        from repro.obs.metrics import MetricsRegistry

        clock, advance = self._clock()
        obs = Observability(clock=clock, registry=MetricsRegistry(enabled=False))
        assert obs.spans.observer is None
        with obs.span("pairing"):
            advance(1.0)
        assert obs.metrics.snapshot()["histograms"] == {}
