"""Shared fixtures: simulation worlds and device pairs."""

from __future__ import annotations

import pytest

from repro.attacks.scenario import WorldConfig, World, build_world, standard_cast
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8, build_device
from repro.phy.medium import RadioMedium
from repro.sim.eventloop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Keep ``blap campaign run`` telemetry out of the working tree:
    every test gets a throwaway ``$BLAP_RUNS_DIR``."""
    monkeypatch.setenv("BLAP_RUNS_DIR", str(tmp_path / "runs"))


@pytest.fixture
def world() -> World:
    """An empty deterministic world."""
    return build_world(WorldConfig(seed=1234))


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(99)


@pytest.fixture
def device_pair(world):
    """Two powered-on phones, M and C, in range and ready."""
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    m.power_on()
    c.power_on()
    world.run_for(0.5)
    return world, m, c


@pytest.fixture
def bonded_pair(device_pair):
    """Two devices that completed a legitimate pairing, then disconnected."""
    world, m, c = device_pair
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    assert operation.success, f"fixture pairing failed: {operation.status}"
    m.host.gap.disconnect(c.bd_addr)
    world.run_for(2.0)
    return world, m, c


@pytest.fixture
def cast(world):
    """The full M / C / A attack cast."""
    m, c, a = standard_cast(world)
    return world, m, c, a
