"""Unit tests for the mergeable quantile digest."""

import itertools
import json
import random

import pytest

from repro.obs.digest import DEFAULT_RESOLUTION, QuantileDigest


class TestObserve:
    def test_counts_and_extremes(self):
        digest = QuantileDigest()
        for value in (0.001, 0.5, 30.0):
            digest.observe(value)
        assert digest.count == 3
        assert digest.min == 0.001
        assert digest.max == 30.0

    def test_zero_and_negative_land_in_low_bucket(self):
        digest = QuantileDigest()
        digest.observe(0.0)
        digest.observe(-1.5)
        digest.observe(2.0)
        assert digest.low == 2
        assert digest.count == 3
        assert digest.min == -1.5

    def test_memory_stays_bounded(self):
        """10k samples across 9 decades → a few hundred buckets, not 10k."""
        digest = QuantileDigest()
        rng = random.Random(7)
        for _ in range(10_000):
            digest.observe(10 ** rng.uniform(-7, 2))
        assert digest.count == 10_000
        # ~30 octaves * 32 sub-buckets is the hard ceiling
        assert len(digest) <= 30 * DEFAULT_RESOLUTION

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            QuantileDigest(resolution=0)


class TestQuantile:
    def test_relative_error_within_half_bucket(self):
        digest = QuantileDigest()
        rng = random.Random(11)
        samples = sorted(rng.uniform(0.0001, 10.0) for _ in range(5_000))
        for value in samples:
            digest.observe(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = samples[int(q * (len(samples) - 1))]
            assert digest.quantile(q) == pytest.approx(
                exact, rel=1.5 / DEFAULT_RESOLUTION
            )

    def test_extremes_are_exact(self):
        digest = QuantileDigest()
        for value in (0.003, 0.7, 123.456):
            digest.observe(value)
        assert digest.quantile(0.0) == 0.003
        assert digest.quantile(1.0) == 123.456

    def test_empty_returns_zero(self):
        assert QuantileDigest().quantile(0.5) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QuantileDigest().quantile(1.01)

    def test_low_bucket_resolves_to_min(self):
        digest = QuantileDigest()
        for _ in range(9):
            digest.observe(0.0)
        digest.observe(5.0)
        assert digest.quantile(0.5) == 0.0
        assert digest.quantile(1.0) == 5.0

    def test_single_observation(self):
        digest = QuantileDigest()
        digest.observe(0.042)
        for q in (0.0, 0.5, 1.0):
            assert digest.quantile(q) == 0.042


class TestMerge:
    def _shard(self, seed: int) -> QuantileDigest:
        digest = QuantileDigest()
        rng = random.Random(seed)
        for _ in range(200):
            digest.observe(10 ** rng.uniform(-6, 1))
        return digest

    def test_merge_equals_single_stream(self):
        """A merged pair answers exactly like one digest that saw both
        streams — fixed centroids make the merge loss-free."""
        both = QuantileDigest()
        merged = QuantileDigest()
        for seed in (1, 2):
            shard = QuantileDigest()
            rng = random.Random(seed)
            for _ in range(300):
                value = 10 ** rng.uniform(-6, 1)
                both.observe(value)
                shard.observe(value)
            merged.merge(shard)
        assert merged.to_jsonable() == both.to_jsonable()

    def test_permutation_independent(self):
        shards = [self._shard(seed) for seed in range(4)]
        rendered = {
            json.dumps(
                QuantileDigest()
                .merge(permutation[0])
                .merge(permutation[1])
                .merge(permutation[2])
                .merge(permutation[3])
                .to_jsonable(),
                sort_keys=True,
            )
            for permutation in itertools.permutations(shards)
        }
        assert len(rendered) == 1

    def test_resolution_mismatch_raises(self):
        with pytest.raises(ValueError, match="resolution"):
            QuantileDigest(resolution=32).merge(QuantileDigest(resolution=16))

    def test_merge_returns_self_for_chaining(self):
        digest = QuantileDigest()
        assert digest.merge(self._shard(3)) is digest


class TestRoundTrip:
    def test_jsonable_round_trip_is_lossless(self):
        digest = QuantileDigest()
        rng = random.Random(5)
        for _ in range(500):
            digest.observe(rng.uniform(-0.1, 3.0))
        wire = json.loads(json.dumps(digest.to_jsonable()))
        back = QuantileDigest.from_jsonable(wire)
        assert back.to_jsonable() == digest.to_jsonable()
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert back.quantile(q) == digest.quantile(q)

    def test_empty_round_trip(self):
        wire = QuantileDigest().to_jsonable()
        assert wire["min"] is None and wire["max"] is None
        back = QuantileDigest.from_jsonable(wire)
        assert back.count == 0
        assert back.quantile(0.5) == 0.0
