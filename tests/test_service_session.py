"""Sessions: verdict identity, determinism, budgets, tenancy."""

from __future__ import annotations

import json

import pytest

from repro.campaign.captures import attack_capture, benign_capture
from repro.detect import replay_capture
from repro.service.protocol import capture_events, decode_capture
from repro.service.session import SessionConfig, SessionError, SessionManager


@pytest.fixture(scope="module")
def attack_bytes():
    return attack_capture()


@pytest.fixture(scope="module")
def benign_bytes():
    return benign_capture()


def run_session(manager, capture, **overrides):
    session = manager.open(**overrides)
    for event in capture_events(decode_capture(capture)):
        session.ingest(event)
    return manager.finish(session)


class TestVerdictIdentity:
    def test_session_alerts_identical_to_replay_capture(self, attack_bytes):
        """The golden pin: online scoring ≡ offline replay_capture."""
        offline = replay_capture(attack_bytes)
        verdict = run_session(SessionManager(), attack_bytes)
        assert json.dumps(verdict["alerts"], sort_keys=True) == json.dumps(
            [alert.to_dict() for alert in offline.alerts], sort_keys=True
        )
        assert verdict["detectors"] == [
            detector.name for detector in offline.detectors
        ]

    def test_benign_capture_stays_silent(self, benign_bytes):
        verdict = run_session(SessionManager(), benign_bytes)
        assert verdict["alert_count"] == 0
        assert all(
            score == 0.0 for score in verdict["max_scores"].values()
        )

    def test_verdict_schema(self, attack_bytes):
        verdict = run_session(SessionManager(), attack_bytes)
        for key in (
            "type",
            "session",
            "tenant",
            "monitor",
            "alerts",
            "alert_count",
            "max_scores",
            "first_alert_s",
            "events",
            "dropped_events",
            "late_events",
            "undecodable",
            "detectors",
        ):
            assert key in verdict, f"verdict missing {key}"
        assert verdict["type"] == "verdict"
        assert verdict["dropped_events"] == 0
        # the whole verdict must be JSON-serialisable for the wire
        json.dumps(verdict)


class TestConcurrentDeterminism:
    def test_interleaved_sessions_match_sequential(
        self, attack_bytes, benign_bytes
    ):
        """Satellite: N interleaved sessions ≡ N sequential sessions."""
        captures = [attack_bytes, benign_bytes]
        n = 8
        event_lists = [
            list(capture_events(decode_capture(captures[i % 2])))
            for i in range(n)
        ]

        sequential = SessionManager()
        sequential_verdicts = []
        for i in range(n):
            session = sequential.open(tenant=f"t{i % 3}")
            for event in event_lists[i]:
                session.ingest(event)
            sequential_verdicts.append(sequential.finish(session))

        interleaved = SessionManager()
        sessions = [interleaved.open(tenant=f"t{i % 3}") for i in range(n)]
        # round-robin: one event per session per turn
        longest = max(len(events) for events in event_lists)
        for step in range(longest):
            for i, session in enumerate(sessions):
                if step < len(event_lists[i]):
                    session.ingest(event_lists[i][step])
        interleaved_verdicts = [
            interleaved.finish(session) for session in sessions
        ]

        assert json.dumps(
            interleaved_verdicts, sort_keys=True
        ) == json.dumps(sequential_verdicts, sort_keys=True)

    def test_no_cross_session_alert_leakage(self, attack_bytes, benign_bytes):
        manager = SessionManager()
        attack_verdict = run_session(manager, attack_bytes, tenant="a")
        benign_verdict = run_session(manager, benign_bytes, tenant="b")
        assert attack_verdict["alert_count"] > 0
        assert benign_verdict["alert_count"] == 0
        # the benign session must not see the attack session's peers
        attack_peers = {
            alert["peer"] for alert in attack_verdict["alerts"]
        }
        assert attack_peers
        assert not [
            alert
            for alert in benign_verdict["alerts"]
            if alert["peer"] in attack_peers
        ]


class TestBackpressureBudget:
    def test_max_events_budget_sheds_deterministically(self, attack_bytes):
        """Satellite: shedding under a fixed budget is deterministic."""
        events = list(capture_events(decode_capture(attack_bytes)))
        budget = len(events) // 2

        def run():
            manager = SessionManager(
                defaults=SessionConfig(max_events=budget)
            )
            session = manager.open()
            for event in events:
                session.ingest(event)
            return manager.finish(session)

        first, second = run(), run()
        assert first["events"] == budget
        assert first["dropped_events"] == len(events) - budget
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_shed_counts_into_verdict_and_metrics(self):
        manager = SessionManager()
        session = manager.open()
        session.shed()
        session.shed(3)
        verdict = manager.finish(session)
        assert verdict["dropped_events"] == 4
        merged = manager.merged_metrics()
        assert merged.counter_value("service.dropped_events") == 4

    def test_finished_session_rejects_ingest(self, attack_bytes):
        manager = SessionManager()
        session = manager.open()
        manager.finish(session)
        event = next(iter(capture_events(decode_capture(attack_bytes))))
        with pytest.raises(SessionError):
            session.ingest(event)


class TestManager:
    def test_per_tenant_metrics_merge_into_service_view(self, attack_bytes):
        manager = SessionManager()
        run_session(manager, attack_bytes, tenant="acme")
        run_session(manager, attack_bytes, tenant="globex")
        acme = manager.tenants["acme"].counter_value("service.events")
        globex = manager.tenants["globex"].counter_value("service.events")
        assert acme > 0 and acme == globex
        merged = manager.merged_metrics()
        assert merged.counter_value("service.events") == acme + globex
        snapshot = manager.service_snapshot()
        assert sorted(snapshot["tenants"]) == ["acme", "globex"]
        assert snapshot["sessions"]["finished"] == 2

    def test_idle_eviction_finishes_sessions(self):
        clock = {"now": 0.0}
        manager = SessionManager(
            max_idle_s=10.0, clock=lambda: clock["now"]
        )
        stale = manager.open()
        clock["now"] = 20.0
        fresh = manager.open()
        evicted = manager.evict_idle()
        assert evicted == [stale.id]
        assert stale.state == "finished"
        assert fresh.id in manager.sessions
        assert stale.id in manager.finished

    def test_archives_alerts_into_store(self, attack_bytes, tmp_path):
        from repro.store import AlertQuery, RunStore

        with RunStore(str(tmp_path / "store.db")) as store:
            manager = SessionManager(store=store)
            verdict = run_session(manager, attack_bytes, tenant="acme")
            run_id = f"service-{verdict['session']}"
            rows = store.query_alerts(AlertQuery(run_id=run_id))
            assert len(rows) == verdict["alert_count"] > 0
            run_ids = [info.run_id for info in store.runs()]
            assert run_id in run_ids
