"""One fully assembled simulated Bluetooth device.

The device exposes exactly the handles the paper's attacker uses:

* ``enable_hci_snoop()`` — Android's hidden 'Bluetooth HCI snoop log'
  developer option (or installing bluez-hcidump on Linux, which needs
  root).
* ``pull_bugreport()`` — the Android bug report that copies the
  SU-protected snoop file out **without** system permissions.
* ``attach_usb_sniffer()`` — clamp a USB analyzer onto a dongle-type
  controller's bus.
* ``set_bd_addr()`` / ``set_class_of_device()`` — the spoofing writes
  to ``/persist/bdaddr.txt`` and ``bt_target.h`` (Figs. 8).
* ``install_bonding()`` / ``power_cycle_bluetooth()`` — edit
  ``bt_config.conf`` and bounce Bluetooth so the stack reloads it
  (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.obs import Observability

from repro.core.errors import AttackError
from repro.core.filesystem import VirtualFilesystem
from repro.core.types import BdAddr, BluetoothVersion, IoCapability, LinkKey
from repro.controller.controller import Controller
from repro.host.stack import HostStack, StackProfile
from repro.host.storage import (
    BluezInfoStore,
    BondingRecord,
    BondingStore,
    BtConfigStore,
    RegistryStore,
)
from repro.host.ui import UserModel
from repro.phy.medium import RadioMedium
from repro.sim.eventloop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.snoop.hcidump import HciDump
from repro.transport.base import HciTransport
from repro.transport.uart import UartH4Transport
from repro.transport.usb import UsbSniffer, UsbTransport

_STORAGE_PATHS = {
    "bt_config": "/data/misc/bluedroid/bt_config.conf",
    "bluez_info": "/var/lib/bluetooth/bonds",
    "registry": "HKLM/SYSTEM/CurrentControlSet/Services/BTHPORT/Parameters/Keys",
}
_SNOOP_PATHS = {
    "bluedroid": "/data/misc/bluetooth/logs/btsnoop_hci.log",
    "bluez": "/var/log/hcidump.log",
}
_BDADDR_PATH = "/persist/bdaddr.txt"


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a device model (one catalog row)."""

    key: str
    marketing_name: str
    os: str
    stack_profile: StackProfile
    bt_version: BluetoothVersion
    io_capability: IoCapability
    transport_kind: str  # "uart" | "usb"
    class_of_device: int
    controller_model: str = "integrated"
    #: §VII-A long-term mitigation deployed: encrypt link-key-bearing
    #: HCI payloads on the wire (derive hardened variants with
    #: ``dataclasses.replace(spec, secure_hci=True)``)
    secure_hci: bool = False
    #: device has an LE stack too (dual-mode, CTKD candidate); derive
    #: variants with ``dataclasses.replace(spec, le_capable=True)``
    le_capable: bool = False
    #: LE-only device (tracker, earbuds): no BR/EDR host/controller
    #: activity — only the :class:`repro.ble.stack.BleStack` runs
    le_only: bool = False

    @property
    def is_android(self) -> bool:
        return self.os.startswith("Android")

    @property
    def has_le(self) -> bool:
        return self.le_capable or self.le_only


class Device:
    """host + controller + transport + filesystem + user."""

    def __init__(
        self,
        simulator: Simulator,
        medium: RadioMedium,
        rng: RngRegistry,
        spec: DeviceSpec,
        name: str,
        bd_addr: BdAddr,
        tracer: Optional[Tracer] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.simulator = simulator
        self.medium = medium
        self.spec = spec
        self.name = name
        self.tracer = tracer if tracer is not None else Tracer()
        self.obs = obs
        self.filesystem = VirtualFilesystem()

        self.transport: HciTransport
        if spec.secure_hci:
            from repro.mitigations.hci_encryption import (
                SecureUartTransport,
                SecureUsbTransport,
            )

            if spec.transport_kind == "usb":
                self.transport = SecureUsbTransport(
                    simulator, name=f"{name}-usb"
                )
            else:
                self.transport = SecureUartTransport(
                    simulator, name=f"{name}-uart"
                )
        elif spec.transport_kind == "usb":
            self.transport = UsbTransport(simulator, name=f"{name}-usb")
        else:
            self.transport = UartH4Transport(simulator, name=f"{name}-uart")

        store = self._make_store(spec.stack_profile)
        self.user = UserModel(rng.stream(f"user:{name}"))
        self.host = HostStack(
            simulator=simulator,
            transport=self.transport,
            profile=spec.stack_profile,
            name=name,
            version=spec.bt_version,
            io_capability=spec.io_capability,
            user=self.user,
            store=store,
            tracer=self.tracer,
            obs=obs,
        )
        self.controller = Controller(
            simulator=simulator,
            medium=medium,
            transport=self.transport,
            rng=rng,
            name=name,
            bd_addr=bd_addr,
            class_of_device=spec.class_of_device,
            secure_connections=spec.bt_version.numeric >= 4.1,
            tracer=self.tracer,
            obs=obs,
        )
        self.filesystem.write_text(_BDADDR_PATH, str(bd_addr), requires_su=True)
        self.ble = None
        if spec.has_le:
            from repro.ble.stack import BleStack

            # LE shares the BR/EDR public identity address and the
            # host's bond database, so CTKD-derived keys land in the
            # same persistent store the BR/EDR attacks raid.
            self.ble = BleStack(
                simulator=simulator,
                medium=medium,
                rng=rng,
                name=name,
                addr=bd_addr,
                io_capability=spec.io_capability,
                dual_mode=not spec.le_only,
                security=self.host.security,
                tracer=self.tracer,
            )
        self._hci_dump: Optional[HciDump] = None
        self._usb_sniffer: Optional[UsbSniffer] = None

    # ------------------------------------------------------------ lifecycle

    def power_on(self, connectable: bool = True, discoverable: bool = True) -> None:
        """Boot the Bluetooth subsystem (both transports if dual-mode)."""
        if not self.spec.le_only:
            self.host.initialize(
                local_name=self.spec.marketing_name,
                class_of_device=self.spec.class_of_device,
                connectable=connectable,
                discoverable=discoverable,
            )
        if self.ble is not None:
            self.ble.power_on(advertise=connectable)

    def power_cycle_bluetooth(self) -> None:
        """Toggle Bluetooth off/on: the stack reloads bonding storage —
        how the attacker's fake bonding info becomes live (Fig. 10)."""
        self.host.security.reload_from_store()

    # -------------------------------------------------------------- address

    @property
    def bd_addr(self) -> BdAddr:
        return self.controller.bd_addr

    def set_bd_addr(self, addr: BdAddr) -> None:
        """Rewrite /persist/bdaddr.txt — the spoofing primitive."""
        self.controller.bd_addr = addr
        self.filesystem.write_text(_BDADDR_PATH, str(addr), requires_su=True)

    def set_class_of_device(self, cod: int) -> None:
        """The bt_target.h COD rewrite of Fig. 8."""
        self.controller.class_of_device = cod

    # ------------------------------------------------------------- HCI dump

    @property
    def snoop_path(self) -> Optional[str]:
        return _SNOOP_PATHS.get(self.spec.stack_profile.name)

    def enable_hci_snoop(self, su: bool = False) -> HciDump:
        """Start background HCI logging.

        * Android: the 'Bluetooth HCI snoop log' developer option —
          reachable by anyone who can tap the settings app.
        * Linux: running bluez-hcidump needs root.
        * Windows / CSR Harmony / iOS: not available at all.
        """
        profile = self.spec.stack_profile
        if not profile.hci_snoop_supported:
            raise AttackError(
                f"{self.name}: {profile.name} host stack provides no HCI dump"
            )
        if profile.name == "bluez" and not su:
            raise PermissionError(
                f"{self.name}: running hcidump on BlueZ requires superuser"
            )
        if self._hci_dump is None:
            self._hci_dump = HciDump(name=f"{self.name}-snoop").attach(
                self.transport
            )
        return self._hci_dump

    def disable_hci_snoop(self) -> None:
        if self._hci_dump is not None:
            self._hci_dump.detach()
            self._hci_dump = None

    def _flush_snoop_to_fs(self) -> None:
        if self._hci_dump is None or self.snoop_path is None:
            return
        self.filesystem.write(
            self.snoop_path,
            self._hci_dump.to_btsnoop_bytes(),
            requires_su=self.spec.stack_profile.snoop_requires_su,
        )

    def read_snoop_log(self, su: bool = False) -> bytes:
        """Read the snoop file directly — SU-gated on every platform."""
        if self._hci_dump is None or self.snoop_path is None:
            raise FileNotFoundError("HCI snoop logging is not active")
        self._flush_snoop_to_fs()
        return self.filesystem.read(self.snoop_path, su=su)

    def pull_bugreport(self) -> bytes:
        """Android bug report: exports the snoop log without SU.

        This is the paper's §IV-A extraction path — the log file lives
        in a protected directory, but the developer-options bug report
        hands a copy to any user of the unlocked device.
        """
        if not self.spec.stack_profile.snoop_extractable_without_su:
            raise AttackError(
                f"{self.name}: no unprivileged bug-report path on {self.spec.os}"
            )
        if self._hci_dump is None:
            raise FileNotFoundError("HCI snoop logging is not active")
        return self._hci_dump.to_btsnoop_bytes()

    # ----------------------------------------------------------- USB sniffing

    def attach_usb_sniffer(self, su: bool = False) -> UsbSniffer:
        """Clamp a USB analyzer onto a dongle-type controller's bus.

        Windows analyzers run unprivileged; Linux usbmon needs root
        (the paper's Table I 'SU privilege' column for Ubuntu).
        """
        if not isinstance(self.transport, UsbTransport):
            raise AttackError(
                f"{self.name}: controller is not USB-attached "
                f"({self.spec.transport_kind} transport)"
            )
        if self.spec.os.startswith("Ubuntu") and not su:
            raise PermissionError(
                f"{self.name}: USB capture on Linux requires superuser"
            )
        if self._usb_sniffer is None:
            self._usb_sniffer = UsbSniffer(
                name=f"{self.name}-usb-analyzer"
            ).attach(self.transport)
        return self._usb_sniffer

    # -------------------------------------------------------------- bonding

    def install_bonding(self, record: BondingRecord, su: bool = True) -> None:
        """Write a bonding record straight into the storage file.

        With physical control of the device (the attack model's A, or a
        manipulated C) the attacker edits bt_config.conf directly; the
        entry becomes live after :meth:`power_cycle_bluetooth`.
        """
        if not su:
            raise PermissionError("editing bonding storage requires superuser")
        records = self.host.security.keys.copy()
        records[record.addr] = record
        if self.host.store is not None:
            self.host.store.save(records)

    def bonded_key_for(self, addr: BdAddr) -> Optional[LinkKey]:
        record = self.host.security.bond_for(addr)
        return record.link_key if record else None

    def _make_store(self, profile: StackProfile) -> BondingStore:
        path = _STORAGE_PATHS[profile.storage_format]
        cls = {
            "bt_config": BtConfigStore,
            "bluez_info": BluezInfoStore,
            "registry": RegistryStore,
        }[profile.storage_format]
        return cls(
            self.filesystem, path, requires_su=profile.storage_requires_su
        )

    def __repr__(self) -> str:
        return (
            f"Device({self.name}: {self.spec.marketing_name}, {self.spec.os}, "
            f"addr={self.bd_addr})"
        )
