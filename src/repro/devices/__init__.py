"""Complete simulated devices and the paper's device catalog.

A :class:`~repro.devices.device.Device` bundles a host stack, a
controller, the HCI transport between them, a virtual filesystem
(bonding storage, BD_ADDR file, snoop log) and a user model — i.e.
one phone / PC / accessory.

:mod:`repro.devices.catalog` builds the exact device fleet of the
paper's evaluation (Tables I and II): six Android phones across
versions 8/9/11, an iPhone Xs, two Windows 10 PCs with QSENN CSR V4.0
dongles (Microsoft and CSR Harmony stacks) and an Ubuntu 20.04 BlueZ
box.
"""

from repro.devices.device import Device, DeviceSpec
from repro.devices.catalog import (
    TABLE1_DEVICE_SPECS,
    TABLE2_DEVICE_SPECS,
    build_device,
    spec_by_key,
)

__all__ = [
    "Device",
    "DeviceSpec",
    "TABLE1_DEVICE_SPECS",
    "TABLE2_DEVICE_SPECS",
    "build_device",
    "spec_by_key",
]
