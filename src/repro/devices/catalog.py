"""The paper's evaluated device fleet (Tables I and II).

Bluetooth versions are the shipping BR/EDR versions of the physical
devices: Nexus 5x is a 4.2 part; the 2018+ phones and the iPhone Xs are
5.0+; the QSENN CSR V4.0 dongle is a Bluetooth 4.0 CSR8510 part.  The
version matters because it selects the Fig. 7 popup policy.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.obs import Observability

from repro.core.types import BdAddr, BluetoothVersion, ClassOfDevice, IoCapability
from repro.devices.device import Device, DeviceSpec
from repro.host.stack import StackProfile
from repro.phy.medium import RadioMedium
from repro.sim.eventloop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


def _android(
    key: str,
    marketing_name: str,
    android_version: int,
    bt_version: BluetoothVersion,
) -> DeviceSpec:
    return DeviceSpec(
        key=key,
        marketing_name=marketing_name,
        os=f"Android {android_version}",
        stack_profile=StackProfile.BLUEDROID,
        bt_version=bt_version,
        io_capability=IoCapability.DISPLAY_YES_NO,
        transport_kind="uart",
        class_of_device=ClassOfDevice.SMARTPHONE,
    )


NEXUS_5X_A6 = _android("nexus_5x_android6", "Nexus 5x", 6, BluetoothVersion.V4_2)
NEXUS_5X_A8 = _android("nexus_5x_android8", "Nexus 5x", 8, BluetoothVersion.V4_2)
LG_V50 = _android("lg_v50_android9", "LG V50", 9, BluetoothVersion.V5_0)
GALAXY_S8 = _android("galaxy_s8_android9", "Galaxy S8", 9, BluetoothVersion.V5_0)
PIXEL_2_XL = _android("pixel_2_xl_android11", "Pixel 2 XL", 11, BluetoothVersion.V5_0)
LG_VELVET = _android("lg_velvet_android11", "LG VELVET", 11, BluetoothVersion.V5_1)
GALAXY_S21 = _android("galaxy_s21_android11", "Galaxy s21", 11, BluetoothVersion.V5_2)

IPHONE_XS = DeviceSpec(
    key="iphone_xs_ios1442",
    marketing_name="iPhone Xs",
    os="iOS 14.4.2",
    stack_profile=StackProfile.IOS,
    bt_version=BluetoothVersion.V5_0,
    io_capability=IoCapability.DISPLAY_YES_NO,
    transport_kind="uart",
    class_of_device=ClassOfDevice.SMARTPHONE,
)

WINDOWS_MS_DRIVER = DeviceSpec(
    key="windows10_microsoft",
    marketing_name="Windows 10 PC (Microsoft Bluetooth Driver)",
    os="Windows 10",
    stack_profile=StackProfile.MICROSOFT,
    bt_version=BluetoothVersion.V4_0,
    io_capability=IoCapability.DISPLAY_YES_NO,
    transport_kind="usb",
    class_of_device=ClassOfDevice.COMPUTER,
    controller_model="QSENN CSR V4.0",
)

WINDOWS_CSR_HARMONY = DeviceSpec(
    key="windows10_csr_harmony",
    marketing_name="Windows 10 PC (CSR harmony)",
    os="Windows 10",
    stack_profile=StackProfile.CSR_HARMONY,
    bt_version=BluetoothVersion.V4_0,
    io_capability=IoCapability.DISPLAY_YES_NO,
    transport_kind="usb",
    class_of_device=ClassOfDevice.COMPUTER,
    controller_model="QSENN CSR V4.0",
)

UBUNTU_2004 = DeviceSpec(
    key="ubuntu_2004_bluez",
    marketing_name="Ubuntu 20.04 PC (BlueZ)",
    os="Ubuntu 20.04",
    stack_profile=StackProfile.BLUEZ,
    bt_version=BluetoothVersion.V5_0,
    io_capability=IoCapability.DISPLAY_YES_NO,
    transport_kind="usb",
    class_of_device=ClassOfDevice.COMPUTER,
    controller_model="QSENN CSR V4.0",
)

#: An Android Automotive head unit — the Fig. 4 soft target: bluedroid
#: stack, HCI snoop log reachable from the in-dash developer options,
#: physically shared with anyone who sits in the car.
ANDROID_AUTOMOTIVE_HEAD_UNIT = DeviceSpec(
    key="android_automotive_head_unit",
    marketing_name="Android Automotive head unit",
    os="Android 10",
    stack_profile=StackProfile.BLUEDROID,
    bt_version=BluetoothVersion.V5_0,
    io_capability=IoCapability.DISPLAY_YES_NO,
    transport_kind="uart",
    class_of_device=ClassOfDevice.HANDSFREE,
)

HEADSET = DeviceSpec(
    key="generic_headset",
    marketing_name="BT Headset",
    os="RTOS",
    stack_profile=StackProfile.BLUEDROID,
    bt_version=BluetoothVersion.V4_2,
    io_capability=IoCapability.NO_INPUT_NO_OUTPUT,
    transport_kind="uart",
    class_of_device=ClassOfDevice.HEADSET,
)

# ---------------------------------------------------------------- LE kinds
#
# Dual-mode variants of catalog phones: same BR/EDR behaviour plus a
# BleStack (and therefore CTKD eligibility) — derived, not new rows, so
# Table I/II sampling weights are untouched.
import dataclasses as _dc

NEXUS_5X_DUAL = _dc.replace(
    NEXUS_5X_A8, key="nexus_5x_dual", le_capable=True
)
LG_VELVET_DUAL = _dc.replace(
    LG_VELVET, key="lg_velvet_dual", le_capable=True
)
GALAXY_S21_DUAL = _dc.replace(
    GALAXY_S21, key="galaxy_s21_dual", le_capable=True
)

#: LE-only wearable: advertises and pairs over SMP, no BR/EDR surface.
FITNESS_TRACKER = DeviceSpec(
    key="generic_fitness_tracker",
    marketing_name="Fitness Tracker",
    os="RTOS",
    stack_profile=StackProfile.BLUEDROID,
    bt_version=BluetoothVersion.V5_0,
    io_capability=IoCapability.NO_INPUT_NO_OUTPUT,
    transport_kind="uart",
    class_of_device=ClassOfDevice.HEADSET,
    le_only=True,
)

#: LE-only earbuds (NoInputNoOutput → Just Works pairing only).
EARBUDS = DeviceSpec(
    key="generic_earbuds",
    marketing_name="TWS Earbuds",
    os="RTOS",
    stack_profile=StackProfile.BLUEDROID,
    bt_version=BluetoothVersion.V5_2,
    io_capability=IoCapability.NO_INPUT_NO_OUTPUT,
    transport_kind="uart",
    class_of_device=ClassOfDevice.HEADSET,
    le_only=True,
)

#: Dual-mode smartwatch with a display — numeric comparison capable.
SMART_WATCH = DeviceSpec(
    key="generic_smart_watch",
    marketing_name="Smart Watch",
    os="Wear OS",
    stack_profile=StackProfile.BLUEDROID,
    bt_version=BluetoothVersion.V5_0,
    io_capability=IoCapability.DISPLAY_YES_NO,
    transport_kind="uart",
    class_of_device=ClassOfDevice.HEADSET,
    le_capable=True,
)


#: Table I — devices tested (as C) for link key extraction.
TABLE1_DEVICE_SPECS: List[DeviceSpec] = [
    NEXUS_5X_A8,
    LG_V50,
    GALAXY_S8,
    PIXEL_2_XL,
    LG_VELVET,
    GALAXY_S21,
    WINDOWS_MS_DRIVER,
    WINDOWS_CSR_HARMONY,
    UBUNTU_2004,
]

#: Table II — devices tested (as M) for the page blocking attack.
TABLE2_DEVICE_SPECS: List[DeviceSpec] = [
    IPHONE_XS,
    NEXUS_5X_A8,
    LG_V50,
    GALAXY_S8,
    PIXEL_2_XL,
    LG_VELVET,
    GALAXY_S21,
]

_ALL_SPECS: Dict[str, DeviceSpec] = {
    spec.key: spec
    for spec in [
        NEXUS_5X_A6,
        NEXUS_5X_A8,
        LG_V50,
        GALAXY_S8,
        PIXEL_2_XL,
        LG_VELVET,
        GALAXY_S21,
        IPHONE_XS,
        WINDOWS_MS_DRIVER,
        WINDOWS_CSR_HARMONY,
        UBUNTU_2004,
        ANDROID_AUTOMOTIVE_HEAD_UNIT,
        HEADSET,
        NEXUS_5X_DUAL,
        LG_VELVET_DUAL,
        GALAXY_S21_DUAL,
        FITNESS_TRACKER,
        EARBUDS,
        SMART_WATCH,
    ]
}


def spec_by_key(key: str) -> DeviceSpec:
    """Look up a catalog spec."""
    return _ALL_SPECS[key]


def deterministic_addr(name: str) -> BdAddr:
    """A stable pseudo-random BD_ADDR derived from a device name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    raw = bytearray(digest[:6])
    raw[0] &= 0xFE  # keep it a unicast-looking address
    return BdAddr(bytes(raw))


def build_device(
    simulator: Simulator,
    medium: RadioMedium,
    rng: RngRegistry,
    spec: DeviceSpec,
    name: str,
    bd_addr: Optional[BdAddr] = None,
    tracer: Optional[Tracer] = None,
    obs: Optional["Observability"] = None,
) -> Device:
    """Instantiate a catalog device on a simulation."""
    return Device(
        simulator=simulator,
        medium=medium,
        rng=rng,
        spec=spec,
        name=name,
        bd_addr=bd_addr or deterministic_addr(name),
        tracer=tracer,
        obs=obs,
    )
