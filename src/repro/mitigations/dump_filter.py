"""Mitigation 1 (§VII-A): filter link keys out of the HCI dump.

The dump module watches HCI headers; when a packet matches a
link-key-carrying signature it logs only the header (or replaces the
key bytes with a constant filler), never the key.  Concretely, per the
paper: a command packet starting ``01 0b 04 16`` is an
``HCI_Link_Key_Request_Reply`` and its payload gets redacted.

This defeats HCI-dump extraction but **not** physical-interface
sniffing — the USB analyzer still sees the plaintext — which is why
the paper pairs it with payload encryption as the long-term fix.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.hci.constants import EventCode, Opcode, PacketIndicator
from repro.snoop.hcidump import HciDump
from repro.transport.base import Direction

_FILLER = 0x00

# (indicator, header bytes to match) → (header length to keep, key offset/len)
# Command header: opcode(2) + len(1); event header: code(1) + len(1).
_LINK_KEY_COMMAND = Opcode.LINK_KEY_REQUEST_REPLY.to_bytes(2, "little")


def _redaction_span(raw: bytes) -> Optional[Tuple[int, int]]:
    """Return (offset, length) of key bytes to redact, if any."""
    if not raw:
        return None
    indicator = raw[0]
    if indicator == PacketIndicator.COMMAND and raw[1:3] == _LINK_KEY_COMMAND:
        # 01 | 0b 04 | 16 | addr(6) | key(16)
        return (1 + 2 + 1 + 6, 16)
    if (
        indicator == PacketIndicator.EVENT
        and len(raw) >= 2
        and raw[1] == EventCode.LINK_KEY_NOTIFICATION
    ):
        # 04 | 18 | 17 | addr(6) | key(16) | type(1)
        return (1 + 1 + 1 + 6, 16)
    return None


def redact_record(raw: bytes) -> Tuple[bytes, bool]:
    """Redact key bytes from one H4 packet; returns (bytes, redacted?)."""
    span = _redaction_span(raw)
    if span is None:
        return raw, False
    offset, length = span
    redacted = bytearray(raw)
    redacted[offset : offset + length] = bytes([_FILLER]) * length
    return bytes(redacted), True


class FilteredHciDump(HciDump):
    """An HCI dump whose tap redacts link key payloads before logging."""

    def __init__(self, name: str = "hcidump-filtered") -> None:
        super().__init__(name=name)
        self.redactions = 0

    def _tap(self, timestamp: float, direction: Direction, raw: bytes) -> None:
        if not self.enabled:
            return
        safe, redacted = redact_record(raw)
        if redacted:
            self.redactions += 1
        self.writer.append(timestamp, direction, safe)
