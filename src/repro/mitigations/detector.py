"""Forensic detection of page blocking attacks in HCI captures.

§VII-B's mitigation predicate, packaged as an offline analysis tool:
scan a victim's HCI dump for pairings in which the device was the
connection *responder* but the pairing *initiator*, with the peer
claiming NoInputNoOutput.  Useful both as a host-side guard (see
``SecurityManager.page_blocking_guard``) and for after-the-fact triage
of snoop logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.types import BdAddr, IoCapability
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.snoop.hcidump import DumpEntry, HciDump, entries_from_btsnoop


@dataclass
class SuspiciousPairing:
    """One pairing that matches the page blocking signature."""

    peer: BdAddr
    connection_request_frame: int
    authentication_frame: int
    peer_io_capability: Optional[IoCapability] = None
    indicators: List[str] = field(default_factory=list)

    @property
    def confidence(self) -> str:
        return "high" if len(self.indicators) >= 3 else "medium"

    def __str__(self) -> str:
        return (
            f"peer {self.peer}: frames {self.connection_request_frame}"
            f"→{self.authentication_frame} [{self.confidence}] "
            + "; ".join(self.indicators)
        )


def detect_page_blocking(capture) -> List[SuspiciousPairing]:
    """Scan a capture for the page blocking signature.

    ``capture`` may be btsnoop bytes, an :class:`HciDump`, or dump
    entries.  Detection logic:

    1. an inbound ``HCI_Connection_Request`` from some peer address,
    2. followed by a locally issued ``HCI_Authentication_Requested``
       (we initiated the pairing on a link we did not initiate),
    3. strengthened when the peer's IO capability response says
       NoInputNoOutput (the Just Works downgrade posture) and when no
       ``HCI_Create_Connection`` to that peer exists anywhere.
    """
    if isinstance(capture, (bytes, bytearray)):
        entries: Sequence[DumpEntry] = entries_from_btsnoop(bytes(capture))
    elif isinstance(capture, HciDump):
        entries = capture.entries()
    else:
        entries = list(capture)

    inbound: dict = {}  # peer addr -> frame of Connection_Request
    accepted: dict = {}  # peer addr -> connection handle (once complete)
    created: set = set()  # peers we paged ourselves
    remote_io: dict = {}  # peer addr -> IoCapability
    findings: List[SuspiciousPairing] = []

    for entry in entries:
        packet = entry.packet
        if isinstance(packet, evt.ConnectionRequest):
            inbound[packet.bd_addr] = entry.frame
        elif isinstance(packet, cmd.CreateConnection):
            created.add(packet.bd_addr)
        elif isinstance(packet, evt.ConnectionComplete) and packet.status == 0:
            accepted[packet.connection_handle] = packet.bd_addr
        elif isinstance(packet, evt.IoCapabilityResponse):
            remote_io[packet.bd_addr] = IoCapability(packet.io_capability)
        elif isinstance(packet, cmd.AuthenticationRequested):
            peer = accepted.get(packet.connection_handle)
            if peer is None or peer not in inbound:
                continue
            finding = SuspiciousPairing(
                peer=peer,
                connection_request_frame=inbound[peer],
                authentication_frame=entry.frame,
            )
            finding.indicators.append(
                "pairing initiated on a remotely-initiated connection"
            )
            if peer not in created:
                finding.indicators.append(
                    "no outbound HCI_Create_Connection to this peer"
                )
            io = remote_io.get(peer)
            if io is IoCapability.NO_INPUT_NO_OUTPUT:
                finding.peer_io_capability = io
                finding.indicators.append(
                    "peer claims NoInputNoOutput (Just Works downgrade)"
                )
            findings.append(finding)

    # IO capability responses can arrive after Authentication_Requested;
    # patch them in retroactively.
    for finding in findings:
        if finding.peer_io_capability is None:
            io = remote_io.get(finding.peer)
            if io is IoCapability.NO_INPUT_NO_OUTPUT:
                finding.peer_io_capability = io
                finding.indicators.append(
                    "peer claims NoInputNoOutput (Just Works downgrade)"
                )
    return findings
