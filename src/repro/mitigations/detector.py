"""Forensic detection of page blocking attacks in HCI captures.

§VII-B's mitigation predicate, packaged as an offline analysis tool:
scan a victim's HCI dump for pairings in which the device was the
connection *responder* but the pairing *initiator*, with the peer
claiming NoInputNoOutput.  Useful both as a host-side guard (see
``SecurityManager.page_blocking_guard``) and for after-the-fact triage
of snoop logs.

The signature itself lives in
:class:`repro.detect.detectors.PageBlockingDetector` — the *streaming*
implementation shared with the online engine.  This module replays a
finished capture through it and re-shapes the findings into the stable
:class:`SuspiciousPairing` records this API has always returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.types import BdAddr, IoCapability
from repro.detect.detectors import PageBlockingDetector
from repro.detect.replay import Capture, replay_capture


@dataclass
class SuspiciousPairing:
    """One pairing that matches the page blocking signature."""

    peer: BdAddr
    connection_request_frame: int
    authentication_frame: int
    peer_io_capability: Optional[IoCapability] = None
    indicators: List[str] = field(default_factory=list)

    @property
    def confidence(self) -> str:
        return "high" if len(self.indicators) >= 3 else "medium"

    def __str__(self) -> str:
        return (
            f"peer {self.peer}: frames {self.connection_request_frame}"
            f"→{self.authentication_frame} [{self.confidence}] "
            + "; ".join(self.indicators)
        )


def detect_page_blocking(capture: Capture) -> List[SuspiciousPairing]:
    """Scan a capture for the page blocking signature.

    ``capture`` may be btsnoop bytes, an :class:`HciDump`, or dump
    entries.  Detection logic (one implementation with the online
    detector):

    1. an inbound ``HCI_Connection_Request`` from some peer address,
    2. followed by a locally issued ``HCI_Authentication_Requested``
       (we initiated the pairing on a link we did not initiate),
    3. strengthened when the peer's IO capability response says
       NoInputNoOutput (the Just Works downgrade posture) and when no
       ``HCI_Create_Connection`` to that peer exists anywhere —
       including IO capability responses that only arrive *after* the
       authentication request (the streaming detector patches the
       finding retroactively).
    """
    detector = PageBlockingDetector()
    replay_capture(capture, detectors=[detector])
    return [
        SuspiciousPairing(
            peer=finding.peer,
            connection_request_frame=finding.connection_request_frame,
            authentication_frame=finding.authentication_frame,
            peer_io_capability=finding.peer_io_capability,
            indicators=list(finding.indicators),
        )
        for finding in detector.findings
    ]
