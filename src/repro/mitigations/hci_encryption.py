"""Mitigation 2 (§VII-A): encrypt link-key-bearing HCI payloads.

The dump filter cannot stop a hardware tap on the UART/USB lines.  If
the host and controller share a provisioned transport key, however,
the payload of key-carrying packets travels as ciphertext and neither
the dump nor a physical sniffer learns anything.

The paper notes this "may require major updates or revision of current
specifications"; we implement it as a drop-in transport: endpoints see
plaintext HCI, while every tap and sniffer sees the protected wire
image.  The cipher is a SHA-256-keystream XOR with a per-packet nonce
(the packet counter) — a stand-in for whatever AEAD a spec revision
would mandate; the experiment only needs confidentiality against a
passive tap.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.core.errors import TransportError
from repro.hci.constants import EventCode, Opcode, PacketIndicator
from repro.hci.packets import HciPacket
from repro.sim.eventloop import Simulator
from repro.transport.base import Direction
from repro.transport.uart import UartH4Transport
from repro.transport.usb import UsbTransfer, UsbTransport

#: wire prefixes of the packets whose payload must be protected
PROTECTED_SIGNATURES = (
    "HCI_Link_Key_Request_Reply",
    "HCI_Link_Key_Notification",
)

_COMMAND_OPCODE = Opcode.LINK_KEY_REQUEST_REPLY.to_bytes(2, "little")


class HciPayloadCipher:
    """XOR keystream cipher keyed by a host↔controller shared secret."""

    def __init__(self, transport_key: bytes) -> None:
        if len(transport_key) < 16:
            raise TransportError("transport key must be at least 16 bytes")
        self.transport_key = transport_key

    def _keystream(self, nonce: int, length: int) -> bytes:
        stream = bytearray()
        counter = 0
        while len(stream) < length:
            stream += hashlib.sha256(
                self.transport_key
                + nonce.to_bytes(8, "big")
                + counter.to_bytes(4, "big")
            ).digest()
            counter += 1
        return bytes(stream[:length])

    def process(self, nonce: int, payload: bytes) -> bytes:
        """Encrypt/decrypt (XOR is symmetric)."""
        stream = self._keystream(nonce, len(payload))
        return bytes(p ^ s for p, s in zip(payload, stream))


def _protected_span(raw: bytes) -> Optional[int]:
    """Offset where the protected payload starts, or None."""
    if not raw:
        return None
    if raw[0] == PacketIndicator.COMMAND and raw[1:3] == _COMMAND_OPCODE:
        return 4  # indicator + opcode(2) + length(1)
    if (
        raw[0] == PacketIndicator.EVENT
        and len(raw) >= 2
        and raw[1] == EventCode.LINK_KEY_NOTIFICATION
    ):
        return 3  # indicator + code(1) + length(1)
    return None


class SecureUsbTransport(UsbTransport):
    """USB transport with encrypted link-key payloads on the bus.

    This is the configuration the dump filter cannot provide: the
    paper's Windows victims leak keys to *physical* USB analyzers, and
    only wire-level payload encryption closes that channel.  Sniffers
    attached to this transport capture ciphertext for the protected
    packets (the packet bytes have no H4 indicator on USB, so the
    protected span shifts by one byte).
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str = "secure-usb0",
        idle_null_transfers: bool = True,
        transport_key: bytes = b"provisioned-transport-key-32byte",
    ) -> None:
        super().__init__(
            simulator, name=name, idle_null_transfers=idle_null_transfers
        )
        self.cipher = HciPayloadCipher(transport_key)
        self._nonce = 0
        self.protected_packets = 0

    def _capture(self, packet: HciPacket, direction: Direction) -> None:
        endpoint = self._endpoint_for(packet, direction)
        raw = packet.to_bytes()
        offset = _protected_span(packet.to_h4_bytes())
        if offset is not None:
            self.protected_packets += 1
            nonce = self._nonce
            self._nonce += 1
            body_offset = offset - 1  # USB payloads carry no indicator
            raw = raw[:body_offset] + self.cipher.process(
                nonce, raw[body_offset:]
            )
        transfer = UsbTransfer(self.simulator.now, endpoint, raw)
        self._transfers.append(transfer)
        for sniffer in self._sniffers:
            sniffer.observe(transfer)
        if self.idle_null_transfers:
            null = UsbTransfer(self.simulator.now, 0x81, b"")
            self._transfers.append(null)
            for sniffer in self._sniffers:
                sniffer.observe(null)


class SecureUartTransport(UartH4Transport):
    """UART transport with encrypted link-key payloads on the wire.

    Endpoints (host and controller) exchange plaintext HCI exactly as
    before; taps and sniffers observe the wire image, in which the
    payload of protected packets is ciphertext.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str = "secure-uart0",
        baud_rate: int = 3_000_000,
        transport_key: bytes = b"provisioned-transport-key-32byte",
    ) -> None:
        super().__init__(simulator, name=name, baud_rate=baud_rate)
        self.cipher = HciPayloadCipher(transport_key)
        self._nonce = 0
        self.protected_packets = 0

    def _wire_image(self, raw: bytes) -> bytes:
        offset = _protected_span(raw)
        if offset is None:
            return raw
        self.protected_packets += 1
        nonce = self._nonce
        self._nonce += 1
        protected = raw[:offset] + self.cipher.process(nonce, raw[offset:])
        return protected

    # Taps see the encrypted wire image; the receiving endpoint gets
    # plaintext (it holds the transport key and decrypts on arrival).

    def wire_image(self, direction: Direction, raw: bytes) -> bytes:
        return self._wire_image(raw)
