"""Mitigations from paper §VII.

* :mod:`repro.mitigations.dump_filter` — redact link key payloads from
  HCI dump logs (short-term fix for the extraction attack).
* :mod:`repro.mitigations.hci_encryption` — encrypt link-key-bearing
  HCI payloads between host and controller (long-term fix; defeats
  physical-interface sniffing too).
* The page blocking guard lives in the host security manager
  (``SecurityManager.page_blocking_guard``): refuse pairings where the
  local side initiated the pairing, the peer initiated the connection,
  and the peer claims NoInputNoOutput.
"""

from repro.mitigations.dump_filter import FilteredHciDump, redact_record
from repro.mitigations.hci_encryption import (
    HciPayloadCipher,
    SecureUartTransport,
    SecureUsbTransport,
    PROTECTED_SIGNATURES,
)
from repro.mitigations.detector import SuspiciousPairing, detect_page_blocking

__all__ = [
    "FilteredHciDump",
    "redact_record",
    "HciPayloadCipher",
    "SecureUartTransport",
    "SecureUsbTransport",
    "PROTECTED_SIGNATURES",
    "SuspiciousPairing",
    "detect_page_blocking",
]
