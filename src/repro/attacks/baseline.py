"""The baseline MITM connection race (Table II, left column).

Previous SSP downgrade attacks assumed the victim somehow connects to
the attacker.  In reality, when M pages C's address while both the
real C and the spoofing A are page-scanning as that address, whichever
scan window opens first wins — a coin flip governed by scan phase.
The paper measured 42–60% success over 100 trials per device; this
module reproduces that experiment.

Every trial reports into the process-wide metrics registry
(``attack.race_attempts`` / ``attack.race_wins``), so the measured
win rate can be read back from a metrics snapshot as well as from the
returned trial objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.types import IoCapability
from repro.attacks.attacker import Attacker
from repro.attacks.scenario import World, WorldConfig, build_world
from repro.devices.catalog import NEXUS_5X_A6, NEXUS_5X_A8
from repro.devices.device import DeviceSpec
from repro.obs.metrics import MetricsRegistry


@dataclass
class BaselineMitmTrial:
    """Outcome of one connection race."""

    connected: bool
    attacker_won: bool


def race_in_world(
    world: World,
    m_spec: DeviceSpec,
    c_spec: DeviceSpec = NEXUS_5X_A8,
    a_spec: DeviceSpec = NEXUS_5X_A6,
    attacker_scan_interval_slots: Optional[int] = None,
    seed: Optional[int] = None,
) -> BaselineMitmTrial:
    """Run the connection race in a caller-provided (fresh) world.

    ``attacker_scan_interval_slots`` overrides A's page-scan interval —
    the only knob a spoofing responder controls in the race (see the
    page-race ablation benchmark).  ``seed`` only labels the span.
    """
    m = world.add_device("M", m_spec)
    c = world.add_device("C", c_spec)
    a = world.add_device("A", a_spec)
    m.power_on()
    c.power_on()
    a.power_on(connectable=False, discoverable=False)
    world.run_for(0.5)

    attacker = Attacker(a)
    attacker.set_io_capability(IoCapability.NO_INPUT_NO_OUTPUT)
    attacker.spoof_device(c)
    if attacker_scan_interval_slots is not None:
        a.controller.page_scan_interval_slots = attacker_scan_interval_slots
    attacker.go_connectable()
    world.run_for(0.2)

    metrics = world.obs.metrics
    metrics.counter("attack.race_attempts").inc()

    with world.obs.span("attack.baseline_race", source="A", seed=seed):
        connect_op = m.host.gap.connect(c.bd_addr)
        world.run_for(10.0)

    if not connect_op.success:
        return BaselineMitmTrial(connected=False, attacker_won=False)
    info = m.host.gap.connections.get(c.bd_addr)
    link = m.controller.link_by_handle(info.handle) if info else None
    attacker_won = (
        link is not None and link.phys.peer_of(m.controller) is a.controller
    )
    if attacker_won:
        metrics.counter("attack.race_wins").inc()
    return BaselineMitmTrial(connected=True, attacker_won=attacker_won)


def run_baseline_trial(
    m_spec: DeviceSpec,
    seed: int,
    c_spec: DeviceSpec = NEXUS_5X_A8,
    a_spec: DeviceSpec = NEXUS_5X_A6,
    attacker_scan_interval_slots: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
) -> BaselineMitmTrial:
    """One independent trial: fresh world, spoof, race, inspect winner."""
    world = build_world(WorldConfig(seed=seed, registry=registry))
    return race_in_world(
        world,
        m_spec,
        c_spec=c_spec,
        a_spec=a_spec,
        attacker_scan_interval_slots=attacker_scan_interval_slots,
        seed=seed,
    )


def baseline_success_rate(
    m_spec: DeviceSpec, trials: int, seed_base: int = 0
) -> float:
    """Fraction of trials in which the attacker captured the connection."""
    wins = 0
    for trial in range(trials):
        result = run_baseline_trial(m_spec, seed=seed_base + trial)
        if result.attacker_won:
            wins += 1
    return wins / trials
