"""The baseline MITM connection race (Table II, left column).

Previous SSP downgrade attacks assumed the victim somehow connects to
the attacker.  In reality, when M pages C's address while both the
real C and the spoofing A are page-scanning as that address, whichever
scan window opens first wins — a coin flip governed by scan phase.
The paper measured 42–60% success over 100 trials per device; this
module reproduces that experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import IoCapability
from repro.attacks.attacker import Attacker
from repro.attacks.scenario import build_world
from repro.devices.catalog import NEXUS_5X_A6, NEXUS_5X_A8
from repro.devices.device import DeviceSpec


@dataclass
class BaselineMitmTrial:
    """Outcome of one connection race."""

    connected: bool
    attacker_won: bool


def run_baseline_trial(
    m_spec: DeviceSpec,
    seed: int,
    c_spec: DeviceSpec = NEXUS_5X_A8,
    a_spec: DeviceSpec = NEXUS_5X_A6,
) -> BaselineMitmTrial:
    """One independent trial: fresh world, spoof, race, inspect winner."""
    world = build_world(seed=seed)
    m = world.add_device("M", m_spec)
    c = world.add_device("C", c_spec)
    a = world.add_device("A", a_spec)
    m.power_on()
    c.power_on()
    a.power_on(connectable=False, discoverable=False)
    world.run_for(0.5)

    attacker = Attacker(a)
    attacker.set_io_capability(IoCapability.NO_INPUT_NO_OUTPUT)
    attacker.spoof_device(c)
    attacker.go_connectable()
    world.run_for(0.2)

    connect_op = m.host.gap.connect(c.bd_addr)
    world.run_for(10.0)
    if not connect_op.success:
        return BaselineMitmTrial(connected=False, attacker_won=False)
    info = m.host.gap.connections.get(c.bd_addr)
    link = m.controller.link_by_handle(info.handle) if info else None
    attacker_won = (
        link is not None and link.phys.peer_of(m.controller) is a.controller
    )
    return BaselineMitmTrial(connected=True, attacker_won=attacker_won)


def baseline_success_rate(
    m_spec: DeviceSpec, trials: int, seed_base: int = 0
) -> float:
    """Fraction of trials in which the attacker captured the connection."""
    wins = 0
    for trial in range(trials):
        result = run_baseline_trial(m_spec, seed=seed_base + trial)
        if result.attacker_won:
            wins += 1
    return wins / trials
