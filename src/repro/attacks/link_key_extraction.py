"""The link key extraction attack (paper §IV, Fig. 5).

Seven steps, exactly as published:

1. A accesses C and arranges HCI data recording — the Android snoop
   log, or a USB analyzer on PC systems.
2. A changes its BD_ADDR to impersonate M.
3. C establishes a connection and initiates LMP authentication with
   "M" (actually A); C's controller requests the bonded key from its
   host.
4. C's host answers with the plaintext key — which the HCI recording
   captures.
5. A (whose patched host ignores the link key request) lets the link
   die by LMP response timeout — no authentication failure, so C keeps
   its stored key.
6. A extracts the recording (Android bug report / USB stream) and
   scans it for the key.
7. A impersonates C toward M using the key; validation = a PAN
   (tethering) connection that LMP-authenticates silently with no new
   pairing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import AttackError
from repro.core.types import LinkKey
from repro.attacks.attacker import Attacker
from repro.attacks.scenario import World
from repro.devices.device import Device
from repro.snoop.extractor import LinkKeyFinding, extract_link_keys
from repro.snoop.usb_extract import extract_link_keys_from_usb


@dataclass
class ExtractionReport:
    """Outcome of one end-to-end link key extraction run."""

    c_device: str
    c_os: str
    c_stack: str
    extraction_channel: str  # "hci_dump" | "usb_sniff"
    su_required: bool
    extracted_key: Optional[LinkKey] = None
    ground_truth_key: Optional[LinkKey] = None
    key_survived_on_c: bool = False
    validated_against_m: Optional[bool] = None
    findings: List[LinkKeyFinding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def extraction_success(self) -> bool:
        return (
            self.extracted_key is not None
            and self.extracted_key == self.ground_truth_key
        )

    @property
    def vulnerable(self) -> bool:
        """The Table I verdict for this device."""
        return self.extraction_success and self.key_survived_on_c


class LinkKeyExtractionAttack:
    """Drives the full Fig. 5 procedure in a world where C↔M are bonded."""

    #: how long to let the stalled authentication play out
    AUTH_TIMEOUT_WAIT = 12.0

    def __init__(
        self, world: World, attacker_device: Device, c: Device, m: Device
    ) -> None:
        self.world = world
        self.attacker = Attacker(attacker_device)
        self.c = c
        self.m = m

    # ------------------------------------------------------------- plumbing

    def _channel_for_c(self) -> str:
        profile = self.c.spec.stack_profile
        if profile.hci_snoop_supported:
            return "hci_dump"
        if self.c.spec.transport_kind == "usb":
            return "usb_sniff"
        raise AttackError(
            f"{self.c.name}: no HCI dump and no sniffable transport"
        )

    def _su_required(self, channel: str) -> bool:
        profile = self.c.spec.stack_profile
        if channel == "hci_dump":
            # Android's bug report sidesteps the protected log path;
            # BlueZ's hcidump genuinely needs root.
            return not profile.snoop_extractable_without_su
        # USB analyzers run unprivileged on Windows, need root on Linux.
        return self.c.spec.os.startswith("Ubuntu")

    # ------------------------------------------------------------------ run

    def run(self, validate: bool = True) -> ExtractionReport:
        """Execute steps 1–7 and report."""
        world = self.world
        metrics = world.obs.metrics
        metrics.counter("attack.extraction_attempts").inc()
        ground_truth = self.c.bonded_key_for(self.m.bd_addr)
        if ground_truth is None:
            raise AttackError("precondition failed: C is not bonded with M")

        channel = self._channel_for_c()
        su_required = self._su_required(channel)
        report = ExtractionReport(
            c_device=self.c.spec.marketing_name,
            c_os=self.c.spec.os,
            c_stack=self.c.spec.stack_profile.name,
            extraction_channel=channel,
            su_required=su_required,
            ground_truth_key=ground_truth,
        )

        with world.obs.span(
            "attack.link_key_extraction", source="A", channel=channel
        ) as attack_span:
            # Step 1: start recording on C.
            if channel == "hci_dump":
                self.c.enable_hci_snoop(su=su_required)
            else:
                sniffer = self.c.attach_usb_sniffer(
                    su=self.c.spec.os.startswith("Ubuntu")
                )

            # Step 2: impersonate M (and make sure the real M is absent,
            # so C's page reaches only the attacker).
            self.attacker.patch_drop_link_key_requests()
            self.attacker.spoof_device(self.m)
            self.attacker.go_connectable()
            world.set_in_range(self.c, self.m, False)
            world.run_for(0.5)

            # Steps 3–5: with physical access, make C (re)connect to
            # "M" — C is the authentication initiator, so its host
            # serves the key; A's silence kills the link by timeout.
            with world.obs.span("extraction.stalled_auth", source="C"):
                reconnect = self.c.host.gap.pair(self.m.bd_addr)
                world.run_for(self.AUTH_TIMEOUT_WAIT)
            if not reconnect.done:
                report.notes.append("authentication never resolved")
            report.key_survived_on_c = (
                self.c.bonded_key_for(self.m.bd_addr) == ground_truth
            )

            # Step 6: extract.
            with world.obs.span("extraction.scan_capture", source="A"):
                if channel == "hci_dump":
                    if self.c.spec.stack_profile.snoop_extractable_without_su:
                        capture = self.c.pull_bugreport()
                    else:
                        capture = self.c.read_snoop_log(su=True)
                    report.findings = extract_link_keys(capture)
                else:
                    report.findings = extract_link_keys_from_usb(sniffer)
            for finding in report.findings:
                if finding.peer == self.m.bd_addr:
                    report.extracted_key = finding.link_key
            if report.extracted_key is None:
                report.notes.append("no key found for M in the capture")
                attack_span.set_attr("outcome", "no_key_found")
                return report
            if report.extraction_success:
                metrics.counter("attack.extraction_success").inc()
            attack_span.set_attr(
                "outcome",
                "extracted" if report.extraction_success else "wrong_key",
            )

            # Step 7: impersonate C toward M and validate over PAN.
            if validate:
                with world.obs.span("extraction.validate_pan", source="A"):
                    report.validated_against_m = self._validate(
                        report.extracted_key
                    )
        return report

    def _validate(self, key: LinkKey) -> bool:
        """Paper §VI-B1 validation: fake bonding + Bluetooth tethering.

        Success iff the PAN connection LMP-authenticates with the
        extracted key and comes up without a new pairing procedure.
        """
        world = self.world
        # The attacker walks back into M's range; the real C leaves it
        # (or is powered down) so the spoofed address is unambiguous.
        world.set_in_range(self.attacker.device, self.m, True)
        world.set_in_range(self.c, self.m, False)
        self.attacker.patch_drop_link_key_requests(False)
        self.attacker.spoof_identity(
            self.c.bd_addr,
            class_of_device=self.c.controller.class_of_device,
            name=self.c.controller.local_name,
        )
        self.attacker.install_fake_bonding(
            self.m.bd_addr, key, name=self.m.controller.local_name
        )
        self.c.host.gap.set_scan_mode(connectable=False, discoverable=False)
        world.run_for(0.5)
        pairings_before = self.m.user.popups_seen
        pan_op = self.attacker.device.host.pan.connect(self.m.bd_addr)
        world.run_for(15.0)
        no_new_pairing = self.m.user.popups_seen == pairings_before
        return bool(pan_op.success and no_new_pairing)
