"""Offline PIN cracking of legacy pairing (the paper's refs [14][15]).

Legacy pairing's whole transcript is recoverable from the air:

* ``LMP_in_rand`` carries IN_RAND in the clear,
* each ``LMP_comb_key`` carries ``LK_RAND ⊕ K_init``,
* the subsequent challenge carries AU_RAND, and the prover's SRES is
  also plaintext.

An attacker who sniffed one pairing can therefore brute-force the PIN
offline: for each candidate PIN, recompute ``K_init = E22(IN_RAND,
PIN, responder address)``, unmask both LK_RANDs, rebuild the
combination key, and check it against the observed SRES.  Numeric
4-digit PINs fall in a ten-thousandth of the keyspace.

This is *why* SSP exists — and the historical contrast for the paper's
point that SSP-era keys leak through the HCI instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.core.errors import AttackError
from repro.core.types import BdAddr, LinkKey
from repro.attacks.eavesdrop import AirCapture
from repro.controller import lmp
from repro.crypto.legacy import e1, e21, e22


@dataclass(frozen=True)
class PairingTranscript:
    """The sniffed material needed for the offline search."""

    in_rand: bytes
    initiator_masked_rand: bytes
    responder_masked_rand: bytes
    au_rand: bytes
    sres: bytes
    initiator_addr: BdAddr
    responder_addr: BdAddr
    # The challenge's prover: the side that answered with SRES.
    prover_addr: BdAddr


@dataclass(frozen=True)
class PinCrackResult:
    """A successful offline PIN recovery."""

    pin: bytes
    link_key: LinkKey
    candidates_tried: int


def transcript_from_capture(
    capture: AirCapture,
    initiator_name: str,
    initiator_addr: BdAddr,
    responder_addr: BdAddr,
) -> PairingTranscript:
    """Assemble the transcript from a passive air capture."""
    in_rands = capture.lmp_frames(lmp.LmpInRand)
    combs = capture.lmp_frames(lmp.LmpCombKey)
    au_rands = capture.lmp_frames(lmp.LmpAuRand)
    sres_frames = capture.lmp_frames(lmp.LmpSres)
    if not in_rands or len(combs) < 2 or not au_rands or not sres_frames:
        raise AttackError("capture does not contain a full legacy pairing")
    initiator_combs = [f for f in combs if f.sender == initiator_name]
    responder_combs = [f for f in combs if f.sender != initiator_name]
    if not initiator_combs or not responder_combs:
        raise AttackError("could not attribute comb-key contributions")
    au = au_rands[-1]
    sres = sres_frames[-1]
    prover_addr = responder_addr if au.sender == initiator_name else initiator_addr
    return PairingTranscript(
        in_rand=in_rands[-1].frame.payload.rand,
        initiator_masked_rand=initiator_combs[-1].frame.payload.masked_rand,
        responder_masked_rand=responder_combs[-1].frame.payload.masked_rand,
        au_rand=au.frame.payload.rand,
        sres=sres.frame.payload.sres,
        initiator_addr=initiator_addr,
        responder_addr=responder_addr,
        prover_addr=prover_addr,
    )


def _xor16(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def candidate_key(transcript: PairingTranscript, pin: bytes) -> LinkKey:
    """Rebuild the combination key a given PIN would have produced."""
    k_init = e22(transcript.in_rand, pin, transcript.responder_addr)
    initiator_lk_rand = _xor16(transcript.initiator_masked_rand, k_init.value)
    responder_lk_rand = _xor16(transcript.responder_masked_rand, k_init.value)
    initiator_part = e21(initiator_lk_rand, transcript.initiator_addr)
    responder_part = e21(responder_lk_rand, transcript.responder_addr)
    return LinkKey(_xor16(initiator_part.value, responder_part.value))


def numeric_pins(digits: int = 4) -> Iterator[bytes]:
    """All numeric PINs of the given length, in counting order."""
    for value in range(10**digits):
        yield str(value).zfill(digits).encode("ascii")


def crack_pin(
    transcript: PairingTranscript, pin_space: Iterable[bytes]
) -> Optional[PinCrackResult]:
    """Search the PIN space against the sniffed SRES."""
    tried = 0
    for pin in pin_space:
        tried += 1
        key = candidate_key(transcript, pin)
        sres, _ = e1(key, transcript.au_rand, transcript.prover_addr)
        if sres == transcript.sres:
            return PinCrackResult(pin=pin, link_key=key, candidates_tried=tried)
    return None
