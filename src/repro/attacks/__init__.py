"""The paper's attacks: link key extraction and page blocking.

* :mod:`repro.attacks.scenario` — world builder: one simulator, one
  radio medium, the three-role cast (hard target M, soft target C,
  attacker A).
* :mod:`repro.attacks.attacker` — the attacker toolkit: BD_ADDR/COD
  spoofing, the bluedroid patches (drop link key requests, PLOC event
  hold), fake bonding installation.
* :mod:`repro.attacks.link_key_extraction` — the §IV attack: bond C↔M,
  impersonate M toward C, let C log its key into the HCI dump / USB
  bus, drop the link by timeout, extract the key, validate it by
  impersonating C toward M over PAN.
* :mod:`repro.attacks.page_blocking` — the §V attack: PLOC + victim-
  initiated pairing routed to the attacker + Just Works downgrade.
* :mod:`repro.attacks.baseline` — the non-page-blocked MITM connection
  race (Table II's left column).
* :mod:`repro.attacks.eavesdrop` — offline decryption of sniffed E0
  traffic using an extracted link key.
"""

from repro.attacks.scenario import World, WorldConfig, build_world
from repro.attacks.attacker import Attacker
from repro.attacks.link_key_extraction import (
    ExtractionReport,
    LinkKeyExtractionAttack,
)
from repro.attacks.page_blocking import PageBlockingAttack, PageBlockingReport
from repro.attacks.baseline import BaselineMitmTrial, run_baseline_trial
from repro.attacks.eavesdrop import AirCapture, OfflineDecryptor
from repro.attacks.exfiltration import ExfiltrationReport, exfiltrate
from repro.attacks.knob import KnobResult, brute_force_low_entropy_session
from repro.attacks.pin_crack import (
    PinCrackResult,
    crack_pin,
    numeric_pins,
    transcript_from_capture,
)

__all__ = [
    "World",
    "WorldConfig",
    "build_world",
    "Attacker",
    "ExtractionReport",
    "LinkKeyExtractionAttack",
    "PageBlockingAttack",
    "PageBlockingReport",
    "BaselineMitmTrial",
    "run_baseline_trial",
    "AirCapture",
    "OfflineDecryptor",
    "ExfiltrationReport",
    "exfiltrate",
    "KnobResult",
    "brute_force_low_entropy_session",
    "PinCrackResult",
    "crack_pin",
    "numeric_pins",
    "transcript_from_capture",
]
