"""BLURtooth: cross-transport key-derivation pivots (Antonioli et al.).

CTKD (Vol 3 Part H §2.4.2.4/.5) exists so a dual-mode pair only pairs
once: the key of one transport converts into the key of the other via
the one-way h6/h7 functions.  That convenience is exactly what turns a
single stolen key into compromise of *both* stacks:

* **BR/EDR → LE** (:class:`LeOfflineDecryptor` + :func:`derive_le_ltk`)
  — a BLAP-extracted BR/EDR link key runs through h7/h6 and becomes,
  byte for byte, the LE LTK the victims derived themselves.  Every
  sniffed LE session encrypted under that LTK falls to offline
  decryption, and the attacker can impersonate either end over LE.
* **LE → BR/EDR** (:func:`run_le_to_bredr_pivot`) — the attacker
  Just-Works-pairs over LE (no user interaction on a NoInputNoOutput
  claim), negotiates the LinkKey distribution bit, and the victim's own
  CTKD overwrites its *authenticated* BR/EDR bond with key material the
  attacker controls.

Both build on :mod:`repro.ble` and the same :class:`AirCapture`
passive-sniffer model the E0 eavesdropping attack uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.attacks.eavesdrop import AirCapture, CapturedFrame
from repro.ble.pdus import LeDataPdu, LlEncReq, LlEncRsp
from repro.core.errors import AttackError
from repro.core.types import BdAddr, LinkKey
from repro.crypto.aes import aes_ccm_decrypt
from repro.crypto.smp import le_ltk_from_bredr_link_key, le_session_key


def derive_le_ltk(link_key: LinkKey, ct2: bool = True) -> LinkKey:
    """The BR/EDR→LE conversion, on :class:`LinkKey` wrappers."""
    return LinkKey(le_ltk_from_bredr_link_key(link_key.value, ct2=ct2))


@dataclass
class LeSessionCrypto:
    """The LL encryption parameters recovered from a capture."""

    link_id: int
    central_name: str
    session_key: bytes
    iv: bytes


class LeOfflineDecryptor:
    """Decrypt captured LE traffic given a candidate LTK.

    Mirrors :class:`repro.attacks.eavesdrop.OfflineDecryptor` for the
    LE transport: the LL_ENC_REQ/LL_ENC_RSP exchange travels in the
    clear, so a passive capture plus the LTK reproduces the session key
    ``e(LTK, SKDm || SKDs)`` and the CCM nonces exactly as both
    endpoints did.
    """

    def __init__(self, capture: AirCapture, ltk: LinkKey) -> None:
        self.capture = capture
        self.ltk = ltk

    def _le_control_frames(self, pdu_type: type) -> List[CapturedFrame]:
        return [
            captured
            for captured in self.capture.frames
            if captured.frame.kind == "le-control"
            and isinstance(captured.frame.payload, pdu_type)
        ]

    def encrypted_le_frames(self, link_id: int) -> List[CapturedFrame]:
        return [
            captured
            for captured in self.capture.frames
            if captured.frame.kind == "le-data"
            and captured.frame.encrypted
            and captured.link_id == link_id
        ]

    def derive_session(self) -> LeSessionCrypto:
        """Rebuild the session key from the sniffed SKD/IV exchange."""
        enc_reqs = self._le_control_frames(LlEncReq)
        if not enc_reqs:
            raise AttackError("capture lacks an LL_ENC_REQ")
        req = enc_reqs[-1]
        responses = [
            captured
            for captured in self._le_control_frames(LlEncRsp)
            if captured.link_id == req.link_id and captured.time >= req.time
        ]
        if not responses:
            raise AttackError("capture lacks the matching LL_ENC_RSP")
        rsp = responses[0]
        skd_m, iv_m = req.frame.payload.skd_m, req.frame.payload.iv_m
        skd_s, iv_s = rsp.frame.payload.skd_s, rsp.frame.payload.iv_s
        return LeSessionCrypto(
            link_id=req.link_id,
            central_name=req.sender,
            session_key=le_session_key(self.ltk.value, skd_m, skd_s),
            iv=iv_m + iv_s,
        )

    def decrypt_all(self) -> List[Optional[bytes]]:
        """CCM-decrypt every captured LE data frame on the session's link.

        Entries are ``None`` where the MIC check fails — with the right
        LTK that never happens, with a wrong key it always does, which
        is the scenario's negative control.
        """
        session = self.derive_session()
        plaintexts: List[Optional[bytes]] = []
        counters = {True: 0, False: 0}
        for captured in self.encrypted_le_frames(session.link_id):
            from_central = captured.sender == session.central_name
            nonce = (
                counters[from_central].to_bytes(4, "big")
                + (b"\x01" if from_central else b"\x00")
                + session.iv
            )
            counters[from_central] += 1
            payload = captured.frame.payload
            data = payload.payload if isinstance(payload, LeDataPdu) else payload
            plaintexts.append(
                aes_ccm_decrypt(session.session_key, nonce, data)
            )
        return plaintexts

    def try_wrong_key(self, wrong_key: LinkKey) -> List[Optional[bytes]]:
        return LeOfflineDecryptor(self.capture, wrong_key).decrypt_all()


@dataclass
class BlurtoothReport:
    """What a cross-transport pivot achieved."""

    direction: str  # "bredr-to-le" | "le-to-bredr"
    derived_key: Optional[LinkKey] = None
    #: derived key equals the victim's own CTKD output, byte for byte
    key_matches_victim: bool = False
    #: sniffed LE traffic decrypted with the derived key
    decrypted_payloads: List[bytes] = field(default_factory=list)
    #: negative control: a wrong key yields no valid plaintext
    wrong_key_rejected: bool = False
    #: LE→BR/EDR only: the victim's BR/EDR bond was replaced
    overwrote_bredr_bond: bool = False
    prior_key_type: int = 0
    new_key_type: int = 0
    #: the attacker completed a BR/EDR connection with the pivoted key
    bredr_pivot_success: bool = False
    detail: dict = field(default_factory=dict)

    @property
    def success(self) -> bool:
        if self.direction == "bredr-to-le":
            return bool(
                self.key_matches_victim
                and self.decrypted_payloads
                and self.wrong_key_rejected
            )
        return self.overwrote_bredr_bond


def run_le_to_bredr_pivot(
    world: "object",
    attacker: "object",
    victim_m: "object",
    victim_c: "object",
    ct2: bool = True,
) -> BlurtoothReport:
    """The reverse BLURtooth pivot: Just Works LE pairing → BR/EDR bond.

    The attacker claims C's identity address over LE and a
    NoInputNoOutput IO capability, so M pairs Just Works — no popup, no
    comparison.  Both sides negotiate the LinkKey distribution bit and
    M's *own* CTKD overwrites its authenticated BR/EDR bond for C with
    key material derived from the attacker-controlled pairing.  The
    attacker then derives the same BR/EDR key, installs it as fake
    bonding (the paper's Fig. 10 primitive) and walks into an
    authenticated BR/EDR session.
    """
    from repro.attacks.attacker import Attacker
    from repro.core.types import IoCapability
    from repro.crypto.smp import bredr_link_key_from_le_ltk

    report = BlurtoothReport(direction="le-to-bredr")
    prior = victim_m.host.security.bond_for(victim_c.bd_addr)
    prior_key = prior.link_key if prior is not None else None
    report.prior_key_type = prior.key_type if prior is not None else 0

    # -- LE impersonation: become C, claim no IO, pair Just Works ---------
    attacker.ble.power_on(advertise=False)
    attacker.ble.set_le_addr(victim_c.bd_addr)
    attacker.ble.io_capability = IoCapability.NO_INPUT_NO_OUTPUT
    attacker.ble.ctkd_enabled = True
    connect_op = attacker.ble.connect(victim_m.bd_addr)
    world.run_for(12.0)
    if not connect_op.success:
        report.detail["error"] = "le_connect_failed"
        return report
    pair_op = attacker.ble.pair(victim_m.bd_addr)
    world.run_for(5.0)
    if not pair_op.success:
        report.detail["error"] = "le_pairing_failed"
        return report
    report.detail["association"] = pair_op.result
    ltk = attacker.host.security.le_ltk_for(victim_m.bd_addr)
    report.derived_key = LinkKey(
        bredr_link_key_from_le_ltk(ltk.value, ct2=ct2)
    )

    # -- did M's CTKD overwrite the BR/EDR bond? --------------------------
    record = victim_m.host.security.bond_for(victim_c.bd_addr)
    new_key = record.link_key if record is not None else None
    report.new_key_type = record.key_type if record is not None else 0
    report.overwrote_bredr_bond = bool(
        prior_key is not None and new_key is not None and new_key != prior_key
    )
    report.key_matches_victim = new_key == report.derived_key

    # -- pivot to BR/EDR with the cross-derived key -----------------------
    attacker.ble.disconnect(victim_m.bd_addr)
    world.run_for(1.0)
    world.set_in_range(victim_c, victim_m, False)
    victim_c.host.gap.set_scan_mode(connectable=False, discoverable=False)
    attacker.host.drop_link_key_requests = False
    attacker_ctl = Attacker(attacker)
    attacker_ctl.spoof_identity(
        victim_c.bd_addr,
        class_of_device=victim_c.controller.class_of_device,
        name=victim_c.controller.local_name,
    )
    attacker_ctl.install_fake_bonding(
        victim_m.bd_addr, report.derived_key, name=victim_m.controller.local_name
    )
    world.run_for(0.5)
    pbap_op = attacker.host.pbap.pull_phonebook(victim_m.bd_addr)
    world.run_for(15.0)
    report.bredr_pivot_success = bool(pbap_op.success)
    if pbap_op.success:
        report.detail["phonebook_entries"] = len(pbap_op.result)
    return report


def run_bredr_to_le_pivot(
    capture: AirCapture,
    extracted_key: LinkKey,
    victim: "object",
    victim_peer_addr: BdAddr,
    ct2: bool = True,
) -> BlurtoothReport:
    """Convert a stolen BR/EDR link key and attack the LE transport.

    ``victim`` is the device whose stored LE LTK we compare against
    (the ground truth the golden test pins); the capture holds the LE
    session the victims ran among themselves.
    """
    ltk = derive_le_ltk(extracted_key, ct2=ct2)
    victim_record = victim.host.security.bond_for(victim_peer_addr)
    victim_ltk = victim_record.ltk if victim_record is not None else None
    report = BlurtoothReport(
        direction="bredr-to-le",
        derived_key=ltk,
        key_matches_victim=victim_ltk is not None and victim_ltk == ltk,
    )
    decryptor = LeOfflineDecryptor(capture, ltk)
    try:
        plaintexts = decryptor.decrypt_all()
    except AttackError as exc:
        report.detail["decrypt_error"] = str(exc)
        return report
    report.decrypted_payloads = [p for p in plaintexts if p is not None]
    wrong = LinkKey(bytes(b ^ 0xFF for b in ltk.value))
    try:
        wrong_out = decryptor.try_wrong_key(wrong)
        report.wrong_key_rejected = all(p is None for p in wrong_out)
    except AttackError:
        report.wrong_key_rejected = True
    report.detail.update(
        frames_captured=len(capture.frames),
        payloads_recovered=len(report.decrypted_payloads),
        ct2=ct2,
    )
    return report
