"""Offline decryption of sniffed traffic with an extracted link key.

Paper §IV-C: "A would be able to decrypt not only the future, but also
the past communications of M captured by air-sniffers using the key."

The attack chain reproduced here:

1. An :class:`AirCapture` passively records a session between C and M:
   the LMP authentication (AU_RAND and the prover's SRES), the
   encryption start (EN_RAND) and the E0-encrypted ACL frames.  All of
   these travel in the clear or as ciphertext over the air.
2. Later, the attacker extracts the bonded link key from C's HCI dump.
3. :class:`OfflineDecryptor` replays the key schedule: ACO from
   ``E1(link key, AU_RAND, prover address)``, Kc from ``E3(link key,
   EN_RAND, ACO)``, then strips the E0 keystream off every captured
   ACL frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import AttackError
from repro.core.types import BdAddr, LinkKey
from repro.controller import lmp
from repro.crypto.e0 import e0_encrypt
from repro.crypto.legacy import e1, e3, reduce_key_entropy
from repro.phy.medium import AirFrame, RadioMedium


@dataclass
class CapturedFrame:
    """One sniffed air frame."""

    time: float
    link_id: int
    sender: str
    frame: AirFrame


@dataclass
class AirCapture:
    """A passive air sniffer parked near the victims."""

    frames: List[CapturedFrame] = field(default_factory=list)

    def attach(self, medium: RadioMedium) -> "AirCapture":
        medium.add_air_sniffer(self._on_frame)
        return self

    def _on_frame(
        self, time: float, link_id: int, sender: str, frame: AirFrame
    ) -> None:
        self.frames.append(CapturedFrame(time, link_id, sender, frame))

    def lmp_frames(self, pdu_type: type) -> List[CapturedFrame]:
        return [
            captured
            for captured in self.frames
            if captured.frame.kind == "lmp"
            and isinstance(captured.frame.payload, pdu_type)
        ]

    def encrypted_acl_frames(self) -> List[CapturedFrame]:
        return [
            captured
            for captured in self.frames
            if captured.frame.kind == "acl" and captured.frame.encrypted
        ]


class OfflineDecryptor:
    """Rebuilds the session keys from a capture plus the link key."""

    def __init__(
        self,
        capture: AirCapture,
        link_key: LinkKey,
        prover_addr: BdAddr,
        master_addr: BdAddr,
        master_name: str,
        encryption_key_size: int = 16,
    ) -> None:
        self.capture = capture
        self.link_key = link_key
        self.prover_addr = prover_addr
        self.master_addr = master_addr
        self.master_name = master_name
        self.encryption_key_size = encryption_key_size

    def derive_kc(self) -> bytes:
        """AU_RAND → ACO, EN_RAND → Kc, exactly as the controllers did."""
        au_rands = self.capture.lmp_frames(lmp.LmpAuRand)
        en_rands = self.capture.lmp_frames(lmp.LmpStartEncryption)
        if not au_rands or not en_rands:
            raise AttackError(
                "capture lacks the authentication / encryption-start PDUs"
            )
        # The Kc that encrypted the session was derived from the ACO of
        # the authentication that immediately preceded the encryption
        # start — not from whatever challenge was sniffed last (e.g.
        # the stalled one the extraction attack itself provokes later).
        en_capture = en_rands[-1]
        preceding = [f for f in au_rands if f.time <= en_capture.time]
        if not preceding:
            raise AttackError("no authentication precedes the encryption start")
        au_rand = preceding[-1].frame.payload.rand
        en_rand = en_capture.frame.payload.en_rand
        _, aco = e1(self.link_key, au_rand, self.prover_addr)
        kc = e3(self.link_key, en_rand, aco)
        return reduce_key_entropy(kc, self.encryption_key_size)

    def decrypt_all(self) -> List[bytes]:
        """Strip E0 off every captured encrypted ACL frame, in order."""
        kc = self.derive_kc()
        plaintexts: List[bytes] = []
        seq_by_direction = {1: 0, 2: 0}
        for captured in self.capture.encrypted_acl_frames():
            direction = 1 if captured.sender == self.master_name else 2
            clock = direction << 24 | seq_by_direction[direction]
            seq_by_direction[direction] += 1
            plaintexts.append(
                e0_encrypt(
                    kc, self.master_addr, clock, captured.frame.payload.data
                )
            )
        return plaintexts

    def try_wrong_key(self, wrong_key: LinkKey) -> Optional[List[bytes]]:
        """Sanity control: a wrong key must not reproduce plaintext."""
        decryptor = OfflineDecryptor(
            self.capture,
            wrong_key,
            self.prover_addr,
            self.master_addr,
            self.master_name,
            self.encryption_key_size,
        )
        return decryptor.decrypt_all()
