"""World construction for attack scenarios.

Every experiment runs in a :class:`World`: one deterministic simulator,
one radio medium, one trace log, and the paper's three-role cast:

* **M** — the hard target holding sensitive data (a phone),
* **C** — the soft target: an accessory or PC bonded with M, easy to
  physically access and manipulate,
* **A** — the attacker's device (a rooted Nexus 5x in the paper).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.devices.catalog import (
    LG_VELVET,
    NEXUS_5X_A6,
    build_device,
)
from repro.devices.device import Device, DeviceSpec
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.phy.medium import RadioMedium
from repro.sim.eventloop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

if TYPE_CHECKING:
    from repro.faults import InjectorRegistry
    from repro.population import Population


@dataclass
class World:
    """One simulation universe."""

    simulator: Simulator
    rng: RngRegistry
    medium: RadioMedium
    tracer: Tracer
    obs: Observability
    devices: Dict[str, Device] = field(default_factory=dict)
    #: fault-injection registry; set when a fault plan is applied
    faults: Optional["InjectorRegistry"] = None
    #: populations living in this world (appended by ``populate``)
    populations: List["Population"] = field(default_factory=list)

    def add_device(
        self, role: str, spec: DeviceSpec, bd_addr=None
    ) -> Device:
        device = build_device(
            self.simulator,
            self.medium,
            self.rng,
            spec,
            name=role,
            bd_addr=bd_addr,
            tracer=self.tracer,
            obs=self.obs,
        )
        self.devices[role] = device
        if self.faults is not None:
            self.faults.on_device_added(role, device)
        return device

    def run_for(self, seconds: float) -> None:
        self.simulator.run_for(seconds)

    def set_in_range(self, a: Device, b: Device, in_range: bool) -> None:
        self.medium.set_in_range(a.controller, b.controller, in_range)


@dataclass(frozen=True)
class WorldConfig:
    """Everything :func:`build_world` needs, in one value.

    Replaces the old ``build_world(seed, registry, max_trace_records)``
    positional sprawl: a config travels whole through campaign specs,
    worker processes and cache keys, and grows fields without breaking
    every callsite.

    ``registry`` defaults to the process-wide metrics registry so that
    counters aggregate across trial loops; pass an isolated
    :class:`MetricsRegistry` for per-run deterministic snapshots.
    ``max_trace_records`` bounds the shared tracer (ring-buffer mode)
    for multi-hundred-trial campaign runs.
    """

    seed: int = 0
    registry: Optional[MetricsRegistry] = None
    max_trace_records: Optional[int] = None
    #: declarative fault plan (FaultPlan, spec-dict list or plan
    #: mapping — anything ``FaultPlan.coerce`` accepts); wired into
    #: the world by :func:`repro.faults.apply_fault_plan`
    fault_plan: Optional[Any] = None
    #: device population built at world-construction time (a
    #: PopulationSpec, preset name, device count or JSON mapping —
    #: anything ``PopulationSpec.coerce`` accepts); applied by
    #: :func:`repro.population.populate` after the fault plan, so
    #: ambient devices are fault-visible too
    population: Optional[Any] = None


def build_world(
    config: Union[WorldConfig, int, None] = None,
    registry: Optional[MetricsRegistry] = None,
    max_trace_records: Optional[int] = None,
    *,
    seed: Optional[int] = None,
) -> World:
    """An empty world with a seeded RNG.

    Canonical form: ``build_world(WorldConfig(seed=42))``.  The legacy
    ``build_world(seed, registry, max_trace_records)`` spelling (bare
    int / keyword sprawl) still works but emits a
    ``DeprecationWarning``.
    """
    if not isinstance(config, WorldConfig):
        if config is not None and seed is not None:
            raise TypeError("pass either a positional seed or seed=, not both")
        legacy_seed = config if config is not None else seed
        if (
            legacy_seed is not None
            or registry is not None
            or max_trace_records is not None
        ):
            warnings.warn(
                "build_world(seed, registry, max_trace_records) is "
                "deprecated; pass build_world(WorldConfig(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        config = WorldConfig(
            seed=legacy_seed if legacy_seed is not None else 0,
            registry=registry,
            max_trace_records=max_trace_records,
        )
    elif registry is not None or max_trace_records is not None or seed is not None:
        raise TypeError(
            "build_world(WorldConfig(...)) takes no other arguments"
        )
    simulator = Simulator()
    rng = RngRegistry(config.seed)
    tracer = Tracer(max_records=config.max_trace_records)
    obs = Observability(
        clock=lambda: simulator.now, registry=config.registry, tracer=tracer
    )
    simulator.metrics = obs.metrics
    world = World(
        simulator=simulator,
        rng=rng,
        medium=RadioMedium(
            simulator, rng, tracer=tracer, metrics=obs.metrics
        ),
        tracer=tracer,
        obs=obs,
    )
    if config.fault_plan is not None:
        from repro.faults import apply_fault_plan

        apply_fault_plan(world, config.fault_plan)
    if config.population is not None:
        from repro.population import populate

        populate(world, config.population)
    return world


def standard_cast(
    world: World,
    m_spec: DeviceSpec = LG_VELVET,
    c_spec: Optional[DeviceSpec] = None,
    a_spec: DeviceSpec = NEXUS_5X_A6,
):
    """Create the M / C / A trio and power everything on.

    The cast is itself a 3-member population (the ``standard-cast``
    preset parameterised with these specs), so single-attack worlds
    and fleet-scale ambient worlds share one construction path — same
    add/power/settle order, same RNG streams, byte-identical results.
    """
    from repro.devices.catalog import NEXUS_5X_A8
    from repro.population import CastMember, PopulationSpec, populate

    population = populate(
        world,
        PopulationSpec(
            name="standard-cast",
            members=(
                # Live DeviceSpec objects, not keys: callers hand in
                # non-catalog variants (hardened secure-HCI specs).
                CastMember(role="M", spec=m_spec),
                CastMember(role="C", spec=c_spec or NEXUS_5X_A8),
                CastMember(
                    role="A",
                    spec=a_spec,
                    connectable=False,
                    discoverable=False,
                ),
            ),
        ),
    )
    return population.role("M"), population.role("C"), population.role("A")


def bond(world: World, initiator: Device, responder: Device) -> None:
    """Legitimately pair two devices (both users consenting).

    This is the pre-state of the link key extraction attack: C and M
    already share a bonded link key from an ordinary pairing.
    """
    responder.user.note_pairing_initiated(
        initiator.bd_addr, world.simulator.now
    )
    operation = initiator.host.gap.pair(responder.bd_addr)
    world.run_for(20.0)
    if not operation.success:
        raise RuntimeError(
            f"setup pairing {initiator.name}->{responder.name} failed: "
            f"status={operation.status}"
        )
    initiator.host.gap.disconnect(responder.bd_addr)
    world.run_for(2.0)
