"""The page blocking attack (paper §V, Fig. 6b) with SSP downgrade.

The attacker never races the legitimate accessory for the victim's
page.  Instead:

1. A sets its IO capability to NoInputNoOutput (Just Works downgrade).
2. A impersonates C (BD_ADDR, COD, name).
3. A *initiates* a connection to M and stays in PLOC — the host-layer
   connection is never completed on A's side, but M's host now has a
   live ACL link whose peer address reads as C.
4. M's user scans for devices; the real C answers the inquiry.
5. M's user taps "pair" on C.
6. M's GAP sees the existing connection to C's address and **skips the
   page entirely**, sending the pairing straight down the link — which
   terminates at A.  Just Works runs; on 5.0+ a bare Yes/No popup
   appears right after the user's own tap, and is accepted.

Success is deterministic because there is no race left to lose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.types import IoCapability, LinkKeyType
from repro.attacks.attacker import Attacker
from repro.attacks.scenario import World
from repro.devices.device import Device
from repro.snoop.hcidump import HciDump


@dataclass
class PageBlockingReport:
    """Outcome of one page blocking + downgrade run."""

    m_device: str
    m_os: str
    mitm_connection: bool = False  # M's pairing link terminates at A
    paired: bool = False  # SSP completed
    downgraded_to_just_works: bool = False
    popup_shown_on_m: bool = False
    m_flow: List[str] = field(default_factory=list)  # Fig. 12b sequence
    m_dump: Optional[HciDump] = None
    notes: List[str] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """Table II verdict: the MITM connection was established."""
        return self.mitm_connection


class PageBlockingAttack:
    """Drives the Fig. 6b procedure."""

    def __init__(
        self,
        world: World,
        attacker_device: Device,
        c: Device,
        m: Device,
        ploc_hold_seconds: float = 10.0,
    ) -> None:
        self.world = world
        self.attacker = Attacker(attacker_device)
        self.c = c
        self.m = m
        self.ploc_hold_seconds = ploc_hold_seconds

    def run(
        self,
        pairing_delay: float = 5.0,
        capture_m_dump: bool = True,
        run_discovery: bool = True,
    ) -> PageBlockingReport:
        """Execute the attack; ``pairing_delay`` is when M's user acts."""
        world = self.world
        metrics = world.obs.metrics
        metrics.counter("attack.page_block_attempts").inc()
        report = PageBlockingReport(
            m_device=self.m.spec.marketing_name, m_os=self.m.spec.os
        )
        m_dump = None
        if capture_m_dump:
            m_dump = HciDump(name="M-dump").attach(self.m.transport)
            report.m_dump = m_dump

        with world.obs.span(
            "attack.page_blocking", source="A", victim=self.m.name
        ) as attack_span:
            # Steps 1-2: downgrade posture + identity theft.
            self.attacker.set_io_capability(IoCapability.NO_INPUT_NO_OUTPUT)
            self.attacker.spoof_device(self.c)

            # Step 3: A initiates the connection to M, then freezes its
            # own host — the PLOC state.
            self.attacker.device.host.gap.connect(self.m.bd_addr)
            self.attacker.enter_ploc(self.ploc_hold_seconds)

            # Steps 4-5: M's user discovers devices (the real C responds).
            if run_discovery:
                world.simulator.schedule(
                    1.0,
                    lambda: self.m.host.gap.start_discovery(inquiry_length=2),
                )

            # Step 6: M's user initiates pairing with C.
            pair_holder = {}

            def user_pairs() -> None:
                pair_holder["op"] = self.m.host.gap.pair(self.c.bd_addr)

            world.simulator.schedule(pairing_delay, user_pairs)
            world.run_for(self.ploc_hold_seconds + pairing_delay + 20.0)

        pair_op = pair_holder.get("op")
        if pair_op is None or not pair_op.done:
            report.notes.append("pairing never completed")
            attack_span.set_attr("outcome", "pairing_incomplete")
            return report

        # Whose physical link did M's pairing ride on?
        report.mitm_connection = self._m_linked_to_attacker()
        report.paired = pair_op.success
        attack_span.set_attr("outcome", "mitm" if report.mitm_connection else "lost")
        if report.mitm_connection:
            metrics.counter("attack.page_block_success").inc()

        key_record = self.m.host.security.bond_for(self.c.bd_addr)
        if key_record is not None:
            report.downgraded_to_just_works = key_record.key_type in (
                LinkKeyType.UNAUTHENTICATED_COMBINATION_P192,
                LinkKeyType.UNAUTHENTICATED_COMBINATION_P256,
            )
            attacker_record = self.attacker.device.host.security.bond_for(
                self.m.bd_addr
            )
            if attacker_record is not None and report.mitm_connection:
                if attacker_record.link_key != key_record.link_key:
                    report.notes.append("key mismatch between M and A?!")
        report.popup_shown_on_m = self.m.user.popups_seen > 0
        if m_dump is not None:
            report.m_flow = [
                entry.packet.display_name for entry in m_dump.entries()
            ]
        return report

    def _m_linked_to_attacker(self) -> bool:
        """Check which physical device sits on M's link to 'C'."""
        info = self.m.host.gap.connections.get(self.c.bd_addr)
        attacker_ctrl = self.attacker.device.controller
        if info is not None:
            link = self.m.controller.link_by_handle(info.handle)
            if link is not None:
                peer = link.phys.peer_of(self.m.controller)
                return peer is attacker_ctrl
        # The link may already be gone; fall back to bonding evidence:
        # a Just Works key shared with the attacker proves the MITM.
        m_record = self.m.host.security.bond_for(self.c.bd_addr)
        a_record = self.attacker.device.host.security.bond_for(self.m.bd_addr)
        return (
            m_record is not None
            and a_record is not None
            and m_record.link_key == a_record.link_key
        )
