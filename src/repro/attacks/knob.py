"""KNOB-style low-entropy session brute forcing (paper §VIII context).

The KNOB attack (Antonioli et al., USENIX Sec'19) manipulates the
encryption key size negotiation so two victims agree on Kc' with one
byte of entropy.  The paper positions BLAP against it: KNOB needs
firmware modification and is per-session; link key extraction works
above the controller and is persistent.

This module demonstrates the *consequence* of a KNOB'd negotiation:
with ``encryption_key_size == 1`` an air sniffer brute-forces the
256-candidate key space offline and reads the session without ever
touching the link key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.errors import AttackError
from repro.core.types import BdAddr
from repro.attacks.eavesdrop import AirCapture
from repro.crypto.e0 import e0_encrypt
from repro.crypto.legacy import reduce_key_entropy
from repro.obs.metrics import get_global_registry


@dataclass(frozen=True)
class KnobResult:
    """A successful low-entropy brute force."""

    kc_prime: bytes
    plaintexts: List[bytes]
    candidates_tried: int


def _decrypt_session(
    capture: AirCapture, kc_prime: bytes, master_addr: BdAddr, master_name: str
) -> List[bytes]:
    plaintexts = []
    seq_by_direction = {1: 0, 2: 0}
    for captured in capture.encrypted_acl_frames():
        direction = 1 if captured.sender == master_name else 2
        clock = direction << 24 | seq_by_direction[direction]
        seq_by_direction[direction] += 1
        plaintexts.append(
            e0_encrypt(kc_prime, master_addr, clock, captured.frame.payload.data)
        )
    return plaintexts


def brute_force_low_entropy_session(
    capture: AirCapture,
    master_addr: BdAddr,
    master_name: str,
    entropy_bytes: int,
    plaintext_predicate: Callable[[List[bytes]], bool],
) -> Optional[KnobResult]:
    """Search the reduced key space against a known-plaintext check.

    ``plaintext_predicate`` recognises a correct decryption (e.g. an
    L2CAP header shape or an expected marker).  With ``entropy_bytes
    == 1`` the space is 256 candidates; 16 bytes would be infeasible —
    which is the entire point of the negotiation mitigation.
    """
    if not capture.encrypted_acl_frames():
        raise AttackError("capture holds no encrypted traffic")
    if entropy_bytes > 2:
        raise AttackError(
            f"brute forcing {entropy_bytes} bytes of entropy is not "
            "feasible (that is the mitigation working)"
        )
    candidates_metric = get_global_registry().counter(
        "attack.knob_candidates_tried"
    )
    tried = 0
    for candidate in range(256 ** entropy_bytes):
        tried += 1
        candidates_metric.inc()
        kc_prime = reduce_key_entropy(
            candidate.to_bytes(entropy_bytes, "big") + b"\x00" * 15,
            entropy_bytes,
        )
        plaintexts = _decrypt_session(capture, kc_prime, master_addr, master_name)
        if plaintext_predicate(plaintexts):
            return KnobResult(
                kc_prime=kc_prime, plaintexts=plaintexts, candidates_tried=tried
            )
    return None
