"""Post-extraction data exfiltration — the attack model's end goal.

Paper §III: "an attacker's final goal is to Bluetooth connect to M in
order to mine sensitive information ... sensitive Bluetooth data such
as phone books, messages, and phone call conversations of M will be
continuously leaked."

This module closes the loop: given an extracted link key, install the
fake bonding (Fig. 10) on the attacker device, impersonate the trusted
accessory, and pull M's phonebook (PBAP) and message store (MAP) —
both of which are gated only by LMP authentication, i.e. by possession
of the link key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.types import BdAddr, LinkKey
from repro.attacks.attacker import Attacker
from repro.attacks.scenario import World
from repro.devices.device import Device
from repro.host.map_profile import Message
from repro.host.pbap import Contact


@dataclass
class ExfiltrationReport:
    """What the impersonating attacker managed to pull from M."""

    impersonated: BdAddr
    phonebook: List[Contact] = field(default_factory=list)
    messages: List[Message] = field(default_factory=list)
    pairing_popups_on_m: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return bool(self.phonebook or self.messages)

    @property
    def silent(self) -> bool:
        """True when the victim saw no pairing UI at all."""
        return self.pairing_popups_on_m == 0


def exfiltrate(
    world: World,
    attacker_device: Device,
    victim_m: Device,
    trusted_c_addr: BdAddr,
    trusted_c_cod: int,
    trusted_c_name: str,
    link_key: LinkKey,
) -> ExfiltrationReport:
    """Impersonate C toward M with an extracted key and mine data.

    Pre-condition: the real C is out of M's radio range (or powered
    down); the attacker holds its identity and its link key.
    """
    attacker = Attacker(attacker_device)
    attacker.spoof_identity(
        trusted_c_addr, class_of_device=trusted_c_cod, name=trusted_c_name
    )
    attacker.install_fake_bonding(
        victim_m.bd_addr, link_key, name=victim_m.controller.local_name
    )
    world.run_for(0.5)

    report = ExfiltrationReport(impersonated=trusted_c_addr)
    popups_before = victim_m.user.popups_seen

    pbap_op = attacker_device.host.pbap.pull_phonebook(victim_m.bd_addr)
    world.run_for(15.0)
    if pbap_op.success:
        report.phonebook = pbap_op.result
    else:
        report.notes.append(f"PBAP pull failed: status={pbap_op.status}")

    map_op = attacker_device.host.map.list_messages(victim_m.bd_addr)
    world.run_for(15.0)
    if map_op.success:
        report.messages = map_op.result
    else:
        report.notes.append(f"MAP listing failed: status={map_op.status}")

    report.pairing_popups_on_m = victim_m.user.popups_seen - popups_before
    return report
