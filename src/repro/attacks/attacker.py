"""The attacker toolkit — everything the paper's A can do.

Mirrors the implementation surface of §VI-A: the attacker owns a
rooted device (Nexus 5x with a locally-built boot.img in the paper),
so they can rewrite the BD_ADDR file, the Class-of-Device definition,
and the bluedroid host stack library.  Everything here stays **above
the controller layer** — the property the paper emphasises versus
BIAS/KNOB, which need firmware changes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.types import BdAddr, ClassOfDevice, IoCapability, LinkKey
from repro.devices.device import Device
from repro.host.storage import BondingRecord


class Attacker:
    """Wraps the attacker's device with the paper's capabilities."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self.original_addr = device.bd_addr

    # ------------------------------------------------------------- spoofing

    def spoof_identity(
        self,
        addr: BdAddr,
        class_of_device: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        """Assume another device's Bluetooth identity.

        Rewrites ``/persist/bdaddr.txt`` (BD_ADDR), ``bt_target.h``
        (COD, Fig. 8) and the advertised name.
        """
        self.device.set_bd_addr(addr)
        if class_of_device is not None:
            self.device.set_class_of_device(class_of_device)
        if name is not None:
            self.device.controller.local_name = name

    def spoof_device(self, victim: Device) -> None:
        """Clone a victim device's visible identity."""
        self.spoof_identity(
            victim.bd_addr,
            class_of_device=victim.controller.class_of_device,
            name=victim.controller.local_name,
        )

    def restore_identity(self) -> None:
        self.device.set_bd_addr(self.original_addr)

    def pose_as_handsfree(self) -> None:
        """The Fig. 8 COD rewrite: mobile type → hands-free type."""
        self.device.set_class_of_device(ClassOfDevice.HANDSFREE)

    # --------------------------------------------------------- stack patches

    def patch_drop_link_key_requests(self, enabled: bool = True) -> None:
        """The Fig. 9 patch: comment out btu_hcif_link_key_request_evt.

        With the handler gone the attacker's host never answers the
        controller's key request, so the LMP authentication the victim
        accessory started stalls and the link dies by *timeout* — no
        authentication failure, no key deletion on the victim.
        """
        self.device.host.drop_link_key_requests = enabled

    def set_io_capability(self, io_capability: IoCapability) -> None:
        """SSP downgrade knob: NoInputNoOutput forces Just Works."""
        self.device.host.io_capability = io_capability

    def enter_ploc(self, hold_seconds: float = 10.0) -> None:
        """The Fig. 13 PoC: postpone host event processing.

        The controller-level connection completes normally while the
        host never advances to the host-layer connection — the
        'Physical Layer Only Connection' of §V-B.
        """
        self.device.host.hold_events(hold_seconds)

    # ------------------------------------------------------ bonding forgery

    def install_fake_bonding(
        self,
        target_addr: BdAddr,
        link_key: LinkKey,
        name: str = "",
        services: Optional[List[int]] = None,
    ) -> None:
        """Write the Fig. 10 fake bonding entry and reload the stack.

        ``services`` defaults to the PAN UUIDs (0x1115/0x1116) the
        paper uses to trigger LMP authentication via tethering.
        """
        record = BondingRecord(
            addr=target_addr,
            link_key=link_key,
            name=name,
            services=services if services is not None else [0x1115, 0x1116],
        )
        self.device.install_bonding(record, su=True)
        self.device.power_cycle_bluetooth()

    # -------------------------------------------------------------- posture

    def go_connectable(self) -> None:
        """Enter page scan so pages for the spoofed address reach us."""
        self.device.host.gap.set_scan_mode(connectable=True, discoverable=False)

    def go_dark(self) -> None:
        """Leave all scan modes (invisible)."""
        self.device.host.gap.set_scan_mode(connectable=False, discoverable=False)
