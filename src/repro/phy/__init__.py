"""Simulated BR/EDR radio medium.

The medium delivers inquiry trains, page requests and baseband frames
between registered controllers, modelling exactly the physical-layer
behaviour the page blocking attack exploits:

* **Page response race** — when two controllers share one (spoofed)
  BD_ADDR and both are in page scan, whichever one's scan window opens
  first wins the connection.  The winner is decided by the uniform
  phase of each responder's scan interval, which is why the paper's
  baseline MITM success rates hover randomly in the 42–60% band.
* **Address anonymity after connect** — once a physical link exists,
  frames are routed by the link, not by BD_ADDR, mirroring the
  LT_ADDR-based addressing that makes spoofed connections stick.
"""

from repro.phy.medium import AirFrame, PhysicalLink, RadioMedium

__all__ = ["AirFrame", "PhysicalLink", "RadioMedium"]
