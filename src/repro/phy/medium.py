"""The shared radio medium: inquiry, paging, links and air sniffing.

Timing model
============

Scan behaviour follows the specification's page/inquiry scan model: a
scanning device listens for a ``window`` every ``interval`` (defaults
1.28 s / 11.25 ms).  A page directed at BD_ADDR ``X`` reaches every
in-range controller currently page-scanning as ``X``; each candidate's
response delay is its uniformly distributed scan phase (how far away
its next window is).  The earliest responder wins the link.

With a single legitimate responder this just adds sub-second latency.
With *two* responders sharing a spoofed address — the SSP downgrade
baseline of Table II — it is a fair race, and the attacker wins only
about half the time.  The page blocking attack sidesteps the race by
never racing: the attacker becomes the initiator instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.core.types import BdAddr
from repro.sim.eventloop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


@dataclass
class AirFrame:
    """One over-the-air baseband frame (LMP PDU or ACL payload).

    LE traffic rides the same type with its own kinds: ``adv``
    (advertising PDUs), ``le-connect`` (CONNECT_IND), ``smp`` (Security
    Manager PDUs), ``le-control`` (LL control PDUs) and ``le-data``
    (encrypted or plaintext LE payloads).
    """

    kind: str  # "lmp" | "acl" | "adv" | "le-connect" | "smp" | "le-control" | "le-data"
    payload: Any
    encrypted: bool = False


class RadioPeer(Protocol):
    """What the medium needs to know about a controller."""

    name: str

    @property
    def bd_addr(self) -> BdAddr: ...

    @property
    def inquiry_scan_enabled(self) -> bool: ...

    @property
    def page_scan_enabled(self) -> bool: ...

    @property
    def page_scan_interval_s(self) -> float: ...

    @property
    def class_of_device_value(self) -> int: ...

    def on_page_reached(self, link: "PhysicalLink", initiator: "RadioPeer") -> None: ...

    def on_air_frame(self, link: "PhysicalLink", frame: AirFrame) -> None: ...

    def on_link_dropped(self, link: "PhysicalLink", reason: int) -> None: ...


class LePeer(Protocol):
    """What the medium needs to know about an LE link layer.

    Deliberately independent of :class:`RadioPeer`: a dual-mode device
    registers twice (its BR/EDR controller and its LE stack), an
    LE-only device registers only here.  Data frames on an established
    LE link ride the same :meth:`RadioMedium.send_frame` path, so an
    LE peer also implements ``on_air_frame``/``on_link_dropped``.
    """

    name: str

    @property
    def le_addr(self) -> BdAddr: ...

    @property
    def le_scan_enabled(self) -> bool: ...

    @property
    def le_connectable(self) -> bool: ...

    @property
    def adv_interval_s(self) -> float: ...

    def on_le_advertisement(self, advertiser: BdAddr, payload: Any) -> None: ...

    def on_le_connect(self, link: "PhysicalLink", initiator: "LePeer") -> None: ...

    def on_air_frame(self, link: "PhysicalLink", frame: AirFrame) -> None: ...

    def on_link_dropped(self, link: "PhysicalLink", reason: int) -> None: ...


@dataclass
class PhysicalLink:
    """A live baseband link between two controllers."""

    link_id: int
    initiator: RadioPeer
    responder: RadioPeer
    created_at: float
    alive: bool = True
    frames_exchanged: int = field(default=0)

    def peer_of(self, controller: RadioPeer) -> RadioPeer:
        if controller is self.initiator:
            return self.responder
        if controller is self.responder:
            return self.initiator
        raise ValueError(f"{controller.name} is not on link {self.link_id}")

    def involves(self, controller: RadioPeer) -> bool:
        return controller is self.initiator or controller is self.responder


@dataclass(frozen=True)
class InquiryResponse:
    """What a responder broadcasts back during inquiry."""

    bd_addr: BdAddr
    class_of_device: int
    clock_offset: int
    name: str = ""


# Air sniffer callback: (time, link_id, sender_name, frame).
AirSniffer = Callable[[float, int, str, AirFrame], None]

_FRAME_LATENCY = 0.000625  # one slot


@dataclass
class FrameFate:
    """A fault filter's verdict on one in-flight frame."""

    action: str = "deliver"  # "deliver" | "drop" | "mutate"
    payload: Any = None  # replacement payload when action == "mutate"
    extra_delay_s: float = 0.0


# Fault filter: (now, link, sender, frame) -> FrameFate.  Filters run
# after sniffers (a lost frame was still transmitted) and only when a
# fault plan attached one — the lossless path makes no RNG draws.
FrameFaultFilter = Callable[[float, "PhysicalLink", RadioPeer, AirFrame], FrameFate]


class RadioMedium:
    """The shared wireless channel all simulated controllers live on."""

    #: trace source name for radio-level events in merged timelines
    TRACE_SOURCE = "phy"

    def __init__(
        self,
        simulator: Simulator,
        rng: RngRegistry,
        tracer: Optional[Tracer] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.simulator = simulator
        self.rng = rng.stream("radio-medium")
        self._rng_registry = rng  # child streams for the loss_rate shim
        self.tracer = tracer if tracer is not None else Tracer()
        if metrics is None:
            from repro.obs.metrics import get_global_registry

            metrics = get_global_registry()
        self._m_pages = metrics.counter("phy.pages")
        self._m_page_responses = metrics.counter("phy.page_responses")
        self._m_page_timeouts = metrics.counter("phy.page_timeouts")
        self._m_page_latency = metrics.histogram("phy.page_response_latency")
        self._m_frames_sent = metrics.counter("phy.frames_sent")
        self._m_frames_lost = metrics.counter("phy.frames_lost")
        self._m_links_established = metrics.counter("phy.links_established")
        self._m_links_dropped = metrics.counter("phy.links_dropped")
        self._m_inquiries = metrics.counter("phy.inquiries")
        self._m_le_advertisements = metrics.counter("phy.le_advertisements")
        self._m_le_connects = metrics.counter("phy.le_connects")
        self._controllers: List[RadioPeer] = []
        # LE link layers share the medium but register separately; a
        # dual-mode device appears in both lists.  LE activity draws
        # from its own child stream so mixed worlds never perturb the
        # BR/EDR draw order (the golden-artifact determinism rule).
        self._le_peers: List["LePeer"] = []
        self._le_addr_index: Optional[Dict[BdAddr, List["LePeer"]]] = None
        self._le_rng = rng.stream("radio-medium:le")
        # Lazy BD_ADDR -> [peers] index so a page is O(matching peers)
        # instead of a scan over every registered controller (the
        # fleet-scale hot spot: ambient churn pages constantly).
        # Invalidated wholesale on register/unregister and on any
        # address change (spoofing) — rebuilt in registration order so
        # candidate RNG draws replay identically.
        self._addr_index: Optional[Dict[BdAddr, List[RadioPeer]]] = None
        self._links: Dict[int, PhysicalLink] = {}
        self._link_ids = itertools.count(1)
        self._sniffers: List[AirSniffer] = []
        # Visibility: by default every registered controller hears every
        # other one.  Pairs listed here are out of range of each other.
        self._blocked_pairs: set = set()
        # Failure injection: repro.faults filters judge each frame.
        # Lost frames still reach passive sniffers — they were
        # transmitted — but never the intended receiver.
        self._frame_fault_filters: List[FrameFaultFilter] = []
        self._loss_shim = None  # registry behind the deprecated loss_rate
        self._loss_shim_rate = 0.0
        self.frames_lost = 0

    # -- registration ------------------------------------------------------

    def register(self, controller: RadioPeer) -> None:
        if controller not in self._controllers:
            self._controllers.append(controller)
            self._addr_index = None

    def unregister(self, controller: RadioPeer) -> None:
        self._controllers.remove(controller)
        self._addr_index = None

    def notify_addr_changed(self, peer: Optional[RadioPeer] = None) -> None:
        """A registered peer's BD_ADDR changed (e.g. spoofing).

        :class:`~repro.controller.controller.Controller` calls this
        from its ``bd_addr`` setter; any custom :class:`RadioPeer`
        that mutates its address after registration must do the same
        or pages toward the new address may miss it.
        """
        self._addr_index = None

    def register_le(self, peer: "LePeer") -> None:
        if peer not in self._le_peers:
            self._le_peers.append(peer)
            self._le_addr_index = None

    def unregister_le(self, peer: "LePeer") -> None:
        if peer in self._le_peers:
            self._le_peers.remove(peer)
            self._le_addr_index = None

    def notify_le_addr_changed(self, peer: Optional["LePeer"] = None) -> None:
        """A registered LE peer's advertising address changed (spoofing)."""
        self._le_addr_index = None

    def _le_peers_for_addr(self, addr: BdAddr) -> List["LePeer"]:
        index = self._le_addr_index
        if index is None:
            index = {}
            for peer in self._le_peers:
                index.setdefault(peer.le_addr, []).append(peer)
            self._le_addr_index = index
        return index.get(addr, [])

    def _peers_for_addr(self, addr: BdAddr) -> List[RadioPeer]:
        index = self._addr_index
        if index is None:
            index = {}
            for peer in self._controllers:
                index.setdefault(peer.bd_addr, []).append(peer)
            self._addr_index = index
        return index.get(addr, [])

    def set_in_range(self, a: RadioPeer, b: RadioPeer, in_range: bool) -> None:
        """Make a pair of controllers (un)reachable from each other."""
        key = frozenset((a.name, b.name))
        if in_range:
            self._blocked_pairs.discard(key)
        else:
            self._blocked_pairs.add(key)

    def _reachable(self, a: RadioPeer, b: RadioPeer) -> bool:
        # Fast path: no range restrictions (the common case) costs one
        # truthiness check instead of a frozenset allocation per pair.
        if not self._blocked_pairs:
            return True
        return frozenset((a.name, b.name)) not in self._blocked_pairs

    def add_air_sniffer(self, sniffer: AirSniffer) -> None:
        """Attach a passive air sniffer (sees ciphertext, not plaintext)."""
        self._sniffers.append(sniffer)

    def remove_air_sniffer(self, sniffer: AirSniffer) -> None:
        if sniffer in self._sniffers:
            self._sniffers.remove(sniffer)

    def _sniff(
        self, now: float, link_id: int, sender_name: str, frame: AirFrame
    ) -> None:
        """Feed one frame to every sniffer, *before* fault filters run.

        A dropped or mutated frame was still transmitted — passive
        observers (air captures, the detection feed) always see the
        original, which is the ordering ``docs/faults.md`` promises.
        """
        for sniffer in self._sniffers:
            sniffer(now, link_id, sender_name, frame)

    # -- failure injection -------------------------------------------------

    def add_frame_fault_filter(self, fault_filter: FrameFaultFilter) -> None:
        """Attach a repro.faults frame filter (runs after sniffers)."""
        if fault_filter not in self._frame_fault_filters:
            self._frame_fault_filters.append(fault_filter)

    def remove_frame_fault_filter(self, fault_filter: FrameFaultFilter) -> None:
        if fault_filter in self._frame_fault_filters:
            self._frame_fault_filters.remove(fault_filter)

    def _fault_fate(self, frame: AirFrame) -> FrameFate:
        """Combined filter verdict for a link-less frame (page traffic).

        Mutations are meaningless for the synthetic page/page-response
        frames, so only drop and extra delay survive.
        """
        extra = 0.0
        for fault_filter in self._frame_fault_filters:
            fate = fault_filter(self.simulator.now, None, None, frame)
            if fate.action == "drop":
                return FrameFate(action="drop")
            extra += fate.extra_delay_s
        return FrameFate(extra_delay_s=extra)

    @property
    def loss_rate(self) -> float:
        """Deprecated: the per-frame loss probability shim.

        Assigning builds the equivalent probabilistic
        ``phy.frame_loss`` :class:`~repro.faults.spec.FaultSpec` under
        a ``DeprecationWarning``; pass ``WorldConfig.fault_plan``
        instead.
        """
        return self._loss_shim_rate

    @loss_rate.setter
    def loss_rate(self, probability: float) -> None:
        import warnings

        warnings.warn(
            "RadioMedium.loss_rate is deprecated; use a phy.frame_loss "
            "FaultSpec via WorldConfig.fault_plan instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.faults import set_medium_loss_rate

        self._loss_shim_rate = probability
        set_medium_loss_rate(self, probability)

    # -- inquiry -----------------------------------------------------------

    def start_inquiry(
        self,
        source: RadioPeer,
        duration_s: float,
        on_response: Callable[[InquiryResponse], None],
        on_complete: Callable[[], None],
    ) -> None:
        """Broadcast an inquiry train; discoverable peers respond.

        Each responder answers at a random point inside the inquiry
        window (its inquiry-scan phase).
        """
        self._m_inquiries.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "phy-inquiry",
            f"inquiry from {source.name} ({duration_s:.2f}s)",
            initiator=source.name,
            duration_s=duration_s,
        )
        for peer in self._controllers:
            if peer is source or not self._reachable(source, peer):
                continue
            if not peer.inquiry_scan_enabled:
                continue
            delay = self.rng.uniform(0.01, max(0.02, duration_s * 0.8))
            response = InquiryResponse(
                bd_addr=peer.bd_addr,
                class_of_device=peer.class_of_device_value,
                clock_offset=self.rng.randrange(0, 0x8000),
                name=getattr(peer, "local_name", ""),
            )
            self.simulator.schedule(delay, on_response, response)
        self.simulator.schedule(duration_s, on_complete)

    # -- paging ------------------------------------------------------------

    def page(
        self,
        source: RadioPeer,
        target: BdAddr,
        timeout_s: float,
        on_result: Callable[[Optional[PhysicalLink]], None],
    ) -> None:
        """Page ``target``; the earliest-scanning matching responder wins.

        This is where the Table II baseline race happens: every in-range
        controller page-scanning as ``target`` (the victim accessory
        *and* the spoofing attacker) draws a response delay uniform in
        its scan interval, and only the winner gets the link.
        """
        self._m_pages.inc()
        now = self.simulator.now
        self.tracer.emit(
            now,
            self.TRACE_SOURCE,
            "phy-page",
            f"{source.name} pages {target}",
            initiator=source.name,
            target=str(target),
        )
        # The synthetic page-train frame goes to passive sniffers first
        # (it was transmitted), then to the fault filters which decide
        # whether anyone hears it.
        if self._sniffers:
            self._sniff(now, 0, source.name, AirFrame(kind="page", payload=b""))
        page_extra = 0.0
        if self._frame_fault_filters:
            # Page trains and page responses ride the same RF medium as
            # data frames, so phy faults perturb the Table II race too:
            # a dropped train means nobody hears the page, a dropped or
            # jittered response changes who wins.
            fate = self._fault_fate(AirFrame(kind="page", payload=b""))
            if fate.action == "drop":
                self.frames_lost += 1
                self._m_frames_lost.inc()
                self._m_page_timeouts.inc()
                self.tracer.emit(
                    self.simulator.now,
                    self.TRACE_SOURCE,
                    "phy-page",
                    f"page train from {source.name} lost on the air",
                )
                self.simulator.schedule(timeout_s, on_result, None)
                return
            page_extra = fate.extra_delay_s
        candidates: List[Tuple[float, RadioPeer]] = []
        for peer in self._peers_for_addr(target):
            if peer is source or not self._reachable(source, peer):
                continue
            if not peer.page_scan_enabled:
                continue
            delay = self.rng.uniform(0.0, peer.page_scan_interval_s)
            if self._sniffers:
                self._sniff(
                    now, 0, peer.name, AirFrame(kind="page-response", payload=b"")
                )
            if self._frame_fault_filters:
                fate = self._fault_fate(
                    AirFrame(kind="page-response", payload=b"")
                )
                if fate.action == "drop":
                    self.frames_lost += 1
                    self._m_frames_lost.inc()
                    self.tracer.emit(
                        self.simulator.now,
                        self.TRACE_SOURCE,
                        "phy-page",
                        f"page response from {peer.name} lost on the air",
                    )
                    continue
                delay += page_extra + fate.extra_delay_s
            candidates.append((delay, peer))
        if not candidates:
            self._m_page_timeouts.inc()
            self.simulator.schedule(timeout_s, on_result, None)
            return
        winner_delay, winner = min(candidates, key=lambda item: item[0])
        if winner_delay > timeout_s:
            self._m_page_timeouts.inc()
            self.simulator.schedule(timeout_s, on_result, None)
            return
        self._m_page_responses.inc()
        self._m_page_latency.observe(winner_delay)
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "phy-page",
            f"{winner.name} wins the page response race",
            latency_s=winner_delay,
            candidates=len(candidates),
        )
        self.simulator.schedule(
            winner_delay, self._establish, source, winner, on_result
        )

    def _establish(
        self,
        initiator: RadioPeer,
        responder: RadioPeer,
        on_result: Callable[[Optional[PhysicalLink]], None],
    ) -> None:
        link = PhysicalLink(
            link_id=next(self._link_ids),
            initiator=initiator,
            responder=responder,
            created_at=self.simulator.now,
        )
        self._links[link.link_id] = link
        self._m_links_established.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "phy-link",
            f"link {link.link_id} up: {initiator.name} -> {responder.name}",
        )
        responder.on_page_reached(link, initiator)
        on_result(link)

    # -- LE advertising / connection ---------------------------------------

    def le_advertise(self, source: "LePeer", payload: Any) -> None:
        """Broadcast one advertising PDU to every in-range LE scanner.

        Passive sniffers hear it first (advertising is cleartext by
        definition), then fault filters decide whether scanners do.
        """
        self._m_le_advertisements.inc()
        now = self.simulator.now
        frame = AirFrame(kind="adv", payload=payload)
        if self._sniffers:
            self._sniff(now, 0, source.name, frame)
        if self._frame_fault_filters:
            fate = self._fault_fate(frame)
            if fate.action == "drop":
                self.frames_lost += 1
                self._m_frames_lost.inc()
                return
        addr = source.le_addr
        for peer in self._le_peers:
            if peer is source or not peer.le_scan_enabled:
                continue
            if not self._reachable(source, peer):
                continue
            self.simulator.schedule(
                _FRAME_LATENCY, peer.on_le_advertisement, addr, payload
            )

    def le_connect(
        self,
        initiator: "LePeer",
        target: BdAddr,
        on_result: Callable[[Optional[PhysicalLink]], None],
    ) -> None:
        """Send a CONNECT_IND toward ``target``.

        When the CONNECT_IND is lost to a fault filter, or no
        connectable peer advertises as ``target``, *nobody answers*:
        ``on_result`` is never invoked and the initiator's
        connection-establishment guard (mirroring
        ``Gap.CONNECT_TIMEOUT``) is what fails the operation.  That is
        deliberate — a blackholed CONNECT_IND must not hang a trial.
        """
        self._m_le_connects.inc()
        now = self.simulator.now
        self.tracer.emit(
            now,
            self.TRACE_SOURCE,
            "phy-le-connect",
            f"{initiator.name} sends CONNECT_IND to {target}",
            initiator=initiator.name,
            target=str(target),
        )
        frame = AirFrame(kind="le-connect", payload=b"")
        if self._sniffers:
            self._sniff(now, 0, initiator.name, frame)
        extra = 0.0
        if self._frame_fault_filters:
            fate = self._fault_fate(frame)
            if fate.action == "drop":
                self.frames_lost += 1
                self._m_frames_lost.inc()
                self.tracer.emit(
                    now,
                    self.TRACE_SOURCE,
                    "phy-le-connect",
                    f"CONNECT_IND from {initiator.name} lost on the air",
                )
                return
            extra = fate.extra_delay_s
        for peer in self._le_peers_for_addr(target):
            if peer is initiator or not peer.le_connectable:
                continue
            if not self._reachable(initiator, peer):
                continue
            # The initiator must catch an advertising event to answer
            # it; its wait is a uniform phase of the advertising
            # interval, drawn from the LE child stream.
            delay = self._le_rng.uniform(0.0, max(peer.adv_interval_s, 0.001))
            self.simulator.schedule(
                delay + extra, self._le_establish, initiator, peer, on_result
            )
            return

    def _le_establish(
        self,
        initiator: "LePeer",
        responder: "LePeer",
        on_result: Callable[[Optional[PhysicalLink]], None],
    ) -> None:
        link = PhysicalLink(
            link_id=next(self._link_ids),
            initiator=initiator,  # type: ignore[arg-type]
            responder=responder,  # type: ignore[arg-type]
            created_at=self.simulator.now,
        )
        self._links[link.link_id] = link
        self._m_links_established.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "phy-link",
            f"LE link {link.link_id} up: {initiator.name} -> {responder.name}",
            transport="le",
        )
        responder.on_le_connect(link, initiator)
        on_result(link)

    # -- data --------------------------------------------------------------

    def send_frame(self, link: PhysicalLink, sender: RadioPeer, frame: AirFrame) -> None:
        """Deliver a frame to the other end of a link (one slot later)."""
        if not link.alive:
            return
        receiver = link.peer_of(sender)
        link.frames_exchanged += 1
        self._m_frames_sent.inc()
        now = self.simulator.now
        if self._sniffers:
            self._sniff(now, link.link_id, sender.name, frame)
        delay = _FRAME_LATENCY
        if self._frame_fault_filters:
            for fault_filter in self._frame_fault_filters:
                fate = fault_filter(now, link, sender, frame)
                if fate.action == "drop":
                    self.frames_lost += 1
                    self._m_frames_lost.inc()
                    return
                if fate.action == "mutate":
                    frame = AirFrame(
                        kind=frame.kind,
                        payload=fate.payload,
                        encrypted=frame.encrypted,
                    )
                delay += fate.extra_delay_s
        self.simulator.schedule(delay, self._deliver, link, receiver, frame)

    def _deliver(self, link: PhysicalLink, receiver: RadioPeer, frame: AirFrame) -> None:
        if link.alive:
            receiver.on_air_frame(link, frame)

    def drop_link(self, link: PhysicalLink, reason: int) -> None:
        """Tear a link down; both ends are notified."""
        if not link.alive:
            return
        link.alive = False
        self._links.pop(link.link_id, None)
        self._m_links_dropped.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "phy-link",
            f"link {link.link_id} dropped (reason={reason:#04x})",
        )
        self.simulator.schedule(_FRAME_LATENCY, link.initiator.on_link_dropped, link, reason)
        self.simulator.schedule(_FRAME_LATENCY, link.responder.on_link_dropped, link, reason)

    @property
    def active_links(self) -> List[PhysicalLink]:
        return list(self._links.values())
