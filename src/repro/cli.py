"""Command-line tools for the BLAP reproduction.

``blap`` bundles the forensic tools as file-based commands, so they
work on any btsnoop capture (including real ones pulled from an
Android bug report) and on raw USB analyzer streams:

* ``blap extract <capture.btsnoop>`` — scan an HCI dump for plaintext
  link keys (the §IV extractor).
* ``blap dump <capture.btsnoop>`` — render the Fig. 12-style frame
  table.
* ``blap usb-extract <stream.bin>`` — BinaryToHex + the ``0b 04 16``
  signature scan (the Fig. 11 pipeline).
* ``blap bin2hex <stream.bin>`` — just the converter.
* ``blap iocap [--version 4.2|5.0]`` — print the Fig. 7 matrix.
* ``blap demo <scenario>`` — run one simulated attack through the
  scenario registry and narrate the outcome (exit 1 on failure).
* ``blap timeline <scenario>`` — run a simulated attack and export the
  merged cross-device timeline as a table, JSONL, or a Chrome trace
  (open in https://ui.perfetto.dev).
* ``blap campaign {run,table1,table2,list}`` — the sharded parallel
  campaign engine: Monte-Carlo sweeps over seed ranges with on-disk
  result caching (``blap campaign table2 --trials 100 --workers 4``
  regenerates the paper's Table II).
* ``blap faults {list,describe}`` — the fault-injection catalogue;
  pair with ``--fault-plan plan.json`` on ``demo``, ``timeline`` and
  ``campaign run`` to sweep scenarios under degraded conditions.
* ``blap detect {list,scan,demo,roc}`` — the streaming detection
  subsystem: replay captures through the detectors, stage monitored
  attacks, and run ROC campaigns (TPR/FPR/latency threshold sweeps).
* ``blap store {ingest,list}`` — the indexed run store: backfill
  ``runs/<run-id>/`` JSONL artifacts into one queryable SQLite
  database (live runs stream in via ``--store`` on ``campaign run``
  and ``timeline``).
* ``blap query {runs,events,alerts,telemetry}`` — typed filters
  (time-range, device/source, span type, detector, seed) with
  pagination and aggregate counts over the store.
* ``blap serve`` — a dependency-free HTTP JSON API and live HTML view
  over the store (``/api/runs``, ``/api/runs/<id>/events``, ...).
* ``blap service {serve,loadgen,sessions}`` — the detection ingest
  service: live JSONL HCI streams over WebSockets and btsnoop capture
  uploads, scored online with verdicts identical to ``detect scan``;
  the load generator benches sustained ingest throughput.
* ``blap report`` — render the Markdown/HTML/JSON run report (Table
  I/II vs. the paper, Wilson intervals, digest quantiles, self-time
  attribution) from cached campaign results — no re-simulation on a
  warm cache; run telemetry reads through the store.
* ``blap profile {run,flame,diff}`` — deterministic perf attribution:
  profiled campaigns with self-time trees and collapsed flamegraph
  stacks (plus opt-in wall-clock cProfile sampling), byte-identical
  per seed, diffable across revisions.
* ``blap bench {compare,history}`` — the perf trajectory: diff the
  current ``BENCH_*.json`` numbers against a baseline directory
  (nonzero exit on regression, self-time culprit hints) and query
  ``BENCH_HISTORY.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.core.types import BluetoothVersion
from repro.host.iocap import render_confirmation_matrix
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import entries_from_btsnoop, render_dump_table
from repro.snoop.usb_extract import bin2hex, extract_link_keys_from_usb


def _cmd_extract(args: argparse.Namespace) -> int:
    with open(args.capture, "rb") as handle:
        raw = handle.read()
    findings = extract_link_keys(raw)
    if not findings:
        print("no link keys found in the capture")
        return 1
    for finding in findings:
        print(finding)
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    with open(args.capture, "rb") as handle:
        raw = handle.read()
    entries = entries_from_btsnoop(raw)
    print(render_dump_table(entries, include_acl=args.acl, max_rows=args.rows))
    return 0


def _cmd_usb_extract(args: argparse.Namespace) -> int:
    with open(args.stream, "rb") as handle:
        raw = handle.read()
    findings = extract_link_keys_from_usb(raw)
    if not findings:
        print("no '0b 04 16' link key signatures found")
        return 1
    for finding in findings:
        print(finding)
    return 0


def _cmd_bin2hex(args: argparse.Namespace) -> int:
    with open(args.stream, "rb") as handle:
        raw = handle.read()
    print(bin2hex(raw, group=args.group, line_width=args.width))
    return 0


def _cmd_pcap(args: argparse.Namespace) -> int:
    from repro.snoop.pcap import hci_dump_to_pcap

    with open(args.capture, "rb") as handle:
        raw = handle.read()
    pcap = hci_dump_to_pcap(raw)
    with open(args.output, "wb") as handle:
        handle.write(pcap)
    print(f"wrote {len(pcap)} bytes to {args.output}")
    return 0


def _cmd_iocap(args: argparse.Namespace) -> int:
    version = BluetoothVersion(args.version)
    print(render_confirmation_matrix(version))
    return 0


def _cmd_ble_ctkd(args: argparse.Namespace) -> int:
    """Offline CTKD calculator: one key in, the cross-transport key out.

    The BLURtooth pivot in two lines of math — paste a link key
    extracted by ``blap extract`` and read off the victim's LE LTK.
    """
    from repro.crypto.smp import (
        bredr_link_key_from_le_ltk,
        le_ltk_from_bredr_link_key,
    )

    try:
        key = bytes.fromhex(args.key)
    except ValueError:
        print(f"not a hex key: {args.key!r}", file=sys.stderr)
        return 2
    if len(key) != 16:
        print(f"key must be 16 bytes, got {len(key)}", file=sys.stderr)
        return 2
    ct2 = not args.no_ct2
    if args.direction == "bredr-to-le":
        out, label = le_ltk_from_bredr_link_key(key, ct2=ct2), "LE LTK"
    else:
        out, label = bredr_link_key_from_le_ltk(key, ct2=ct2), "BR/EDR link key"
    print(f"input key : {key.hex()}")
    print(f"direction : {args.direction} (ct2={'yes' if ct2 else 'no'})")
    print(f"{label:<10}: {out.hex()}")
    return 0


def _cmd_ble_pair(args: argparse.Namespace) -> int:
    """Demo one LE connection + SC pairing between two catalog devices."""
    from repro.attacks.scenario import WorldConfig, build_world
    from repro.devices.catalog import spec_by_key

    world = build_world(WorldConfig(seed=args.seed))
    try:
        central = world.add_device("central", spec_by_key(args.central))
        peripheral = world.add_device(
            "peripheral", spec_by_key(args.peripheral)
        )
    except KeyError as exc:
        print(f"unknown device key: {exc}", file=sys.stderr)
        return 2
    if central.ble is None or peripheral.ble is None:
        print(
            "both devices must be LE-capable (try galaxy_s21_dual, "
            "nexus_5x_dual, generic_fitness_tracker, ...)",
            file=sys.stderr,
        )
        return 2
    central.power_on()
    peripheral.power_on()
    world.run_for(1.0)
    connect = central.ble.connect(peripheral.bd_addr)
    world.run_for(5.0)
    if not connect.success:
        print(f"LE connect failed (status={connect.status})")
        return 1
    pairing = central.ble.pair(peripheral.bd_addr)
    world.run_for(5.0)
    if not pairing.success:
        print(f"SMP pairing failed (status={pairing.status})")
        return 1
    encryption = central.ble.start_encryption(peripheral.bd_addr)
    world.run_for(2.0)
    ltk = central.ble.security.le_ltk_for(peripheral.bd_addr)
    bredr = central.ble.security.bond_for(peripheral.bd_addr)
    print(f"association : {pairing.result}")
    print(f"LE LTK      : {ltk.hex() if ltk else '(none)'}")
    print(f"encrypted   : {bool(encryption.success)}")
    if bredr is not None and bredr.link_key is not None:
        print(
            f"CTKD        : BR/EDR link key {bredr.link_key.hex()} "
            f"(type {bredr.key_type})"
        )
    else:
        print("CTKD        : not negotiated")
    return 0


# The demos keep the legacy single-run behaviour: full tracing, the
# victim dump captured, discovery running — richer than the lean
# defaults the campaign sweeps use.
_DEMO_PARAMS: Dict[str, Dict[str, Any]] = {
    "page-blocking": {"capture_m_dump": True, "run_discovery": True},
}


def _load_fault_plan(path: Optional[str]):
    """``--fault-plan PATH`` → a :class:`FaultPlan` (or ``None``).

    A missing or malformed plan is an operator error, not a crash:
    fail with one line on stderr and exit status 2 (argparse's own
    usage-error convention) instead of a traceback.
    """
    if not path:
        return None
    from repro.faults import FaultPlan, FaultPlanError

    try:
        return FaultPlan.from_file(path)
    except FileNotFoundError:
        print(f"blap: fault plan not found: {path}", file=sys.stderr)
        raise SystemExit(2)
    except (FaultPlanError, OSError) as exc:
        print(f"blap: bad fault plan {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _load_population(value: Optional[str]):
    """``--population VALUE`` → a :class:`PopulationSpec` (or ``None``).

    ``VALUE`` is a preset name (``blap population list``), a bare
    device count (an ambient crowd of that size), or a path to a spec
    JSON.  Same operator-error convention as :func:`_load_fault_plan`:
    one line on stderr, exit status 2.
    """
    if not value:
        return None
    from repro.population import (
        PopulationError,
        PopulationSpec,
        ambient_spec,
        get_population,
        population_names,
    )

    try:
        count = int(value)
    except ValueError:
        pass
    else:
        if count <= 0:
            print(
                f"blap: population size must be positive: {value}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return ambient_spec(count)
    if os.sep in value or value.endswith(".json"):
        try:
            return PopulationSpec.from_file(value)
        except FileNotFoundError:
            print(f"blap: population spec not found: {value}", file=sys.stderr)
            raise SystemExit(2)
        except (PopulationError, OSError) as exc:
            print(f"blap: bad population spec {value}: {exc}", file=sys.stderr)
            raise SystemExit(2)
    try:
        return get_population(value)
    except PopulationError:
        known = ", ".join(population_names())
        print(
            f"blap: unknown population {value!r} "
            f"(presets: {known}; or pass a count or a spec JSON path)",
            file=sys.stderr,
        )
        raise SystemExit(2)


def _run_demo_world(
    scenario_name: str, seed: int, params=None, fault_plan=None, population=None
):
    """One narrated run: fresh world, unbounded tracer, isolated metrics.

    Returns ``(world, TrialResult)`` so callers can also export the
    timeline.  An isolated registry keeps the run deterministic per
    seed and independent of anything else the process has counted.
    """
    from repro.attacks.scenario import WorldConfig, build_world
    from repro.campaign import TrialConfig, get_scenario
    from repro.obs.metrics import MetricsRegistry

    world = build_world(
        WorldConfig(
            seed=seed,
            registry=MetricsRegistry(),
            fault_plan=fault_plan,
            population=population,
        )
    )
    scenario = get_scenario(scenario_name)
    merged = dict(_DEMO_PARAMS.get(scenario_name, {}))
    merged.update(params or {})
    config = TrialConfig(seed=seed, params=merged)
    return world, scenario.build(world, config).run()


def _narrate_extraction(detail: Dict[str, Any]) -> None:
    print(f"channel       : {detail['extraction_channel']}")
    print(f"su required   : {detail['su_required']}")
    print(f"extracted key : {detail['extracted_key']}")
    print(f"matches truth : {detail['extraction_success']}")
    print(f"validated     : {detail['validated_against_m']}")


def _narrate_page_blocking(detail: Dict[str, Any]) -> None:
    print(f"MITM connection : {detail['mitm_connection']}")
    print(f"paired          : {detail['paired']}")
    print(f"just works      : {detail['downgraded_to_just_works']}")
    if "m_dump_table" in detail:
        print(detail["m_dump_table"])


def _narrate_exfiltration(detail: Dict[str, Any]) -> None:
    if not detail.get("extraction_success"):
        print("extraction failed")
        return
    print(f"phonebook entries stolen: {len(detail['phonebook'])}")
    for contact in detail["phonebook"]:
        print(f"  {contact['name']}: {contact['phone']}")
    print(f"messages stolen: {len(detail['messages'])}")
    for message in detail["messages"]:
        print(f"  from {message['sender']}: {message['body']}")
    print(f"silent (no popup on victim): {detail['silent']}")


_NARRATORS = {
    "extraction": _narrate_extraction,
    "page-blocking": _narrate_page_blocking,
    "exfiltration": _narrate_exfiltration,
}


def _cmd_demo(args: argparse.Namespace) -> int:
    _, result = _run_demo_world(
        args.scenario,
        args.seed,
        dict(args.param or []),
        fault_plan=_load_fault_plan(args.fault_plan),
        population=_load_population(args.population),
    )
    narrator = _NARRATORS.get(args.scenario)
    if narrator is not None:
        narrator(result.detail)
    else:
        for key, value in result.detail.items():
            print(f"{key}: {value}")
    print(f"outcome : {result.outcome}")
    print(f"success : {result.success}")
    if result.error:
        print(f"error   : {result.error}", file=sys.stderr)
    return 0 if result.success else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs.timeline import (
        export_chrome_trace,
        render_timeline_table,
        write_jsonl,
    )

    world, _ = _run_demo_world(
        args.scenario,
        args.seed,
        fault_plan=_load_fault_plan(args.fault_plan),
        population=_load_population(args.population),
    )
    events = world.obs.timeline.events(
        sources=args.source or None, categories=args.category or None
    )
    if args.limit is not None:
        events = events[: args.limit]
    if args.store is not None:
        from repro.store import RunStore, store_events

        with RunStore(args.store or None) as store:
            counts = store_events(
                store,
                args.run_id or f"timeline-{args.scenario}-{args.seed}",
                events,
                scenario=args.scenario,
                seed=args.seed,
            )
        print(
            f"stored {counts['events']} events "
            f"({counts['alerts']} alerts) in {store.path}",
            file=sys.stderr,
        )
    if args.format == "jsonl":
        # Streamed straight to the sink — no whole-timeline string.
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                count = write_jsonl(events, handle)
            print(f"wrote {count} events to {args.output}")
        else:
            write_jsonl(events, sys.stdout)
        return 0
    if args.format == "table":
        text = render_timeline_table(events)
    else:  # chrome
        text = json.dumps(export_chrome_trace(events), indent=1)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(events)} events to {args.output}")
    else:
        print(text)
    return 0


# ---------------------------------------------------------------- campaigns


def _parse_param(raw: str) -> "tuple[str, Any]":
    """``key=value`` with JSON values (bare words stay strings)."""
    key, sep, value = raw.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {raw!r}"
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def _make_runner(args: argparse.Namespace, telemetry=None, cprofile_dir=None):
    from repro.campaign import CampaignRunner, ResultCache, default_cache_dir

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ResultCache(cache_dir)
    return CampaignRunner(
        workers=args.workers,
        timeout_s=args.timeout,
        max_attempts=args.retries + 1,
        cache=cache,
        telemetry=telemetry,
        cprofile_dir=cprofile_dir,
    )


def _campaign_summary(result) -> str:
    cache_note = (
        f", cache {result.cache_hits} hit / {result.cache_misses} miss"
        if result.cache_hits or result.cache_misses
        else ""
    )
    return (
        f"{result.spec.scenario}: {result.successes}/{result.trials} "
        f"succeeded ({result.success_rate:.0%}) in "
        f"{result.wall_time_s:.2f}s{cache_note}"
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, CampaignTelemetry

    params = dict(args.param or [])
    spec = CampaignSpec(
        args.scenario,
        seeds=range(args.seed_base, args.seed_base + args.trials),
        params=params,
        fault_plan=_load_fault_plan(args.fault_plan),
        population=_load_population(args.population),
    )
    telemetry = None
    store = None
    if not args.no_telemetry:
        sink = None
        if args.store is not None:
            from repro.campaign.telemetry import new_run_id
            from repro.store import RunStore, StoreTelemetrySink

            store = RunStore(args.store or None)
            sink = StoreTelemetrySink(store, args.run_id or new_run_id())
        # Progress goes to stderr (``--json`` keeps stdout clean); the
        # live carriage-return line degrades to periodic plain lines on
        # non-TTY streams, or to start/end lines only under --quiet.
        telemetry = CampaignTelemetry(
            run_id=sink.run_id if sink is not None else args.run_id,
            mode="quiet" if args.quiet else "auto",
            sink=sink,
        )
    profile_dir = None
    if args.profile or args.cprofile:
        from pathlib import Path

        profile_dir = (
            telemetry.run_dir / "profile"
            if telemetry is not None
            else Path("blap-profile")
        )
    cprofile_dir = profile_dir if args.cprofile else None
    profile_extra = None
    try:
        result = _make_runner(
            args, telemetry=telemetry, cprofile_dir=cprofile_dir
        ).run(spec)
        if profile_dir is not None:
            from repro.profile import write_profile_artifacts

            profile_extra = write_profile_artifacts(
                result.metrics.snapshot(),
                profile_dir,
                shard_pstats_dir=cprofile_dir,
            )
            print(f"profile: {profile_dir}", file=sys.stderr)
    finally:
        if telemetry is not None:
            # The profile summary rides run.json and the store sink;
            # the on-disk tree already lives in profile/profile.json.
            extra = None
            if profile_extra is not None:
                extra = {
                    "profile": {
                        key: profile_extra[key]
                        for key in ("top_self", "total_self_s", "root_wall_s")
                    }
                }
            telemetry.close(extra=extra)
            print(f"telemetry: {telemetry.path}", file=sys.stderr)
        if store is not None:
            print(f"store: {store.path}", file=sys.stderr)
            store.close()
    if args.json:
        print(
            json.dumps(
                {
                    "scenario": args.scenario,
                    "trials": result.trials,
                    "successes": result.successes,
                    "success_rate": result.success_rate,
                    "wall_time_s": result.wall_time_s,
                    "cache_hits": result.cache_hits,
                    "cache_misses": result.cache_misses,
                    "results": [r.to_dict() for r in result.results],
                },
                indent=1,
            )
        )
    else:
        print(_campaign_summary(result))
        for trial in result.errors:
            print(f"  seed {trial.seed}: {trial.error}", file=sys.stderr)
    return 1 if result.errors else 0


def _cmd_campaign_table1(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec
    from repro.devices.catalog import TABLE1_DEVICE_SPECS

    runner = _make_runner(args)
    rows = []
    for index, spec in enumerate(TABLE1_DEVICE_SPECS):
        campaign = runner.run(
            CampaignSpec(
                "extraction",
                seeds=[args.seed_base + index],
                params={"c_spec": spec.key},
            )
        )
        rows.append((spec, campaign.results[0]))

    print(
        "Table I: devices vulnerable to link key extraction attack "
        f"(seed base {args.seed_base})"
    )
    header = (
        f"{'OS':<14} {'Host stack':<14} {'Device':<42} "
        f"{'Channel':<10} {'SU':<4} {'Vulnerable'}"
    )
    print(header)
    print("-" * len(header))
    all_vulnerable = True
    for spec, trial in rows:
        detail = trial.detail
        vulnerable = trial.success
        all_vulnerable = all_vulnerable and vulnerable
        print(
            f"{spec.os:<14} {spec.stack_profile.name:<14} "
            f"{spec.marketing_name:<42} "
            f"{detail.get('extraction_channel', '?'):<10} "
            f"{'Y' if detail.get('su_required') else 'N':<4} "
            f"{'YES' if vulnerable else 'no'}"
        )
    return 0 if all_vulnerable else 1


def _cmd_campaign_table2(args: argparse.Namespace) -> int:
    import time as _time

    from repro.campaign import CampaignSpec
    from repro.devices.catalog import TABLE2_DEVICE_SPECS

    runner = _make_runner(args)
    started = _time.perf_counter()
    rows = []
    hits = misses = 0
    for index, spec in enumerate(TABLE2_DEVICE_SPECS):
        base = args.seed_base + index * 10_000
        baseline = runner.run(
            CampaignSpec(
                "baseline-race",
                seeds=range(base, base + args.trials),
                params={"m_spec": spec.key},
            )
        )
        blocked = runner.run(
            CampaignSpec(
                "page-blocking",
                seeds=range(base + 50_000, base + 50_000 + args.trials),
                params={"m_spec": spec.key},
            )
        )
        hits += baseline.cache_hits + blocked.cache_hits
        misses += baseline.cache_misses + blocked.cache_misses
        rows.append((spec, baseline.success_rate, blocked.success_rate))
    wall = _time.perf_counter() - started

    print(
        f"Table II: MITM connection success rates "
        f"({args.trials} trials/cell, {args.workers} workers)"
    )
    header = f"{'Device':<28} {'w/o blocking':<13} {'with blocking'}"
    print(header)
    print("-" * len(header))
    # The baseline race is a scan-phase coin flip; with few trials the
    # binomial noise around the paper's 42-60% band widens accordingly.
    low, high = (0.30, 0.70) if args.trials >= 50 else (0.125, 0.875)
    verdict = True
    for spec, baseline, blocked in rows:
        flag = ""
        if blocked != 1.0:
            verdict = False
            flag = "  <-- page blocking not deterministic?!"
        elif not low <= baseline <= high:
            verdict = False
            flag = "  <-- baseline outside the race band"
        print(
            f"{spec.marketing_name + ' (' + spec.os + ')':<28} "
            f"{baseline:>10.0%}   {blocked:>10.0%}{flag}"
        )
    print(
        f"\n{len(rows) * 2 * args.trials} trials in {wall:.2f}s"
        + (f" (cache: {hits} hit / {misses} miss)" if hits or misses else "")
    )
    print(
        "paper: 42-60% without page blocking, 100% with — "
        + ("reproduced" if verdict else "NOT reproduced")
    )
    return 0 if verdict else 1


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from repro.campaign import get_scenario, scenario_names

    for name in scenario_names():
        scenario = get_scenario(name)
        print(f"{name:<16} {scenario.description}")
        if args.verbose:
            for key, value in sorted(scenario.default_params.items()):
                print(f"    {key} = {value!r}")
    return 0


# ---------------------------------------------------------------- faults


def _cmd_faults_list(args: argparse.Namespace) -> int:
    from repro.faults import INJECTION_POINTS

    for point in INJECTION_POINTS.values():
        modes = ",".join(point.modes)
        print(f"{point.name:<24} {point.scope:<7} {modes}")
        if args.verbose:
            print(f"    {point.description}")
            for key, doc in sorted(point.params.items()):
                print(f"    param {key}: {doc}")
    return 0


def _cmd_faults_describe(args: argparse.Namespace) -> int:
    from repro.faults import get_point

    try:
        point = get_point(args.point)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1
    print(f"name        : {point.name}")
    print(f"layer       : {point.layer}")
    print(f"scope       : {point.scope}")
    print(f"modes       : {', '.join(point.modes)}")
    print(f"description : {point.description}")
    if point.params:
        print("params      :")
        for key, doc in sorted(point.params.items()):
            print(f"  {key}: {doc}")
    else:
        print("params      : (none)")
    return 0


# ---------------------------------------------------------------- populations


def _cmd_population_list(args: argparse.Namespace) -> int:
    from repro.population import get_population, population_names

    for name in population_names():
        spec = get_population(name)
        print(f"{name:<16} {spec.total_devices:>4} devices  {spec.description}")
        if args.verbose:
            for member in spec.members:
                print(f"    cast {member.role}: {member.spec}")
            if spec.size:
                print(
                    f"    ambient {spec.size}: "
                    f"inquirers {spec.inquirer_fraction:.0%}, "
                    f"talkers {spec.talker_fraction:.0%}, "
                    f"discoverable {spec.discoverable_fraction:.0%}"
                )
    return 0


def _cmd_population_describe(args: argparse.Namespace) -> int:
    from repro.population import PopulationError, get_population

    try:
        spec = get_population(args.name)
    except PopulationError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(spec.to_jsonable(), indent=1, sort_keys=True))
        return 0
    print(f"name          : {spec.name}")
    print(f"description   : {spec.description}")
    print(f"total devices : {spec.total_devices}")
    if spec.members:
        print("cast          :")
        for member in spec.members:
            flags = []
            if not member.connectable:
                flags.append("non-connectable")
            if not member.discoverable:
                flags.append("non-discoverable")
            note = f" ({', '.join(flags)})" if flags else ""
            print(f"  {member.role}: {member.spec}{note}")
    if spec.size:
        print(f"ambient       : {spec.size} devices")
        print("mix           :")
        for key, weight in spec.resolved_mix():
            print(f"  {key}: {weight:.3f}")
        print(f"inquirers     : {spec.inquirer_fraction:.0%}")
        print(f"talkers       : {spec.talker_fraction:.0%}")
        print(f"discoverable  : {spec.discoverable_fraction:.0%}")
        print(f"inquiry period: {spec.inquiry_period_s}s")
        print(f"connect period: {spec.connect_period_s}s")
    return 0


# ---------------------------------------------------------------- detection


def _cmd_detect_list(args: argparse.Namespace) -> int:
    from repro.detect import detector_class, detector_names

    for name in detector_names():
        cls = detector_class(name)
        print(f"{name:<18} [{','.join(cls.channels)}] {cls.description}")
        if args.verbose:
            for key, value in sorted(cls.default_config.items()):
                print(f"    {key} = {value!r}")
    return 0


def _cmd_detect_scan(args: argparse.Namespace) -> int:
    from repro.detect import replay_capture
    from repro.service.protocol import CaptureError, decode_capture

    if args.capture == "-":
        raw = sys.stdin.buffer.read()
    else:
        with open(args.capture, "rb") as handle:
            raw = handle.read()
    try:
        decode_capture(raw)
    except CaptureError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = replay_capture(raw, detectors=args.detector or None)
    if not result.alerts:
        print("no detector alerts in the capture")
        return 1
    for alert in result.alerts:
        print(alert)
    return 0


def _cmd_detect_demo(args: argparse.Namespace) -> int:
    from repro.campaign.detection import DETECTOR_FOR_ATTACK
    from repro.campaign.runner import run_trial

    result, _ = run_trial(
        "detection-attack",
        args.seed,
        params={"attack": args.attack, "respond": args.respond},
        fault_plan=_load_fault_plan(args.fault_plan),
    )
    detail = result.detail
    print(f"attack            : {args.attack}")
    print(f"expected detector : {DETECTOR_FOR_ATTACK[args.attack]}")
    print(f"attack succeeded  : {detail.get('attack_succeeded')}")
    for name, score in sorted(detail.get("scores", {}).items()):
        first = detail.get("first_alert_s", {}).get(name)
        when = f" (first alert at t={first:.3f}s)" if first is not None else ""
        print(f"  {name:<18} max score {score:.2f}{when}")
    print(f"alerts  : {detail.get('alerts')}")
    print(f"outcome : {result.outcome}")
    if result.error:
        print(f"error   : {result.error}", file=sys.stderr)
        return 1
    return 0 if result.success else 1


def _cmd_detect_roc(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec
    from repro.campaign.detection import DETECTOR_FOR_ATTACK
    from repro.detect import operating_point, render_roc_table, roc_curve

    fault_plan = _load_fault_plan(args.fault_plan)
    attacks = args.attack or sorted(DETECTOR_FOR_ATTACK)
    runner = _make_runner(args)

    campaigns = {}
    for index, attack in enumerate(attacks):
        base = args.seed_base + index * 10_000
        campaigns[attack] = runner.run(
            CampaignSpec(
                "detection-attack",
                seeds=range(base, base + args.trials),
                params={"attack": attack},
                fault_plan=fault_plan,
            )
        )
    benign = runner.run(
        CampaignSpec(
            "detection-benign",
            seeds=range(
                args.seed_base + 100_000,
                args.seed_base + 100_000 + args.trials,
            ),
            fault_plan=fault_plan,
        )
    )

    errors = list(benign.errors)
    for campaign in campaigns.values():
        errors.extend(campaign.errors)
    for trial in errors:
        print(
            f"  {trial.scenario} seed {trial.seed}: {trial.error}",
            file=sys.stderr,
        )

    benign_details = [r.detail for r in benign.results if not r.error]
    report = {}
    verdict = True
    for attack in attacks:
        detector = DETECTOR_FOR_ATTACK[attack]
        attack_details = [
            r.detail for r in campaigns[attack].results if not r.error
        ]
        points = roc_curve(attack_details, benign_details, detector)
        best = operating_point(points, max_fpr=args.max_fpr)
        report[detector] = {
            "attack": attack,
            "points": [p.to_dict() for p in points],
            "operating_point": best.to_dict() if best else None,
        }
        if best is None or best.tpr < args.min_tpr:
            verdict = False
        if not args.json:
            print(
                f"\n{detector} "
                f"({len(attack_details)} attack / "
                f"{len(benign_details)} benign trials)"
            )
            print(render_roc_table(points))
            if best is None:
                print(f"no operating point with FPR <= {args.max_fpr:.0%}")
            else:
                print(
                    f"operating point: threshold {best.threshold:.2f} -> "
                    f"TPR {best.tpr:.0%} at FPR {best.fpr:.0%}"
                )
    if args.json:
        print(json.dumps(report, indent=1))
    if errors:
        return 1
    if fault_plan is not None:
        # Robustness probes report degradation; they do not gate.
        return 0
    return 0 if verdict else 1


# ------------------------------------------------------------------- store


def _cmd_store_ingest(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.runs import discover_run_dirs
    from repro.store import RunStore, ingest_run_dir

    run_dirs = [Path(d) for d in args.run_dir] or discover_run_dirs()
    if not run_dirs:
        print("blap: no run directories to ingest", file=sys.stderr)
        return 1
    with RunStore(args.db or None) as store:
        for run_dir in run_dirs:
            counts = ingest_run_dir(store, run_dir)
            print(
                f"{run_dir.name}: {counts['telemetry']} telemetry, "
                f"{counts['events']} events, {counts['alerts']} alerts"
            )
        print(f"store: {store.path}")
    return 0


def _cmd_store_list(args: argparse.Namespace) -> int:
    from repro.store import EventQuery, RunStore

    with RunStore(args.db or None) as store:
        infos = store.runs()
        if args.json:
            print(
                json.dumps(
                    [
                        dict(
                            info.to_dict(),
                            telemetry=store.telemetry_summary(info.run_id),
                            events=store.count_events(
                                EventQuery(run_id=info.run_id)
                            ),
                        )
                        for info in infos
                    ],
                    indent=1,
                )
            )
            return 0
        if not infos:
            print(f"no runs in {store.path}")
            return 0
        for info in infos:
            rollup = store.telemetry_summary(info.run_id)
            events = store.count_events(EventQuery(run_id=info.run_id))
            print(
                f"{info.run_id:<28} {rollup['trials']:>6} trials "
                f"{rollup['successes']:>6} ok {rollup['errors']:>4} err "
                f"{events:>8} events"
            )
    return 0


def _cmd_query_events(args: argparse.Namespace) -> int:
    from repro.store import EventQuery, RunStore

    query = EventQuery(
        run_id=args.run,
        since=args.since,
        until=args.until,
        sources=tuple(args.source or ()),
        categories=tuple(args.category or ()),
        kind=args.kind,
        span_type=args.span_type,
        scenario=args.scenario,
        seed=args.seed,
        limit=args.limit,
        offset=args.offset,
    )
    with RunStore(args.db or None) as store:
        if args.count or args.group_by:
            result = store.count_events(query, group_by=args.group_by)
            if args.json:
                print(json.dumps(result, indent=1))
            elif isinstance(result, dict):
                for key, value in result.items():
                    print(f"{key:<20} {value}")
            else:
                print(result)
            return 0
        events = store.query_events(query)
        if args.json:
            print(json.dumps([e.to_dict() for e in events], indent=1))
            return 0
        for event in events:
            duration = (
                f"  ({event.duration * 1000:.3f} ms)"
                if event.duration is not None
                else ""
            )
            print(
                f"{event.time:>12.6f} {event.source:<8} "
                f"{event.category:<14} {event.message}{duration}"
            )
    return 0


def _cmd_query_alerts(args: argparse.Namespace) -> int:
    from repro.store import AlertQuery, RunStore

    query = AlertQuery(
        run_id=args.run,
        since=args.since,
        until=args.until,
        detectors=tuple(args.detector or ()),
        min_score=args.min_score,
        peer=args.peer,
        scenario=args.scenario,
        seed=args.seed,
        limit=args.limit,
        offset=args.offset,
    )
    with RunStore(args.db or None) as store:
        alerts = store.query_alerts(query)
    if args.json:
        print(json.dumps(alerts, indent=1))
        return 0
    for alert in alerts:
        score = (
            f" score={alert['score']:.2f}"
            if alert.get("score") is not None
            else ""
        )
        peer = f" peer={alert['peer']}" if alert.get("peer") else ""
        print(
            f"{alert['time']:>12.6f} [{alert['detector']}]"
            f"{score}{peer} {alert['message']}"
        )
    return 0


_YESNO = {"yes": True, "no": False}


def _cmd_query_telemetry(args: argparse.Namespace) -> int:
    from repro.store import RunStore, TelemetryQuery

    query = TelemetryQuery(
        run_id=args.run,
        scenario=args.scenario,
        seed=args.seed,
        success=_YESNO.get(args.success),
        cached=_YESNO.get(args.cached),
        errors_only=args.errors_only,
        limit=args.limit,
        offset=args.offset,
    )
    with RunStore(args.db or None) as store:
        records = store.query_telemetry(query)
    if args.json:
        print(json.dumps(records, indent=1))
        return 0
    for record in records:
        status = "ok" if record.get("success") else "fail"
        extras = []
        if record.get("cached"):
            extras.append("cached")
        if record.get("error"):
            extras.append(f"error={record['error']}")
        suffix = (" " + " ".join(extras)) if extras else ""
        print(
            f"{record.get('scenario')} seed {record.get('seed')}: "
            f"{status} {record.get('wall_time_s', 0.0):.3f}s{suffix}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.store import RunStore
    from repro.store.server import serve

    with RunStore(args.db or None) as store:

        def _ready(server) -> None:
            # Flushed immediately so scripts (CI smoke jobs) can scrape
            # the bound URL even with --port 0 (ephemeral).
            print(f"serving {store.path} at {server.url}", flush=True)

        serve(
            store,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            ready=_ready,
        )
    return 0


# ----------------------------------------------------------------- service


def _cmd_service_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_server
    from repro.service.session import SessionConfig

    defaults = SessionConfig(
        window=args.window, queue_size=args.queue_size
    )

    def _ready(server) -> None:
        # Flushed immediately so scripts (CI smoke jobs) can scrape
        # the bound URL even with --port 0 (ephemeral).
        print(f"ingest service at {server.url} (ws: {server.ws_url})",
              flush=True)

    if args.db is None:
        run_server(
            host=args.host,
            port=args.port,
            idle_timeout_s=args.idle_timeout,
            defaults=defaults,
            verbose=args.verbose,
            ready=_ready,
        )
        return 0
    from repro.store import RunStore

    with RunStore(args.db or None) as store:
        run_server(
            host=args.host,
            port=args.port,
            store=store,
            idle_timeout_s=args.idle_timeout,
            defaults=defaults,
            verbose=args.verbose,
            ready=_ready,
        )
    return 0


def _cmd_service_loadgen(args: argparse.Namespace) -> int:
    from repro.campaign.captures import produce_captures
    from repro.core.bench import record_bench
    from repro.service.loadgen import run_loadgen

    if args.capture:
        captures = []
        for path in args.capture:
            with open(path, "rb") as handle:
                captures.append(handle.read())
    else:
        captures = produce_captures(
            count=args.captures, kind=args.kind, seed_base=args.seed_base
        )
    report = run_loadgen(
        captures,
        sessions=args.sessions,
        tenants=args.tenants,
        url=args.url,
    )
    payload = report.to_dict()
    if args.bench:
        record_bench(
            "service",
            "loadgen",
            {
                "sessions": report.sessions,
                "events": report.events,
                "dropped_events": report.dropped_events,
                "wall_s": report.wall_s,
                "ingest_events_per_s": report.events_per_s,
            },
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"{report.sessions} sessions across {report.tenants} tenants: "
            f"{report.events} events in {report.wall_s:.3f}s "
            f"({report.events_per_s:,.0f} events/s), "
            f"{report.alerts} alerts, "
            f"{report.dropped_events} dropped, "
            f"{report.failures} failures"
        )
    return 0 if report.failures == 0 else 1


def _cmd_service_sessions(args: argparse.Namespace) -> int:
    from repro.service.client import fetch_json

    base = args.url.rstrip("/")
    try:
        payload = fetch_json(f"{base}/api/sessions")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sessions = payload.get("sessions", [])
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not sessions:
        print("no active sessions")
        return 0
    for row in sessions:
        print(
            f"{row.get('session')} tenant={row.get('tenant')} "
            f"state={row.get('state')} events={row.get('events')} "
            f"alerts={row.get('alerts')} "
            f"dropped={row.get('dropped_events')}"
        )
    return 0


# ------------------------------------------------------------------ report


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import generate_report

    fmt = args.format or ("html" if args.html else None)
    text = generate_report(
        _make_runner(args),
        trials=args.trials,
        seed_base=args.seed_base,
        table1_seed_base=args.table1_seed_base,
        roc_path=args.roc,
        bench_directory=args.bench_dir,
        run_dir=args.run_dir,
        store_path=args.store_db,
        store_run_id=args.store_run,
        top_spans=args.top_spans,
        fmt=fmt,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote report to {args.output}")
    else:
        print(text, end="")
    return 0


# ------------------------------------------------------------------- bench


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.bench import (
        bench_dir,
        bench_spans,
        compare_bench_dirs,
        iter_bench_files,
        load_bench,
    )

    current = Path(args.current) if args.current else bench_dir()
    baseline = Path(args.baseline)
    current_files = iter_bench_files(current)
    if not current_files:
        print(f"blap: no BENCH_*.json files in {current}", file=sys.stderr)
        return 2
    compared = [
        path.name for path in current_files if (baseline / path.name).exists()
    ]
    if not compared:
        # First run / rotated artifacts: nothing to gate against.
        print(
            f"no baseline bench files under {baseline}; nothing to compare"
        )
        return 0
    regressions = compare_bench_dirs(
        current, baseline, threshold=args.threshold
    )
    if args.json:
        print(
            json.dumps(
                [vars(regression) for regression in regressions], indent=1
            )
        )
    else:
        print(
            f"compared {len(compared)} bench file(s) at threshold "
            f"{args.threshold:.0%}: {', '.join(compared)}"
        )
        spans_cache: Dict[str, Dict[str, List[str]]] = {}
        for regression in regressions:
            print(f"REGRESSION {regression}")
            # The recorder may have annotated the section with the top
            # self-time span types — name the culprit, not just the number.
            if regression.bench not in spans_cache:
                spans_cache[regression.bench] = bench_spans(
                    load_bench(current / f"BENCH_{regression.bench}.json")
                )
            culprits = spans_cache[regression.bench].get(regression.section)
            if culprits:
                print(f"  top self-time spans: {', '.join(culprits)}")
        if not regressions:
            print("no regressions")
    return 1 if regressions else 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.bench import read_history

    directory = Path(args.dir) if args.dir else None
    entries = read_history(directory, bench=args.bench or None)
    if args.section:
        entries = [
            entry for entry in entries if entry.get("section") == args.section
        ]
    if not entries:
        print("no bench history entries", file=sys.stderr)
        return 1
    for entry in entries[-args.last:]:
        values = " ".join(
            f"{key}={value:g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(entry.get("values", {}).items())
        )
        run = f" run={entry['run']}" if entry.get("run") else ""
        spans = entry.get("top_self_spans") or []
        note = f" spans={','.join(spans)}" if spans else ""
        print(
            f"{entry.get('ts', '?'):<20} "
            f"{entry.get('bench', '?')}/{entry.get('section', '?')}{run} "
            f"{values}{note}"
        )
    return 0


# ----------------------------------------------------------------- profile


def _format_path(path) -> str:
    return ";".join(path)


def _print_top_self(rows, total_self_s: float, root_wall_s: float) -> None:
    print(f"{'self total':>12} {'count':>8}  span type")
    for row in rows:
        print(
            f"{row['self_s']:>11.3f}s {row['count']:>8}  {row['name']}"
        )
    print(
        f"self-time total {total_self_s:.3f}s; "
        f"root-span wall total {root_wall_s:.3f}s"
    )


def _cmd_profile_run(args: argparse.Namespace) -> int:
    """A profiled campaign sweep: artifacts out, top self-time in."""
    from pathlib import Path

    from repro.campaign import CampaignSpec
    from repro.profile import write_profile_artifacts

    spec = CampaignSpec(
        args.scenario,
        seeds=range(args.seed_base, args.seed_base + args.trials),
        params=dict(args.param or []),
        fault_plan=_load_fault_plan(args.fault_plan),
        population=_load_population(args.population),
    )
    out = Path(args.out)
    cprofile_dir = out if args.cprofile else None
    result = _make_runner(args, cprofile_dir=cprofile_dir).run(spec)
    summary = write_profile_artifacts(
        result.metrics.snapshot(),
        out,
        shard_pstats_dir=cprofile_dir,
        top=args.top,
    )
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(_campaign_summary(result))
        _print_top_self(
            summary["top_self"],
            summary["total_self_s"],
            summary["root_wall_s"],
        )
        print(f"profile artifacts in {out}/")
    return 1 if result.errors else 0


def _cmd_profile_flame(args: argparse.Namespace) -> int:
    """One trial's self-time tree as collapsed flamegraph stacks.

    Pure simulated time: the output is byte-identical for a given
    scenario + seed, so two runs diff clean.  Feed the file to
    ``flamegraph.pl`` or paste it into https://speedscope.app.
    """
    from repro.campaign.runner import run_trial
    from repro.profile import SelfTimeTree

    result, snapshot = run_trial(
        args.scenario,
        args.seed,
        params=dict(args.param or []),
        fault_plan=_load_fault_plan(args.fault_plan),
    )
    text = SelfTimeTree.from_snapshot(snapshot).to_collapsed()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} stacks to {args.output}")
    else:
        print(text, end="")
    if result.error:
        print(f"trial error: {result.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_profile_diff(args: argparse.Namespace) -> int:
    """Diff two profile.json artifacts by per-path self-time."""
    from repro.profile import SelfTimeTree, diff_trees, load_profile

    try:
        baseline = SelfTimeTree.from_jsonable(
            load_profile(args.baseline)["tree"]
        )
        current = SelfTimeTree.from_jsonable(
            load_profile(args.current)["tree"]
        )
    except (OSError, ValueError, KeyError) as exc:
        print(f"blap: {exc}", file=sys.stderr)
        return 2
    rows = diff_trees(baseline, current)
    if args.top:
        rows = rows[: args.top]
    if args.json:
        print(
            json.dumps(
                [dict(row, path=list(row["path"])) for row in rows],
                indent=1,
                sort_keys=True,
            )
        )
        return 0
    if not rows:
        print("identical self-time trees")
        return 0
    print(f"{'baseline':>12} {'current':>12} {'delta':>12}  span path")
    for row in rows:
        print(
            f"{row['baseline_self_s']:>11.3f}s "
            f"{row['current_self_s']:>11.3f}s "
            f"{row['delta_s']:>+11.3f}s  {_format_path(row['path'])}"
        )
    return 0


def _add_fault_plan_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN.json",
        help="JSON fault plan to inject (see `blap faults list`)",
    )


def _add_population_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--population",
        default=None,
        metavar="PRESET|N|SPEC.json",
        help="ambient device population: a preset name "
        "(see `blap population list`), a device count, or a spec JSON",
    )


def _add_campaign_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-trial seconds"
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="retries with a fresh world after a failed/timed-out trial",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $BLAP_CACHE_DIR or .blap-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blap",
        description="BLAP reproduction tools (DSN 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    extract = sub.add_parser("extract", help="link keys from a btsnoop capture")
    extract.add_argument("capture", help="btsnoop file (e.g. btsnoop_hci.log)")
    extract.set_defaults(func=_cmd_extract)

    dump = sub.add_parser("dump", help="render a btsnoop capture as a table")
    dump.add_argument("capture")
    dump.add_argument("--acl", action="store_true", help="include ACL frames")
    dump.add_argument("--rows", type=int, default=None, help="row limit")
    dump.set_defaults(func=_cmd_dump)

    usb = sub.add_parser("usb-extract", help="link keys from a raw USB stream")
    usb.add_argument("stream")
    usb.set_defaults(func=_cmd_usb_extract)

    b2h = sub.add_parser("bin2hex", help="binary to hex text (BinaryToHex)")
    b2h.add_argument("stream")
    b2h.add_argument("--group", type=int, default=1)
    b2h.add_argument("--width", type=int, default=16)
    b2h.set_defaults(func=_cmd_bin2hex)

    pcap = sub.add_parser(
        "pcap", help="convert a btsnoop capture to Wireshark pcap"
    )
    pcap.add_argument("capture")
    pcap.add_argument("-o", "--output", required=True)
    pcap.set_defaults(func=_cmd_pcap)

    iocap = sub.add_parser("iocap", help="print the Fig. 7 mapping")
    iocap.add_argument(
        "--version",
        default="5.0",
        choices=[v.value for v in BluetoothVersion],
    )
    iocap.set_defaults(func=_cmd_iocap)

    ble = sub.add_parser(
        "ble", help="LE layer utilities (CTKD math, pairing demo)"
    )
    blesub = ble.add_subparsers(dest="ble_cmd", required=True)
    ctkd = blesub.add_parser(
        "ctkd", help="convert a key across transports (h6/h7)"
    )
    ctkd.add_argument("key", help="16-byte key as 32 hex chars")
    ctkd.add_argument(
        "--direction",
        default="bredr-to-le",
        choices=["bredr-to-le", "le-to-bredr"],
    )
    ctkd.add_argument(
        "--no-ct2",
        action="store_true",
        help="legacy h7-less derivation (CT2 bit unset)",
    )
    ctkd.set_defaults(func=_cmd_ble_ctkd)
    blepair = blesub.add_parser(
        "pair", help="LE connect + SC pairing between two catalog devices"
    )
    blepair.add_argument("--central", default="galaxy_s21_dual")
    blepair.add_argument("--peripheral", default="nexus_5x_dual")
    blepair.add_argument("--seed", type=int, default=1)
    blepair.set_defaults(func=_cmd_ble_pair)

    from repro.campaign import scenario_names

    demo = sub.add_parser("demo", help="run a simulated attack end to end")
    demo.add_argument("scenario", choices=scenario_names())
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        metavar="KEY=VALUE",
        help="scenario parameter override (repeatable)",
    )
    _add_fault_plan_arg(demo)
    _add_population_arg(demo)
    demo.set_defaults(func=_cmd_demo)

    timeline = sub.add_parser(
        "timeline",
        help="run a simulated attack and export the merged timeline",
    )
    timeline.add_argument("scenario", choices=scenario_names())
    timeline.add_argument("--seed", type=int, default=1)
    timeline.add_argument(
        "--format",
        default="table",
        choices=["table", "jsonl", "chrome"],
        help="table for terminals, jsonl for tooling, chrome for Perfetto",
    )
    timeline.add_argument("-o", "--output", default=None, help="output file")
    timeline.add_argument(
        "--limit", type=int, default=None, help="cap the number of events"
    )
    timeline.add_argument(
        "--source",
        action="append",
        default=None,
        help="only these sources (repeatable; e.g. phy, M, A)",
    )
    timeline.add_argument(
        "--category",
        action="append",
        default=None,
        help="only these categories (repeatable; e.g. phy-page, span)",
    )
    timeline.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="DB",
        help="also write the events (and any alerts) into the run store "
        "(bare --store uses $BLAP_STORE_DB or <runs root>/store.db)",
    )
    timeline.add_argument(
        "--run-id",
        default=None,
        help="store run id (default: timeline-<scenario>-<seed>)",
    )
    _add_fault_plan_arg(timeline)
    _add_population_arg(timeline)
    timeline.set_defaults(func=_cmd_timeline)

    campaign = sub.add_parser(
        "campaign",
        help="sharded parallel Monte-Carlo sweeps (Table I/II scale)",
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    run = csub.add_parser("run", help="sweep one scenario over a seed range")
    run.add_argument("scenario", choices=scenario_names())
    run.add_argument("--trials", type=int, default=20)
    run.add_argument("--seed-base", type=int, default=0)
    run.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        metavar="KEY=VALUE",
        help="scenario parameter (JSON value; repeatable)",
    )
    run.add_argument("--json", action="store_true", help="machine output")
    run.add_argument(
        "--quiet",
        action="store_true",
        help="progress start/end lines only (CI-friendly)",
    )
    run.add_argument(
        "--run-id",
        default=None,
        help="telemetry run id (default: timestamp-pid)",
    )
    run.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip the runs/<run-id>/telemetry.jsonl stream",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="write deterministic self-time profile artifacts "
        "(runs/<run-id>/profile/, or ./blap-profile with --no-telemetry)",
    )
    run.add_argument(
        "--cprofile",
        action="store_true",
        help="also sample workers with cProfile (wall clock; implies "
        "--profile; merged into profile.pstats / cprofile.json)",
    )
    run.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="DB",
        help="stream per-trial telemetry into the run store as trials "
        "finish (bare --store uses the default database)",
    )
    _add_fault_plan_arg(run)
    _add_population_arg(run)
    _add_campaign_common(run)
    run.set_defaults(func=_cmd_campaign_run)

    table1 = csub.add_parser(
        "table1", help="regenerate Table I (link key extraction fleet)"
    )
    table1.add_argument("--seed-base", type=int, default=1000)
    _add_campaign_common(table1)
    table1.set_defaults(func=_cmd_campaign_table1)

    table2 = csub.add_parser(
        "table2", help="regenerate Table II (MITM rates, both conditions)"
    )
    table2.add_argument("--trials", type=int, default=20)
    table2.add_argument("--seed-base", type=int, default=2000)
    _add_campaign_common(table2)
    table2.set_defaults(func=_cmd_campaign_table2)

    listing = csub.add_parser("list", help="registered scenarios")
    listing.add_argument(
        "-v", "--verbose", action="store_true", help="show default params"
    )
    listing.set_defaults(func=_cmd_campaign_list)

    detect = sub.add_parser(
        "detect", help="streaming attack detection and ROC evaluation"
    )
    dsub = detect.add_subparsers(dest="detect_command", required=True)

    dlist = dsub.add_parser("list", help="registered detectors")
    dlist.add_argument(
        "-v", "--verbose", action="store_true", help="show default config"
    )
    dlist.set_defaults(func=_cmd_detect_list)

    dscan = dsub.add_parser(
        "scan", help="replay a btsnoop capture through the detectors"
    )
    dscan.add_argument("capture", help="btsnoop file (- reads stdin)")
    dscan.add_argument(
        "--detector",
        action="append",
        default=None,
        help="only these detectors (repeatable; default: all HCI-capable)",
    )
    dscan.set_defaults(func=_cmd_detect_scan)

    ddemo = dsub.add_parser(
        "demo", help="stage one monitored attack and print detector scores"
    )
    from repro.campaign.detection import DETECTOR_FOR_ATTACK

    ddemo.add_argument("attack", choices=sorted(DETECTOR_FOR_ATTACK))
    ddemo.add_argument("--seed", type=int, default=1)
    ddemo.add_argument(
        "--respond",
        action="store_true",
        help="let the victim reject flagged pairings (detection response)",
    )
    _add_fault_plan_arg(ddemo)
    ddemo.set_defaults(func=_cmd_detect_demo)

    droc = dsub.add_parser(
        "roc", help="TPR/FPR/latency sweeps from detection campaigns"
    )
    droc.add_argument(
        "--attack",
        action="append",
        choices=sorted(DETECTOR_FOR_ATTACK),
        default=None,
        help="attack classes to evaluate (repeatable; default: all)",
    )
    droc.add_argument("--trials", type=int, default=20)
    droc.add_argument("--seed-base", type=int, default=4000)
    droc.add_argument(
        "--min-tpr", type=float, default=0.95,
        help="acceptance floor for the operating point (clean runs)",
    )
    droc.add_argument(
        "--max-fpr", type=float, default=0.05,
        help="false-positive ceiling for the operating point",
    )
    droc.add_argument("--json", action="store_true", help="machine output")
    _add_fault_plan_arg(droc)
    _add_campaign_common(droc)
    droc.set_defaults(func=_cmd_detect_roc)

    report = sub.add_parser(
        "report",
        help="render the run report from cached campaign results",
    )
    report.add_argument("--trials", type=int, default=20)
    report.add_argument("--seed-base", type=int, default=2000)
    report.add_argument(
        "--table1-seed-base", type=int, default=1000,
        help="seed base for the Table I extraction sweep",
    )
    report.add_argument(
        "--roc", default=None, metavar="ROC.json",
        help="include a `blap detect roc --json` artifact",
    )
    report.add_argument(
        "--bench-dir", default=None, metavar="DIR",
        help="include BENCH_*.json numbers from this directory",
    )
    report.add_argument(
        "--run-dir", default=None, metavar="runs/ID",
        help="include a run's telemetry (ingested through the store)",
    )
    report.add_argument(
        "--store-db", default=None, metavar="DB",
        help="read run telemetry from this store database instead of a "
        "run directory",
    )
    report.add_argument(
        "--store-run", default=None, metavar="RUN_ID",
        help="restrict --store-db telemetry to one run id",
    )
    report.add_argument(
        "--top-spans", type=int, default=10,
        help="rows in the self-time attribution table",
    )
    report.add_argument(
        "--format", default=None,
        choices=["markdown", "html", "json"],
        help="output format (default: markdown, or html with --html)",
    )
    report.add_argument(
        "--html", action="store_true", help="self-contained HTML instead of Markdown"
    )
    report.add_argument("-o", "--output", default=None, help="output file")
    _add_campaign_common(report)
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", help="benchmark trajectory: compare and history"
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)

    bcompare = bsub.add_parser(
        "compare",
        help="diff current BENCH_*.json against a baseline directory "
        "(exit 1 on regression)",
    )
    bcompare.add_argument(
        "baseline", help="directory holding the baseline BENCH_*.json files"
    )
    bcompare.add_argument(
        "--current", default=None,
        help="directory with current bench files (default: $BLAP_BENCH_DIR or .)",
    )
    bcompare.add_argument(
        "--threshold", type=float, default=0.25,
        help="tolerated relative change (0.25 = 25%%)",
    )
    bcompare.add_argument("--json", action="store_true", help="machine output")
    bcompare.set_defaults(func=_cmd_bench_compare)

    bhistory = bsub.add_parser(
        "history", help="print BENCH_HISTORY.jsonl entries"
    )
    bhistory.add_argument(
        "--bench", default=None, help="only this bench (e.g. campaign)"
    )
    bhistory.add_argument(
        "--section", default=None, help="only this section"
    )
    bhistory.add_argument(
        "--last", type=int, default=20, help="show the last N entries"
    )
    bhistory.add_argument(
        "--dir", default=None,
        help="bench directory (default: $BLAP_BENCH_DIR or .)",
    )
    bhistory.set_defaults(func=_cmd_bench_history)

    profile = sub.add_parser(
        "profile",
        help="deterministic perf attribution: self-time trees, "
        "flamegraph export, profile diffs",
    )
    prosub = profile.add_subparsers(dest="profile_command", required=True)

    prun = prosub.add_parser(
        "run", help="run a profiled campaign and write profile artifacts"
    )
    prun.add_argument("scenario", choices=scenario_names())
    prun.add_argument("--trials", type=int, default=20)
    prun.add_argument("--seed-base", type=int, default=0)
    prun.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        metavar="KEY=VALUE",
        help="scenario parameter (JSON value; repeatable)",
    )
    prun.add_argument(
        "-o", "--out", default="blap-profile",
        help="artifact directory (spans.collapsed, profile.json, ...)",
    )
    prun.add_argument(
        "--cprofile", action="store_true",
        help="also sample workers with cProfile (wall clock)",
    )
    prun.add_argument(
        "--top", type=int, default=10,
        help="rows in the top self-time table",
    )
    prun.add_argument("--json", action="store_true", help="machine output")
    _add_fault_plan_arg(prun)
    _add_population_arg(prun)
    _add_campaign_common(prun)
    prun.set_defaults(func=_cmd_profile_run)

    pflame = prosub.add_parser(
        "flame",
        help="one trial's self-time tree as collapsed flamegraph stacks "
        "(flamegraph.pl / speedscope)",
    )
    pflame.add_argument("scenario", choices=scenario_names())
    pflame.add_argument("--seed", type=int, default=1)
    pflame.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        metavar="KEY=VALUE",
        help="scenario parameter override (repeatable)",
    )
    pflame.add_argument("-o", "--output", default=None, help="output file")
    _add_fault_plan_arg(pflame)
    pflame.set_defaults(func=_cmd_profile_flame)

    pdiff = prosub.add_parser(
        "diff", help="diff two profile.json artifacts by self-time"
    )
    pdiff.add_argument(
        "baseline", help="baseline profile.json (or its directory)"
    )
    pdiff.add_argument(
        "current", help="current profile.json (or its directory)"
    )
    pdiff.add_argument(
        "--top", type=int, default=20, help="show the top N moved paths"
    )
    pdiff.add_argument("--json", action="store_true", help="machine output")
    pdiff.set_defaults(func=_cmd_profile_diff)

    faults = sub.add_parser(
        "faults", help="the fault-injection point catalogue"
    )
    fsub = faults.add_subparsers(dest="faults_command", required=True)

    flist = fsub.add_parser("list", help="catalogued injection points")
    flist.add_argument(
        "-v", "--verbose", action="store_true",
        help="show descriptions and parameters",
    )
    flist.set_defaults(func=_cmd_faults_list)

    fdesc = fsub.add_parser("describe", help="one injection point in full")
    fdesc.add_argument("point", help="point name, e.g. phy.frame_loss")
    fdesc.set_defaults(func=_cmd_faults_describe)

    population = sub.add_parser(
        "population", help="the ambient device population presets"
    )
    psub = population.add_subparsers(dest="population_command", required=True)

    plist = psub.add_parser("list", help="registered population presets")
    plist.add_argument(
        "-v", "--verbose", action="store_true",
        help="show cast members and ambient parameters",
    )
    plist.set_defaults(func=_cmd_population_list)

    pdesc = psub.add_parser("describe", help="one preset in full")
    pdesc.add_argument("name", help="preset name, e.g. office-floor")
    pdesc.add_argument(
        "--json", action="store_true", help="emit the spec as JSON"
    )
    pdesc.set_defaults(func=_cmd_population_describe)

    def _add_db_arg(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--db",
            default=None,
            metavar="DB",
            help="store database "
            "(default: $BLAP_STORE_DB or <runs root>/store.db)",
        )

    def _add_page_args(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--limit", type=int, default=1000,
            help="page size (-1 for unlimited)",
        )
        target.add_argument("--offset", type=int, default=0)
        target.add_argument(
            "--json", action="store_true", help="machine output"
        )

    storep = sub.add_parser(
        "store", help="the indexed run store (SQLite over runs/)"
    )
    ssub = storep.add_subparsers(dest="store_command", required=True)

    singest = ssub.add_parser(
        "ingest", help="backfill run directories into the store"
    )
    singest.add_argument(
        "run_dir",
        nargs="*",
        help="runs/<id> directories (default: every discovered run)",
    )
    _add_db_arg(singest)
    singest.set_defaults(func=_cmd_store_ingest)

    slist = ssub.add_parser("list", help="runs in the store")
    _add_db_arg(slist)
    slist.add_argument("--json", action="store_true", help="machine output")
    slist.set_defaults(func=_cmd_store_list)

    query = sub.add_parser(
        "query", help="typed queries against the run store"
    )
    qsub = query.add_subparsers(dest="query_command", required=True)

    qruns = qsub.add_parser("runs", help="runs with telemetry rollups")
    _add_db_arg(qruns)
    qruns.add_argument("--json", action="store_true", help="machine output")
    qruns.set_defaults(func=_cmd_store_list)

    qevents = qsub.add_parser(
        "events", help="timeline events (time-range, source, span filters)"
    )
    _add_db_arg(qevents)
    qevents.add_argument("--run", default=None, help="run id")
    qevents.add_argument(
        "--since", type=float, default=None, help="t >= SINCE (seconds)"
    )
    qevents.add_argument(
        "--until", type=float, default=None, help="t < UNTIL (seconds)"
    )
    qevents.add_argument(
        "--source", action="append", default=None,
        help="only these sources (repeatable)",
    )
    qevents.add_argument(
        "--category", action="append", default=None,
        help="only these categories (repeatable)",
    )
    qevents.add_argument(
        "--kind", default=None, choices=["trace", "span"]
    )
    qevents.add_argument(
        "--span-type", default=None, metavar="NAME",
        help="span name filter (implies --kind span)",
    )
    qevents.add_argument("--scenario", default=None)
    qevents.add_argument("--seed", type=int, default=None)
    qevents.add_argument(
        "--count", action="store_true", help="print the match count only"
    )
    qevents.add_argument(
        "--group-by", default=None,
        choices=["source", "category", "kind", "scenario"],
        help="count breakdown instead of rows",
    )
    _add_page_args(qevents)
    qevents.set_defaults(func=_cmd_query_events)

    qalerts = qsub.add_parser("alerts", help="persisted detector alerts")
    _add_db_arg(qalerts)
    qalerts.add_argument("--run", default=None, help="run id")
    qalerts.add_argument("--since", type=float, default=None)
    qalerts.add_argument("--until", type=float, default=None)
    qalerts.add_argument(
        "--detector", action="append", default=None,
        help="only these detectors (repeatable)",
    )
    qalerts.add_argument("--min-score", type=float, default=None)
    qalerts.add_argument("--peer", default=None, help="peer address")
    qalerts.add_argument("--scenario", default=None)
    qalerts.add_argument("--seed", type=int, default=None)
    _add_page_args(qalerts)
    qalerts.set_defaults(func=_cmd_query_alerts)

    qtel = qsub.add_parser("telemetry", help="per-trial campaign records")
    _add_db_arg(qtel)
    qtel.add_argument("--run", default=None, help="run id")
    qtel.add_argument("--scenario", default=None)
    qtel.add_argument("--seed", type=int, default=None)
    qtel.add_argument(
        "--success", default=None, choices=["yes", "no"],
        help="only (un)successful trials",
    )
    qtel.add_argument(
        "--cached", default=None, choices=["yes", "no"],
        help="only cache hits / misses",
    )
    qtel.add_argument(
        "--errors-only", action="store_true", help="only errored trials"
    )
    _add_page_args(qtel)
    qtel.set_defaults(func=_cmd_query_telemetry)

    serve = sub.add_parser(
        "serve", help="HTTP JSON API + live HTML view over the store"
    )
    _add_db_arg(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="TCP port (0 picks an ephemeral port; the bound URL is "
        "printed either way)",
    )
    serve.add_argument(
        "-v", "--verbose", action="store_true", help="log requests"
    )
    serve.set_defaults(func=_cmd_serve)

    service = sub.add_parser(
        "service",
        help="the detection ingest service: streaming HCI feeds and "
        "capture uploads scored online",
    )
    svsub = service.add_subparsers(dest="service_command", required=True)

    svserve = svsub.add_parser(
        "serve", help="run the HTTP/WebSocket ingest server"
    )
    svserve.add_argument("--host", default="127.0.0.1")
    svserve.add_argument(
        "--port", type=int, default=8322,
        help="TCP port (0 picks an ephemeral port; the bound URL is "
        "printed either way)",
    )
    svserve.add_argument(
        "--db", nargs="?", const="", default=None, metavar="DB",
        help="archive session alerts into this run store and allow "
        "store-sourced sessions (bare --db uses the default store)",
    )
    svserve.add_argument(
        "--idle-timeout", type=float, default=300.0, metavar="S",
        help="evict sessions idle longer than this (wall seconds)",
    )
    svserve.add_argument(
        "--window", type=int, default=64,
        help="per-session reorder window (events)",
    )
    svserve.add_argument(
        "--queue-size", type=int, default=1024,
        help="per-session ingest queue bound (events; overflow is shed "
        "into dropped_events)",
    )
    svserve.add_argument(
        "-v", "--verbose", action="store_true", help="log sessions"
    )
    svserve.set_defaults(func=_cmd_service_serve)

    svload = svsub.add_parser(
        "loadgen",
        help="replay campaign-produced captures as N concurrent "
        "synthetic clients",
    )
    svload.add_argument(
        "--sessions", type=int, default=100,
        help="concurrent streaming sessions",
    )
    svload.add_argument(
        "--tenants", type=int, default=4,
        help="tenants to spread the sessions across",
    )
    svload.add_argument(
        "--captures", type=int, default=2,
        help="captures to synthesise for the corpus",
    )
    svload.add_argument(
        "--capture", action="append", default=None, metavar="FILE",
        help="replay this btsnoop file instead of synthesising "
        "(repeatable)",
    )
    svload.add_argument(
        "--kind", default="mixed", choices=["attack", "benign", "mixed"],
        help="synthesised corpus flavour",
    )
    svload.add_argument(
        "--seed-base", type=int, default=0,
        help="seed offset for the synthesised corpus",
    )
    svload.add_argument(
        "--url", default=None,
        help="target a running server (default: self-host in-process)",
    )
    svload.add_argument(
        "--bench", action="store_true",
        help="record throughput to BENCH_service.json / "
        "BENCH_HISTORY.jsonl",
    )
    svload.add_argument("--json", action="store_true", help="machine output")
    svload.set_defaults(func=_cmd_service_loadgen)

    svsessions = svsub.add_parser(
        "sessions", help="list a running server's active sessions"
    )
    svsessions.add_argument(
        "--url", default="http://127.0.0.1:8322",
        help="server base URL",
    )
    svsessions.add_argument(
        "--json", action="store_true", help="machine output"
    )
    svsessions.set_defaults(func=_cmd_service_sessions)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
