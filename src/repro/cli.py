"""Command-line tools for the BLAP reproduction.

``blap`` bundles the forensic tools as file-based commands, so they
work on any btsnoop capture (including real ones pulled from an
Android bug report) and on raw USB analyzer streams:

* ``blap extract <capture.btsnoop>`` — scan an HCI dump for plaintext
  link keys (the §IV extractor).
* ``blap dump <capture.btsnoop>`` — render the Fig. 12-style frame
  table.
* ``blap usb-extract <stream.bin>`` — BinaryToHex + the ``0b 04 16``
  signature scan (the Fig. 11 pipeline).
* ``blap bin2hex <stream.bin>`` — just the converter.
* ``blap iocap [--version 4.2|5.0]`` — print the Fig. 7 matrix.
* ``blap demo {extraction,page-blocking,exfiltration}`` — run a full
  simulated attack and narrate the outcome.
* ``blap timeline {extraction,page-blocking,exfiltration}`` — run a
  simulated attack and export the merged cross-device timeline as a
  table, JSONL, or a Chrome trace (open in https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.types import BluetoothVersion
from repro.host.iocap import render_confirmation_matrix
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import entries_from_btsnoop, render_dump_table
from repro.snoop.usb_extract import bin2hex, extract_link_keys_from_usb


def _cmd_extract(args: argparse.Namespace) -> int:
    with open(args.capture, "rb") as handle:
        raw = handle.read()
    findings = extract_link_keys(raw)
    if not findings:
        print("no link keys found in the capture")
        return 1
    for finding in findings:
        print(finding)
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    with open(args.capture, "rb") as handle:
        raw = handle.read()
    entries = entries_from_btsnoop(raw)
    print(render_dump_table(entries, include_acl=args.acl, max_rows=args.rows))
    return 0


def _cmd_usb_extract(args: argparse.Namespace) -> int:
    with open(args.stream, "rb") as handle:
        raw = handle.read()
    findings = extract_link_keys_from_usb(raw)
    if not findings:
        print("no '0b 04 16' link key signatures found")
        return 1
    for finding in findings:
        print(finding)
    return 0


def _cmd_bin2hex(args: argparse.Namespace) -> int:
    with open(args.stream, "rb") as handle:
        raw = handle.read()
    print(bin2hex(raw, group=args.group, line_width=args.width))
    return 0


def _cmd_pcap(args: argparse.Namespace) -> int:
    from repro.snoop.pcap import hci_dump_to_pcap

    with open(args.capture, "rb") as handle:
        raw = handle.read()
    pcap = hci_dump_to_pcap(raw)
    with open(args.output, "wb") as handle:
        handle.write(pcap)
    print(f"wrote {len(pcap)} bytes to {args.output}")
    return 0


def _cmd_iocap(args: argparse.Namespace) -> int:
    version = BluetoothVersion(args.version)
    print(render_confirmation_matrix(version))
    return 0


def _run_extraction(seed: int, registry=None):
    """Run the §IV extraction scenario; return ``(world, report)``."""
    from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
    from repro.attacks.scenario import bond, build_world, standard_cast

    world = build_world(seed=seed, registry=registry)
    m, c, a = standard_cast(world)
    bond(world, c, m)
    report = LinkKeyExtractionAttack(world, a, c, m).run()
    return world, report


def _run_page_blocking(seed: int, registry=None):
    """Run the §V page blocking scenario; return ``(world, report)``."""
    from repro.attacks.page_blocking import PageBlockingAttack
    from repro.attacks.scenario import build_world, standard_cast

    world = build_world(seed=seed, registry=registry)
    m, c, a = standard_cast(world)
    report = PageBlockingAttack(world, a, c, m).run()
    return world, report


def _run_exfiltration(seed: int, registry=None):
    """Run extraction + PAN exfiltration; return ``(world, result)``.

    ``result`` is the :class:`~repro.attacks.exfiltration.ExfilReport`,
    or ``None`` when the prerequisite key extraction failed.
    """
    from repro.attacks.exfiltration import exfiltrate
    from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
    from repro.attacks.scenario import bond, build_world, standard_cast
    from repro.host.map_profile import Message
    from repro.host.pbap import Contact

    world = build_world(seed=seed, registry=registry)
    m, c, a = standard_cast(world)
    m.host.pbap.load_phonebook(
        [Contact("Alice Example", "+1-555-0100")]
    )
    m.host.map.load_messages([Message("Alice Example", "Dinner at 8?")])
    bond(world, c, m)
    report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
    if not report.extraction_success:
        return world, None
    world.set_in_range(c, m, False)
    a.host.drop_link_key_requests = False
    c.host.gap.set_scan_mode(connectable=False, discoverable=False)
    exfil = exfiltrate(
        world,
        a,
        m,
        trusted_c_addr=c.bd_addr,
        trusted_c_cod=c.controller.class_of_device,
        trusted_c_name=c.controller.local_name,
        link_key=report.extracted_key,
    )
    return world, exfil


_SCENARIO_RUNNERS = {
    "extraction": _run_extraction,
    "page-blocking": _run_page_blocking,
    "exfiltration": _run_exfiltration,
}


def _demo_extraction(seed: int) -> int:
    _, report = _run_extraction(seed)
    print(f"channel       : {report.extraction_channel}")
    print(f"su required   : {report.su_required}")
    print(f"extracted key : {report.extracted_key}")
    print(f"matches truth : {report.extraction_success}")
    print(f"validated     : {report.validated_against_m}")
    return 0 if report.vulnerable else 1


def _demo_page_blocking(seed: int) -> int:
    from repro.snoop.hcidump import render_dump_table

    _, report = _run_page_blocking(seed)
    print(f"MITM connection : {report.mitm_connection}")
    print(f"paired          : {report.paired}")
    print(f"just works      : {report.downgraded_to_just_works}")
    print(render_dump_table(report.m_dump.entries(), max_rows=14))
    return 0 if report.success else 1


def _demo_exfiltration(seed: int) -> int:
    _, exfil = _run_exfiltration(seed)
    if exfil is None:
        print("extraction failed")
        return 1
    print(f"phonebook entries stolen: {len(exfil.phonebook)}")
    for contact in exfil.phonebook:
        print(f"  {contact.name}: {contact.phone}")
    print(f"messages stolen: {len(exfil.messages)}")
    for message in exfil.messages:
        print(f"  from {message.sender}: {message.body}")
    print(f"silent (no popup on victim): {exfil.silent}")
    return 0 if exfil.success else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    runners = {
        "extraction": _demo_extraction,
        "page-blocking": _demo_page_blocking,
        "exfiltration": _demo_exfiltration,
    }
    return runners[args.scenario](args.seed)


def _cmd_timeline(args: argparse.Namespace) -> int:
    import json

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeline import (
        export_chrome_trace,
        export_jsonl,
        render_timeline_table,
    )

    # An isolated registry keeps the run deterministic per seed and
    # independent of anything else the process has been counting.
    world, _ = _SCENARIO_RUNNERS[args.scenario](
        args.seed, registry=MetricsRegistry()
    )
    events = world.obs.timeline.events(
        sources=args.source or None, categories=args.category or None
    )
    if args.limit is not None:
        events = events[: args.limit]
    if args.format == "table":
        text = render_timeline_table(events)
    elif args.format == "jsonl":
        text = export_jsonl(events)
    else:  # chrome
        text = json.dumps(export_chrome_trace(events), indent=1)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(events)} events to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blap",
        description="BLAP reproduction tools (DSN 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    extract = sub.add_parser("extract", help="link keys from a btsnoop capture")
    extract.add_argument("capture", help="btsnoop file (e.g. btsnoop_hci.log)")
    extract.set_defaults(func=_cmd_extract)

    dump = sub.add_parser("dump", help="render a btsnoop capture as a table")
    dump.add_argument("capture")
    dump.add_argument("--acl", action="store_true", help="include ACL frames")
    dump.add_argument("--rows", type=int, default=None, help="row limit")
    dump.set_defaults(func=_cmd_dump)

    usb = sub.add_parser("usb-extract", help="link keys from a raw USB stream")
    usb.add_argument("stream")
    usb.set_defaults(func=_cmd_usb_extract)

    b2h = sub.add_parser("bin2hex", help="binary to hex text (BinaryToHex)")
    b2h.add_argument("stream")
    b2h.add_argument("--group", type=int, default=1)
    b2h.add_argument("--width", type=int, default=16)
    b2h.set_defaults(func=_cmd_bin2hex)

    pcap = sub.add_parser(
        "pcap", help="convert a btsnoop capture to Wireshark pcap"
    )
    pcap.add_argument("capture")
    pcap.add_argument("-o", "--output", required=True)
    pcap.set_defaults(func=_cmd_pcap)

    iocap = sub.add_parser("iocap", help="print the Fig. 7 mapping")
    iocap.add_argument(
        "--version",
        default="5.0",
        choices=[v.value for v in BluetoothVersion],
    )
    iocap.set_defaults(func=_cmd_iocap)

    demo = sub.add_parser("demo", help="run a simulated attack end to end")
    demo.add_argument(
        "scenario", choices=["extraction", "page-blocking", "exfiltration"]
    )
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(func=_cmd_demo)

    timeline = sub.add_parser(
        "timeline",
        help="run a simulated attack and export the merged timeline",
    )
    timeline.add_argument(
        "scenario", choices=["extraction", "page-blocking", "exfiltration"]
    )
    timeline.add_argument("--seed", type=int, default=1)
    timeline.add_argument(
        "--format",
        default="table",
        choices=["table", "jsonl", "chrome"],
        help="table for terminals, jsonl for tooling, chrome for Perfetto",
    )
    timeline.add_argument("-o", "--output", default=None, help="output file")
    timeline.add_argument(
        "--limit", type=int, default=None, help="cap the number of events"
    )
    timeline.add_argument(
        "--source",
        action="append",
        default=None,
        help="only these sources (repeatable; e.g. phy, M, A)",
    )
    timeline.add_argument(
        "--category",
        action="append",
        default=None,
        help="only these categories (repeatable; e.g. phy-page, span)",
    )
    timeline.set_defaults(func=_cmd_timeline)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
