"""Ingest: getting diagnostic streams *into* the run store.

Two paths, one schema:

* **Backfill** — :func:`ingest_run_dir` walks an existing
  ``runs/<run-id>/`` directory (``run.json``, ``telemetry.jsonl``,
  exported ``timeline*.jsonl`` artifacts) and loads everything into
  the store.  ``blap store ingest`` is the CLI face; re-ingesting the
  same directory replaces that run's rows, so backfill is idempotent.
* **Live export** — :func:`export_world_timeline` writes a world's
  merged :class:`~repro.obs.Timeline` (and any detector alerts riding
  in it) straight into the store after a run, and
  :class:`StoreTelemetrySink` tees :class:`CampaignTelemetry` records
  into the store as trials finish — the exporter hook that replaces
  the write-only JSONL architecture.

Alerts are normalised on the way in: any timeline event with the
detection engine's trace shape (``source="detect"``,
``category="alert"``) also lands in the ``alerts`` table, so detector
queries stay indexed even when the only artifact was a timeline
export.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Union

from repro.core.runs import timeline_files
from repro.store.db import RunStore

if TYPE_CHECKING:
    from repro.attacks.scenario import World

#: trace shape the detection engine emits (see repro.detect.engine)
ALERT_SOURCE = "detect"
ALERT_CATEGORY = "alert"


def _literal(value: Any) -> Any:
    """Best-effort undo of the timeline's ``repr`` detail encoding."""
    if not isinstance(value, str):
        return value
    try:
        return ast.literal_eval(value)
    except (ValueError, SyntaxError):
        return value


def alert_from_event(event: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """An ``alerts``-table record from one timeline event dict, or
    ``None`` when the event is not a detection alert."""
    if (
        event.get("source") != ALERT_SOURCE
        or event.get("category") != ALERT_CATEGORY
    ):
        return None
    detail = event.get("detail") or {}
    message = str(event.get("message", ""))
    detector = ""
    if message.startswith("["):
        detector, _, message = message[1:].partition("] ")
    score = _literal(detail.get("score"))
    return {
        "time": float(event.get("time", 0.0)),
        "detector": detector,
        "monitor": _literal(detail.get("monitor")),
        "score": float(score) if isinstance(score, (int, float)) else None,
        "confidence": _literal(detail.get("confidence")),
        "peer": _literal(detail.get("peer")),
        "message": message,
    }


def store_events(
    store: RunStore,
    run_id: str,
    events: Any,
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Append events + mirror any embedded alerts; returns counts."""
    from repro.obs.timeline import event_to_jsonable

    payloads: List[Dict[str, Any]] = []
    for event in events:
        if isinstance(event, Mapping):
            payload = dict(event)
            if "t" in payload:
                payload["time"] = payload.pop("t")
        else:
            payload = event_to_jsonable(event)
            payload["time"] = payload.pop("t")
        payloads.append(payload)
    added = store.add_events(run_id, payloads, scenario=scenario, seed=seed)
    alerts = [
        alert for alert in map(alert_from_event, payloads) if alert is not None
    ]
    store.add_alerts(run_id, alerts, scenario=scenario, seed=seed)
    return {"events": added, "alerts": len(alerts)}


def export_world_timeline(
    store: RunStore,
    run_id: str,
    world: "World",
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Write one world's merged timeline into the store (the live
    exporter hook behind ``blap timeline --store``)."""
    return store_events(
        store,
        run_id,
        world.obs.timeline.events(),
        scenario=scenario,
        seed=seed,
    )


def ingest_run_dir(
    store: RunStore, run_dir: Union[str, Path]
) -> Dict[str, int]:
    """Backfill one ``runs/<run-id>/`` directory; returns row counts.

    Idempotent: the run's previous rows are replaced, so re-running
    ``blap store ingest`` after a crashed or extended run never
    duplicates events.
    """
    from repro.campaign.telemetry import read_telemetry
    from repro.obs.timeline import events_from_jsonl

    run_dir = Path(run_dir)
    run_id = run_dir.name
    store.delete_run(run_id)

    summary: Optional[Dict[str, Any]] = None
    try:
        with open(run_dir / "run.json", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict):
            summary = loaded
    except (OSError, ValueError):
        pass

    records = read_telemetry(run_dir)
    store.add_telemetry(run_id, records)

    counts = {"telemetry": len(records), "events": 0, "alerts": 0}
    for artifact in timeline_files(run_dir):
        with open(artifact, encoding="utf-8") as handle:
            added = store_events(store, run_id, events_from_jsonl(handle))
        counts["events"] += added["events"]
        counts["alerts"] += added["alerts"]

    store.upsert_run(
        run_id,
        trials=(summary or {}).get("trials", len(records)),
        errors=(summary or {}).get(
            "errors", sum(1 for r in records if r.get("error"))
        ),
        wall_time_s=(summary or {}).get("wall_time_s"),
        summary=summary,
    )
    return counts


class StoreTelemetrySink:
    """Tees campaign telemetry records into the store as they stream.

    Attach via ``CampaignTelemetry(..., store=...)``: every
    :meth:`record` call (already serialised by the telemetry lock)
    appends one telemetry row, and :meth:`close` lands the run
    summary.  The JSONL file keeps being written alongside — the store
    indexes the stream, it doesn't replace the artifact.
    """

    def __init__(self, store: RunStore, run_id: str) -> None:
        self.store = store
        self.run_id = run_id
        store.upsert_run(run_id)

    def record(self, record: Mapping[str, Any]) -> None:
        self.store.add_telemetry(self.run_id, [record])

    def close(self, summary: Mapping[str, Any]) -> None:
        self.store.upsert_run(
            self.run_id,
            trials=summary.get("trials"),
            errors=summary.get("errors"),
            wall_time_s=summary.get("wall_time_s"),
            summary=summary,
        )
