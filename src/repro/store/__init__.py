"""The queryable run store: indexed timelines over ``runs/<run-id>/``.

Every diagnostic stream the reproduction emits — timeline events
(HCI taps, air frames, tracer records, fault injections, spans),
detector alerts, per-trial campaign telemetry — lands in one indexed
SQLite database instead of write-only JSONL dumps, following the
bluTruth storage-layer/interface-layer split:

* :mod:`repro.store.db` — :class:`RunStore`, the append-friendly
  storage layer (normalised schema in :mod:`repro.store.schema`);
* :mod:`repro.store.query` — typed query values
  (:class:`EventQuery`, :class:`AlertQuery`,
  :class:`TelemetryQuery`) shared by every front-end;
* :mod:`repro.store.ingest` — live exporter hooks
  (:func:`export_world_timeline`, :class:`StoreTelemetrySink`) and
  ``blap store ingest`` backfill (:func:`ingest_run_dir`);
* :mod:`repro.store.server` — the ``blap serve`` HTTP JSON API and
  live HTML view;
* :mod:`repro.store.replay` — archived run → detection-event stream
  (:func:`detection_events_for_run`), feeding store-sourced
  :mod:`repro.service` sessions.

Quick start::

    from repro.store import RunStore, EventQuery, ingest_run_dir

    with RunStore("runs/store.db") as store:
        ingest_run_dir(store, "runs/20260808-120000-00042")
        events = store.query_events(
            EventQuery(run_id="20260808-120000-00042",
                       since=10.0, until=12.5, sources=("M", "phy"))
        )
"""

from repro.store.db import (
    RunInfo,
    RunStore,
    StoredEvent,
    StoreError,
    default_store_path,
)
from repro.store.ingest import (
    StoreTelemetrySink,
    alert_from_event,
    export_world_timeline,
    ingest_run_dir,
    store_events,
)
from repro.store.query import (
    AlertQuery,
    EventQuery,
    TelemetryQuery,
    query_from_params,
)
from repro.store.replay import detection_events_for_run
from repro.store.schema import SCHEMA_VERSION

__all__ = [
    "AlertQuery",
    "EventQuery",
    "RunInfo",
    "RunStore",
    "SCHEMA_VERSION",
    "StoreError",
    "StoreTelemetrySink",
    "StoredEvent",
    "TelemetryQuery",
    "alert_from_event",
    "default_store_path",
    "detection_events_for_run",
    "export_world_timeline",
    "ingest_run_dir",
    "query_from_params",
    "store_events",
]
