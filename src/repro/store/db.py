"""The indexed run store: one SQLite database over ``runs/<run-id>/``.

:class:`RunStore` is the storage half of the queryable-timeline
design (the bluTruth "storage layer"): producers append rows —
timeline events, detector alerts, per-trial telemetry, run summaries —
and every consumer (``blap query``, ``blap serve``, ``blap report``)
reads them back through the typed query API in
:mod:`repro.store.query`.

Concurrency model: SQLite in WAL mode with one connection per store,
serialised by an internal lock (``check_same_thread=False`` so the
campaign telemetry drain thread and the serve request threads can
share a handle).  Writers batch with ``executemany`` inside one
transaction per call, which keeps million-event ingests fast without
any daemon.

``":memory:"`` is a fully supported path — ``blap report`` ingests a
run directory into an in-memory store and queries it back, so the
report path *is* the query path even with no database file on disk.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.runs import runs_root
from repro.store.query import AlertQuery, EventQuery, TelemetryQuery
from repro.store.schema import SCHEMA_DDL, SCHEMA_VERSION


def default_store_path() -> Path:
    """Where the store database lives: ``$BLAP_STORE_DB`` or
    ``<runs root>/store.db``."""
    import os

    override = os.environ.get("BLAP_STORE_DB")
    return Path(override) if override else runs_root() / "store.db"


class StoreError(Exception):
    """Schema mismatch or other store-level failure."""


@dataclass(frozen=True)
class RunInfo:
    """One ``runs`` row."""

    run_id: str
    created_ts: Optional[str] = None
    trials: int = 0
    errors: int = 0
    wall_time_s: float = 0.0
    summary: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "created_ts": self.created_ts,
            "trials": self.trials,
            "errors": self.errors,
            "wall_time_s": self.wall_time_s,
            "summary": self.summary,
        }


@dataclass(frozen=True)
class StoredEvent:
    """One unified-timeline row read back from the store."""

    run_id: str
    time: float
    seq: int
    source: str
    category: str
    kind: str
    message: str
    duration: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    scenario: Optional[str] = None
    seed: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "run_id": self.run_id,
            "time": self.time,
            "seq": self.seq,
            "source": self.source,
            "category": self.category,
            "kind": self.kind,
            "message": self.message,
        }
        if self.duration is not None:
            payload["duration"] = self.duration
        if self.detail:
            payload["detail"] = self.detail
        if self.scenario is not None:
            payload["scenario"] = self.scenario
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload


def _dump_json(value: Any) -> Optional[str]:
    if not value:
        return None
    return json.dumps(value, sort_keys=True)


def _load_json(text: Optional[str]) -> Dict[str, Any]:
    if not text:
        return {}
    try:
        loaded = json.loads(text)
    except ValueError:
        return {}
    return loaded if isinstance(loaded, dict) else {}


class RunStore:
    """Append-friendly indexed store + query surface (see module doc)."""

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        if str(self.path) != ":memory:":
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            # WAL keeps a live exporter from blocking serve readers on
            # file-backed stores; in-memory databases reject it, which
            # is fine — they have exactly one user.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(SCHEMA_DDL)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                self._conn.commit()
            elif int(row["value"]) != SCHEMA_VERSION:
                raise StoreError(
                    f"{self.path}: store schema v{row['value']} != "
                    f"supported v{SCHEMA_VERSION}; re-ingest into a "
                    f"fresh database"
                )

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # --------------------------------------------------------------- writers

    def upsert_run(
        self,
        run_id: str,
        created_ts: Optional[str] = None,
        trials: Optional[int] = None,
        errors: Optional[int] = None,
        wall_time_s: Optional[float] = None,
        summary: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Create or refresh one run row; ``None`` fields keep their
        stored value, so partial updates (a live exporter registering
        the run before its summary exists) never regress counters."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO runs (run_id) VALUES (?) "
                "ON CONFLICT (run_id) DO NOTHING",
                (run_id,),
            )
            sets: List[str] = []
            params: List[Any] = []
            for column, value in (
                ("created_ts", created_ts),
                ("trials", trials),
                ("errors", errors),
                ("wall_time_s", wall_time_s),
                ("summary", _dump_json(dict(summary)) if summary else None),
            ):
                if value is not None:
                    sets.append(f"{column} = ?")
                    params.append(value)
            if sets:
                params.append(run_id)
                self._conn.execute(
                    f"UPDATE runs SET {', '.join(sets)} WHERE run_id = ?",
                    params,
                )
            self._conn.commit()

    def add_events(
        self,
        run_id: str,
        events: Iterable[Any],
        scenario: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> int:
        """Append timeline events (``TimelineEvent`` objects or the
        dicts :func:`repro.obs.timeline.event_to_jsonable` /
        ``events_from_jsonl`` produce).  Returns the row count."""
        rows = [
            _event_row(run_id, event, scenario, seed) for event in events
        ]
        if not rows:
            return 0
        with self._lock:
            self._conn.executemany(
                "INSERT INTO events (run_id, scenario, seed, time, seq, "
                "source, category, kind, message, duration, detail) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.execute(
                "INSERT INTO runs (run_id) VALUES (?) "
                "ON CONFLICT (run_id) DO NOTHING",
                (run_id,),
            )
            self._conn.commit()
        return len(rows)

    def add_alerts(
        self,
        run_id: str,
        alerts: Iterable[Any],
        scenario: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> int:
        """Append detector alerts (:class:`repro.detect.base.Alert`
        objects or their ``to_dict`` form)."""
        rows = [
            _alert_row(run_id, alert, scenario, seed) for alert in alerts
        ]
        if not rows:
            return 0
        with self._lock:
            self._conn.executemany(
                "INSERT INTO alerts (run_id, scenario, seed, time, "
                "detector, monitor, score, confidence, peer, message, "
                "detail) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.execute(
                "INSERT INTO runs (run_id) VALUES (?) "
                "ON CONFLICT (run_id) DO NOTHING",
                (run_id,),
            )
            self._conn.commit()
        return len(rows)

    def add_telemetry(
        self, run_id: str, records: Iterable[Mapping[str, Any]]
    ) -> int:
        """Append per-trial telemetry records (the ``telemetry.jsonl``
        dicts).  The verbatim record JSON rides along so reads are
        lossless."""
        rows = []
        for record in records:
            error = record.get("error")
            rows.append(
                (
                    run_id,
                    record.get("scenario"),
                    record.get("seed"),
                    1 if record.get("success") else 0,
                    record.get("outcome"),
                    record.get("attempts"),
                    record.get("wall_time_s"),
                    record.get("sim_time_s"),
                    1 if record.get("cached") else 0,
                    1 if record.get("faulted") else 0,
                    str(error) if error else None,
                    json.dumps(record, sort_keys=True),
                )
            )
        if not rows:
            return 0
        with self._lock:
            self._conn.executemany(
                "INSERT INTO telemetry (run_id, scenario, seed, success, "
                "outcome, attempts, wall_time_s, sim_time_s, cached, "
                "faulted, error, record) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.execute(
                "INSERT INTO runs (run_id) VALUES (?) "
                "ON CONFLICT (run_id) DO NOTHING",
                (run_id,),
            )
            self._conn.commit()
        return len(rows)

    def delete_run(self, run_id: str) -> None:
        """Drop one run's rows (ingest idempotency; the run row itself
        survives so a re-ingest keeps its identity)."""
        with self._lock:
            for table in ("events", "alerts", "telemetry"):
                self._conn.execute(
                    f"DELETE FROM {table} WHERE run_id = ?", (run_id,)
                )
            self._conn.commit()

    # --------------------------------------------------------------- readers

    def runs(self) -> List[RunInfo]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM runs ORDER BY run_id"
            ).fetchall()
        return [
            RunInfo(
                run_id=row["run_id"],
                created_ts=row["created_ts"],
                trials=row["trials"],
                errors=row["errors"],
                wall_time_s=row["wall_time_s"],
                summary=_load_json(row["summary"]) or None,
            )
            for row in rows
        ]

    def run(self, run_id: str) -> Optional[RunInfo]:
        for info in self.runs():
            if info.run_id == run_id:
                return info
        return None

    def query_events(self, query: EventQuery) -> List[StoredEvent]:
        """Timeline page in deterministic ``(time, seq)`` order."""
        where, params = query.where()
        sql = (
            f"SELECT * FROM events WHERE {where} "
            f"ORDER BY time, seq LIMIT ? OFFSET ?"
        )
        with self._lock:
            rows = self._conn.execute(
                sql, params + [int(query.limit), int(query.offset)]
            ).fetchall()
        return [
            StoredEvent(
                run_id=row["run_id"],
                time=row["time"],
                seq=row["seq"],
                source=row["source"],
                category=row["category"],
                kind=row["kind"],
                message=row["message"],
                duration=row["duration"],
                detail=_load_json(row["detail"]),
                scenario=row["scenario"],
                seed=row["seed"],
            )
            for row in rows
        ]

    def count_events(
        self, query: EventQuery, group_by: Optional[str] = None
    ) -> Union[int, Dict[str, int]]:
        """Aggregate counts; ``group_by`` one of source / category /
        kind / scenario for a breakdown dict."""
        where, params = query.where()
        if group_by is None:
            sql = f"SELECT COUNT(*) AS n FROM events WHERE {where}"
            with self._lock:
                return int(self._conn.execute(sql, params).fetchone()["n"])
        if group_by not in ("source", "category", "kind", "scenario"):
            raise ValueError(f"cannot group events by {group_by!r}")
        sql = (
            f"SELECT {group_by} AS k, COUNT(*) AS n FROM events "
            f"WHERE {where} GROUP BY {group_by} ORDER BY {group_by}"
        )
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return {str(row["k"]): int(row["n"]) for row in rows}

    def time_range(self, run_id: str) -> Optional[Tuple[float, float]]:
        """(min, max) event time for a run, or None when eventless."""
        with self._lock:
            row = self._conn.execute(
                "SELECT MIN(time) AS lo, MAX(time) AS hi FROM events "
                "WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        if row is None or row["lo"] is None:
            return None
        return float(row["lo"]), float(row["hi"])

    def query_alerts(self, query: AlertQuery) -> List[Dict[str, Any]]:
        where, params = query.where()
        sql = (
            f"SELECT * FROM alerts WHERE {where} "
            f"ORDER BY time, id LIMIT ? OFFSET ?"
        )
        with self._lock:
            rows = self._conn.execute(
                sql, params + [int(query.limit), int(query.offset)]
            ).fetchall()
        out = []
        for row in rows:
            entry: Dict[str, Any] = {
                "run_id": row["run_id"],
                "time": row["time"],
                "detector": row["detector"],
                "monitor": row["monitor"],
                "score": row["score"],
                "confidence": row["confidence"],
                "peer": row["peer"],
                "message": row["message"],
            }
            detail = _load_json(row["detail"])
            if detail:
                entry["detail"] = detail
            if row["scenario"] is not None:
                entry["scenario"] = row["scenario"]
            if row["seed"] is not None:
                entry["seed"] = row["seed"]
            out.append(entry)
        return out

    def query_telemetry(
        self, query: TelemetryQuery
    ) -> List[Dict[str, Any]]:
        """The verbatim telemetry records, in ingest order — exactly
        what :func:`repro.campaign.telemetry.read_telemetry` returns
        for the same run, which is what keeps store-backed reports
        byte-identical to the JSONL path."""
        where, params = query.where()
        sql = (
            f"SELECT record FROM telemetry WHERE {where} "
            f"ORDER BY id LIMIT ? OFFSET ?"
        )
        with self._lock:
            rows = self._conn.execute(
                sql, params + [int(query.limit), int(query.offset)]
            ).fetchall()
        records = []
        for row in rows:
            loaded = _load_json(row["record"])
            if loaded:
                records.append(loaded)
        return records

    def telemetry_summary(self, run_id: str) -> Dict[str, Any]:
        """Per-run rollup for the serve view and ``blap store list``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS trials, "
                "COALESCE(SUM(success), 0) AS successes, "
                "COALESCE(SUM(cached), 0) AS cached, "
                "COALESCE(SUM(error IS NOT NULL), 0) AS errors, "
                "COALESCE(SUM(wall_time_s), 0.0) AS wall_time_s "
                "FROM telemetry WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        return {
            "trials": int(row["trials"]),
            "successes": int(row["successes"]),
            "cached": int(row["cached"]),
            "errors": int(row["errors"]),
            "wall_time_s": float(row["wall_time_s"]),
        }


# ---------------------------------------------------------- row builders


def _event_row(
    run_id: str,
    event: Any,
    scenario: Optional[str],
    seed: Optional[int],
) -> Tuple[Any, ...]:
    if isinstance(event, Mapping):
        time_s = event.get("time", event.get("t"))
        duration = event.get("duration")
        detail = event.get("detail") or {}
        kind = event.get("kind") or (
            "span" if duration is not None else "trace"
        )
        return (
            run_id,
            event.get("scenario", scenario),
            event.get("seed", seed),
            float(time_s),
            int(event.get("seq", 0)),
            str(event.get("source", "")),
            str(event.get("category", "")),
            kind,
            str(event.get("message", "")),
            duration,
            _dump_json(detail),
        )
    # a TimelineEvent (or anything shaped like one)
    from repro.obs.timeline import detail_repr

    return (
        run_id,
        scenario,
        seed,
        float(event.time),
        int(event.seq),
        event.source,
        event.category,
        event.kind,
        event.message,
        event.duration,
        _dump_json(detail_repr(event.detail)),
    )


def _alert_row(
    run_id: str,
    alert: Any,
    scenario: Optional[str],
    seed: Optional[int],
) -> Tuple[Any, ...]:
    data = alert.to_dict() if hasattr(alert, "to_dict") else dict(alert)
    return (
        run_id,
        data.get("scenario", scenario),
        data.get("seed", seed),
        float(data.get("time", 0.0)),
        str(data.get("detector", "")),
        data.get("monitor"),
        data.get("score"),
        data.get("confidence"),
        data.get("peer"),
        data.get("message"),
        _dump_json(data.get("detail") or {}),
    )
