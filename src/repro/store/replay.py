"""Replaying archived runs back through the detection pipeline.

The PR 6 follow-on from the roadmap: once a run's timeline is in the
store, the detection service can source a session straight from it —
``store.query_events`` → :class:`~repro.detect.feed.DetectionEvent`
stream — with no JSONL files or captures in between.

Stored timelines are tracer-shaped (source/category/message/detail
rows), so replayed events ride the ``trace`` channel; trace-channel
detectors (e.g. ``surveillance``) score them exactly as they scored
the live run.  ``detect``-source rows — the alert records the original
detection pass emitted — are skipped, mirroring
:data:`repro.detect.feed.EXCLUDED_TRACE_SOURCES`: replaying a run that
was already scored must not feed the old alerts back into detectors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.detect.feed import EXCLUDED_TRACE_SOURCES, DetectionEvent
from repro.sim.trace import TraceRecord
from repro.store.query import EventQuery

if TYPE_CHECKING:
    from repro.store.db import RunStore


def detection_events_for_run(
    store: "RunStore", run_id: str, monitor: str = "store"
) -> Iterator[DetectionEvent]:
    """Stream one archived run as trace-channel detection events.

    Events come back in the store's deterministic ``(time, seq)``
    order, so the replay needs no reorder window.  Raises ``KeyError``
    when the run has no timeline rows at all (unknown run id).
    """
    rows = store.query_events(EventQuery(run_id=run_id, limit=-1))
    if not rows:
        raise KeyError(f"run {run_id!r} has no stored events")
    for row in rows:
        if row.source in EXCLUDED_TRACE_SOURCES:
            continue
        record = TraceRecord(
            time=row.time,
            source=row.source,
            category=row.category,
            message=row.message,
            detail=dict(row.detail),
            seq=row.seq,
        )
        yield DetectionEvent(
            time=row.time,
            seq=row.seq,
            monitor=monitor,
            channel="trace",
            kind=row.category,
            record=record,
        )
