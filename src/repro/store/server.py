"""``blap serve``: a stdlib-only HTTP front-end over the run store.

The interface layer of the queryable-timeline design: a small
threading HTTP server (no dependencies beyond the standard library)
that exposes the query API as JSON plus a minimal live HTML view.

JSON API::

    GET /healthz                     liveness probe
    GET /api/runs                    every run in the store
    GET /api/runs/<id>               run detail + counts + time range
    GET /api/runs/<id>/events       ?since=&until=&source=&category=
                                    &kind=&span_type=&scenario=&seed=
                                    &limit=&offset=
    GET /api/runs/<id>/alerts       ?detector=&min_score=&since=&until=
    GET /api/runs/<id>/telemetry    ?scenario=&seed=&success=&cached=

List-valued filters repeat the parameter (``&source=M&source=phy``)
or comma-join (``&source=M,phy``).  Responses are
``{"data": [...], "count": N}`` envelopes; filter errors come back as
HTTP 400 with ``{"error": ...}`` instead of a traceback.

HTML view::

    GET /                            runs index
    GET /run/<id>                    per-run live view (auto-refresh)

Every request reads through the shared :class:`RunStore` handle (its
internal lock serialises readers against any live exporter), so the
page a browser shows tracks an in-flight campaign without restarts.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from repro.store.db import RunStore
from repro.store.query import (
    AlertQuery,
    EventQuery,
    TelemetryQuery,
    query_from_params,
)

#: rows shown in the HTML event/alert tables
HTML_ROWS = 50


def _params(query_string: str, lists: Dict[str, str]) -> Dict[str, Any]:
    """parse_qs output → a flat kwargs dict for query_from_params.

    ``lists`` maps singular URL spellings (``source``) to the query
    dataclass's plural field (``sources``); everything else keeps its
    last value.
    """
    parsed = parse_qs(query_string, keep_blank_values=False)
    out: Dict[str, Any] = {}
    for key, values in parsed.items():
        target = lists.get(key)
        if target is not None:
            flattened: List[str] = []
            for value in values:
                flattened.extend(v for v in value.split(",") if v)
            out[target] = tuple(flattened)
        else:
            out[key] = values[-1]
    return out


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes one request; the server instance carries the store."""

    server_version = "blap-serve/1.0"
    #: set by StoreServer
    store: RunStore

    # ------------------------------------------------------------ plumbing

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def _html(self, text: str, status: int = 200) -> None:
        self._send(
            status, text.encode("utf-8"), "text/html; charset=utf-8"
        )

    # ------------------------------------------------------------- routing

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        try:
            self._route(parts, split.query)
        except ValueError as exc:
            self._json({"error": str(exc)}, status=400)
        except BrokenPipeError:  # client went away mid-write
            pass
        except Exception as exc:  # noqa: BLE001 - server must survive
            self._json({"error": f"{type(exc).__name__}: {exc}"}, 500)

    def _route(self, parts: List[str], query: str) -> None:
        store = self.store
        if parts == ["healthz"]:
            self._json({"ok": True})
        elif parts == ["api", "runs"]:
            self._api_runs(store)
        elif len(parts) == 3 and parts[:2] == ["api", "runs"]:
            self._api_run_detail(store, parts[2])
        elif len(parts) == 4 and parts[:2] == ["api", "runs"]:
            run_id, resource = parts[2], parts[3]
            if resource == "events":
                self._api_events(store, run_id, query)
            elif resource == "alerts":
                self._api_alerts(store, run_id, query)
            elif resource == "telemetry":
                self._api_telemetry(store, run_id, query)
            else:
                self._json({"error": f"unknown resource {resource!r}"}, 404)
        elif not parts:
            self._html(render_index(store))
        elif len(parts) == 2 and parts[0] == "run":
            page = render_run_page(store, parts[1])
            if page is None:
                self._html("<h1>run not found</h1>", status=404)
            else:
                self._html(page)
        else:
            self._json({"error": "not found"}, 404)

    # ------------------------------------------------------------ JSON API

    def _api_runs(self, store: RunStore) -> None:
        data = []
        for info in store.runs():
            entry = info.to_dict()
            entry["telemetry"] = store.telemetry_summary(info.run_id)
            entry["events"] = store.count_events(
                EventQuery(run_id=info.run_id)
            )
            data.append(entry)
        self._json({"data": data, "count": len(data)})

    def _api_run_detail(self, store: RunStore, run_id: str) -> None:
        info = store.run(run_id)
        if info is None:
            self._json({"error": f"unknown run {run_id!r}"}, 404)
            return
        span = store.time_range(run_id)
        self._json(
            {
                "data": {
                    **info.to_dict(),
                    "telemetry": store.telemetry_summary(run_id),
                    "events": store.count_events(EventQuery(run_id=run_id)),
                    "events_by_source": store.count_events(
                        EventQuery(run_id=run_id), group_by="source"
                    ),
                    "events_by_kind": store.count_events(
                        EventQuery(run_id=run_id), group_by="kind"
                    ),
                    "alerts": len(
                        store.query_alerts(AlertQuery(run_id=run_id))
                    ),
                    "time_range": list(span) if span else None,
                }
            }
        )

    def _api_events(
        self, store: RunStore, run_id: str, query_string: str
    ) -> None:
        params = _params(
            query_string,
            {"source": "sources", "category": "categories"},
        )
        params["run_id"] = run_id
        query = query_from_params(EventQuery, params)
        events = [event.to_dict() for event in store.query_events(query)]
        self._json(
            {
                "data": events,
                "count": len(events),
                "total": store.count_events(query),
                "offset": query.offset,
            }
        )

    def _api_alerts(
        self, store: RunStore, run_id: str, query_string: str
    ) -> None:
        params = _params(query_string, {"detector": "detectors"})
        params["run_id"] = run_id
        query = query_from_params(AlertQuery, params)
        alerts = store.query_alerts(query)
        self._json({"data": alerts, "count": len(alerts)})

    def _api_telemetry(
        self, store: RunStore, run_id: str, query_string: str
    ) -> None:
        params = _params(query_string, {})
        params["run_id"] = run_id
        query = query_from_params(TelemetryQuery, params)
        records = store.query_telemetry(query)
        self._json({"data": records, "count": len(records)})


class StoreServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one RunStore."""

    daemon_threads = True

    def __init__(
        self,
        store: RunStore,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        handler = type(
            "BoundStoreRequestHandler",
            (StoreRequestHandler,),
            {"store": store},
        )
        super().__init__((host, port), handler)
        self.store = store
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    store: RunStore,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    ready: Optional[Callable[[StoreServer], None]] = None,
) -> None:
    """Bind, announce, and serve forever (the ``blap serve`` body).

    ``port=0`` binds an ephemeral OS-assigned port; ``ready`` (if
    given) fires after binding with the live server — tests use it to
    learn the port without scraping stdout.
    """
    server = StoreServer(store, host=host, port=port, verbose=verbose)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


# ----------------------------------------------------------------- HTML


def _escape(text: Any) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; max-width: 72rem;
       margin: 2rem auto; padding: 0 1rem; color: #1a1a2e; }
table { border-collapse: collapse; margin: 0.75rem 0; width: 100%; }
th, td { border: 1px solid #c5c9d4; padding: 0.2rem 0.55rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eef0f5; }
h1, h2 { line-height: 1.2; }
code { background: #eef0f5; padding: 0 0.25rem; }
.muted { color: #667; }
""".strip()


def _page(title: str, body: str, refresh_s: Optional[int] = None) -> str:
    refresh = (
        f'<meta http-equiv="refresh" content="{refresh_s}">'
        if refresh_s
        else ""
    )
    return (
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_escape(title)}</title>{refresh}"
        f"<style>{_STYLE}</style></head>\n<body>\n{body}\n</body></html>\n"
    )


def _table(headers: List[str], rows: List[List[Any]]) -> str:
    out = ["<table><tr>"]
    out.extend(f"<th>{_escape(h)}</th>" for h in headers)
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        out.extend(f"<td>{cell}</td>" for cell in row)
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def render_index(store: RunStore) -> str:
    rows = []
    for info in store.runs():
        telemetry = store.telemetry_summary(info.run_id)
        events = store.count_events(EventQuery(run_id=info.run_id))
        rows.append(
            [
                f'<a href="/run/{_escape(info.run_id)}">'
                f"{_escape(info.run_id)}</a>",
                telemetry["trials"],
                telemetry["successes"],
                telemetry["errors"],
                events,
                f"{info.wall_time_s:.2f}",
            ]
        )
    body = (
        "<h1>BLAP run store</h1>"
        f'<p class="muted">{_escape(store.path)} — '
        f"{len(rows)} run(s); JSON at <code>/api/runs</code>.</p>"
        + _table(
            ["run", "trials", "ok", "errors", "events", "wall (s)"], rows
        )
    )
    return _page("BLAP run store", body, refresh_s=5)


def render_run_page(store: RunStore, run_id: str) -> Optional[str]:
    info = store.run(run_id)
    if info is None:
        return None
    telemetry = store.telemetry_summary(run_id)
    by_source = store.count_events(
        EventQuery(run_id=run_id), group_by="source"
    )
    span = store.time_range(run_id)
    alerts = store.query_alerts(AlertQuery(run_id=run_id, limit=HTML_ROWS))
    events = store.query_events(EventQuery(run_id=run_id, limit=HTML_ROWS))

    parts = [f"<h1>run {_escape(run_id)}</h1>"]
    time_note = (
        f"t = {span[0]:.6f} .. {span[1]:.6f} s" if span else "no events"
    )
    parts.append(
        f'<p class="muted">{telemetry["trials"]} trials '
        f'({telemetry["successes"]} ok, {telemetry["errors"]} errors, '
        f'{telemetry["cached"]} cached) — {time_note} — JSON at '
        f'<code>/api/runs/{_escape(run_id)}/events</code>.</p>'
    )
    if by_source:
        parts.append("<h2>Events by source</h2>")
        parts.append(
            _table(
                ["source", "events"],
                [[_escape(k), v] for k, v in sorted(by_source.items())],
            )
        )
    if alerts:
        parts.append(f"<h2>Alerts (first {len(alerts)})</h2>")
        parts.append(
            _table(
                ["time", "detector", "score", "peer", "message"],
                [
                    [
                        f"{alert['time']:.6f}",
                        _escape(alert["detector"]),
                        "-"
                        if alert["score"] is None
                        else f"{alert['score']:.2f}",
                        _escape(alert["peer"] or ""),
                        _escape(alert["message"] or ""),
                    ]
                    for alert in alerts
                ],
            )
        )
    if events:
        parts.append(f"<h2>Timeline (first {len(events)})</h2>")
        parts.append(
            _table(
                ["time", "source", "category", "kind", "message"],
                [
                    [
                        f"{event.time:.6f}",
                        _escape(event.source),
                        _escape(event.category),
                        _escape(event.kind),
                        _escape(event.message),
                    ]
                    for event in events
                ],
            )
        )
    parts.append('<p><a href="/">&larr; all runs</a></p>')
    return _page(f"run {run_id}", "".join(parts), refresh_s=3)
