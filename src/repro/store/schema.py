"""The run store's SQLite schema.

One database indexes any number of runs.  The design goals, in order:

* **append-friendly** — producers only ever ``INSERT`` (plus one
  ``UPSERT`` on the ``runs`` row), so live exporters and backfill
  ingest can share a database without coordination;
* **queryable** — every filter the query API exposes (time-range,
  run, trial seed, device/source, category, kind, detector) is backed
  by an index, so ``blap serve`` answers interactively over
  multi-million-event stores;
* **lossless** — rows keep the original JSON payloads (``detail``,
  ``record``) next to the indexed columns, so a store round-trip
  reproduces the source artifacts exactly (``blap report`` from the
  store is byte-identical to the JSONL path).

Tables:

``runs``
    One row per run id: counters and the ``run.json`` summary blob.
``events``
    The unified timeline — trace records *and* finished spans from
    every device/source, tagged with the producing scenario + seed.
``alerts``
    Detector alerts, normalised out of the timeline so detector /
    score filters don't scan the events table.
``telemetry``
    One row per campaign trial (the ``telemetry.jsonl`` stream), with
    the verbatim record JSON for lossless re-reads.
"""

from __future__ import annotations

#: bump on incompatible schema changes; checked at open time
SCHEMA_VERSION = 1

#: executed with ``executescript`` on every open (all idempotent)
SCHEMA_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    created_ts  TEXT,
    trials      INTEGER NOT NULL DEFAULT 0,
    errors      INTEGER NOT NULL DEFAULT 0,
    wall_time_s REAL    NOT NULL DEFAULT 0.0,
    summary     TEXT
);

CREATE TABLE IF NOT EXISTS events (
    id       INTEGER PRIMARY KEY,
    run_id   TEXT    NOT NULL,
    scenario TEXT,
    seed     INTEGER,
    time     REAL    NOT NULL,
    seq      INTEGER NOT NULL,
    source   TEXT    NOT NULL,
    category TEXT    NOT NULL,
    kind     TEXT    NOT NULL,
    message  TEXT    NOT NULL,
    duration REAL,
    detail   TEXT
);
CREATE INDEX IF NOT EXISTS idx_events_run_time
    ON events (run_id, time, seq);
CREATE INDEX IF NOT EXISTS idx_events_run_source
    ON events (run_id, source);
CREATE INDEX IF NOT EXISTS idx_events_run_category
    ON events (run_id, category);
CREATE INDEX IF NOT EXISTS idx_events_run_kind_message
    ON events (run_id, kind, message);
CREATE INDEX IF NOT EXISTS idx_events_run_seed
    ON events (run_id, seed);

CREATE TABLE IF NOT EXISTS alerts (
    id         INTEGER PRIMARY KEY,
    run_id     TEXT NOT NULL,
    scenario   TEXT,
    seed       INTEGER,
    time       REAL NOT NULL,
    detector   TEXT NOT NULL,
    monitor    TEXT,
    score      REAL,
    confidence TEXT,
    peer       TEXT,
    message    TEXT,
    detail     TEXT
);
CREATE INDEX IF NOT EXISTS idx_alerts_run_time
    ON alerts (run_id, time);
CREATE INDEX IF NOT EXISTS idx_alerts_run_detector
    ON alerts (run_id, detector);

CREATE TABLE IF NOT EXISTS telemetry (
    id          INTEGER PRIMARY KEY,
    run_id      TEXT NOT NULL,
    scenario    TEXT,
    seed        INTEGER,
    success     INTEGER,
    outcome     TEXT,
    attempts    INTEGER,
    wall_time_s REAL,
    sim_time_s  REAL,
    cached      INTEGER,
    faulted     INTEGER,
    error       TEXT,
    record      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_telemetry_run_scenario_seed
    ON telemetry (run_id, scenario, seed);
"""
