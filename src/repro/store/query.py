"""Typed queries against the run store.

A query is a frozen dataclass — a plain value that travels unchanged
from any front-end (``blap query`` argument parsing, the ``blap
serve`` URL layer, library callers) into
:meth:`~repro.store.db.RunStore.query_events` and friends, so every
surface filters with exactly the same semantics.  Each query knows how
to render its own SQL ``WHERE`` clause; the store supplies the
``SELECT`` around it.

Filters compose conjunctively (AND); list-valued filters match any of
their values (IN).  Pagination is plain ``limit``/``offset`` over the
deterministic ``(time, seq)`` order, so pages are stable for a given
store.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: default page size for event queries (servers and CLIs share it)
DEFAULT_LIMIT = 1000


def _in_clause(column: str, values: Sequence[Any]) -> Tuple[str, List[Any]]:
    marks = ", ".join("?" for _ in values)
    return f"{column} IN ({marks})", list(values)


@dataclass(frozen=True)
class EventQuery:
    """Filters over the unified timeline (``events`` table)."""

    run_id: Optional[str] = None
    #: simulated-time range, inclusive start / exclusive end
    since: Optional[float] = None
    until: Optional[float] = None
    #: producing device / stream (tracer ``source`` column)
    sources: Sequence[str] = field(default_factory=tuple)
    categories: Sequence[str] = field(default_factory=tuple)
    #: ``"trace"`` or ``"span"``
    kind: Optional[str] = None
    #: span name filter (implies ``kind="span"``)
    span_type: Optional[str] = None
    scenario: Optional[str] = None
    seed: Optional[int] = None
    limit: int = DEFAULT_LIMIT
    offset: int = 0

    def where(self) -> Tuple[str, List[Any]]:
        clauses: List[str] = []
        params: List[Any] = []
        if self.run_id is not None:
            clauses.append("run_id = ?")
            params.append(self.run_id)
        if self.since is not None:
            clauses.append("time >= ?")
            params.append(float(self.since))
        if self.until is not None:
            clauses.append("time < ?")
            params.append(float(self.until))
        if self.sources:
            clause, values = _in_clause("source", self.sources)
            clauses.append(clause)
            params.extend(values)
        if self.categories:
            clause, values = _in_clause("category", self.categories)
            clauses.append(clause)
            params.extend(values)
        kind = self.kind
        if self.span_type is not None:
            kind = "span"
            clauses.append("message = ?")
            params.append(self.span_type)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if self.scenario is not None:
            clauses.append("scenario = ?")
            params.append(self.scenario)
        if self.seed is not None:
            clauses.append("seed = ?")
            params.append(int(self.seed))
        where = " AND ".join(clauses) if clauses else "1=1"
        return where, params


@dataclass(frozen=True)
class AlertQuery:
    """Filters over persisted detector alerts (``alerts`` table)."""

    run_id: Optional[str] = None
    since: Optional[float] = None
    until: Optional[float] = None
    detectors: Sequence[str] = field(default_factory=tuple)
    min_score: Optional[float] = None
    peer: Optional[str] = None
    scenario: Optional[str] = None
    seed: Optional[int] = None
    limit: int = DEFAULT_LIMIT
    offset: int = 0

    def where(self) -> Tuple[str, List[Any]]:
        clauses: List[str] = []
        params: List[Any] = []
        if self.run_id is not None:
            clauses.append("run_id = ?")
            params.append(self.run_id)
        if self.since is not None:
            clauses.append("time >= ?")
            params.append(float(self.since))
        if self.until is not None:
            clauses.append("time < ?")
            params.append(float(self.until))
        if self.detectors:
            clause, values = _in_clause("detector", self.detectors)
            clauses.append(clause)
            params.extend(values)
        if self.min_score is not None:
            clauses.append("score >= ?")
            params.append(float(self.min_score))
        if self.peer is not None:
            clauses.append("peer = ?")
            params.append(self.peer)
        if self.scenario is not None:
            clauses.append("scenario = ?")
            params.append(self.scenario)
        if self.seed is not None:
            clauses.append("seed = ?")
            params.append(int(self.seed))
        where = " AND ".join(clauses) if clauses else "1=1"
        return where, params


@dataclass(frozen=True)
class TelemetryQuery:
    """Filters over per-trial telemetry rows."""

    run_id: Optional[str] = None
    scenario: Optional[str] = None
    seed: Optional[int] = None
    success: Optional[bool] = None
    cached: Optional[bool] = None
    errors_only: bool = False
    limit: int = DEFAULT_LIMIT
    offset: int = 0

    def where(self) -> Tuple[str, List[Any]]:
        clauses: List[str] = []
        params: List[Any] = []
        if self.run_id is not None:
            clauses.append("run_id = ?")
            params.append(self.run_id)
        if self.scenario is not None:
            clauses.append("scenario = ?")
            params.append(self.scenario)
        if self.seed is not None:
            clauses.append("seed = ?")
            params.append(int(self.seed))
        if self.success is not None:
            clauses.append("success = ?")
            params.append(1 if self.success else 0)
        if self.cached is not None:
            clauses.append("cached = ?")
            params.append(1 if self.cached else 0)
        if self.errors_only:
            clauses.append("error IS NOT NULL")
        where = " AND ".join(clauses) if clauses else "1=1"
        return where, params


def query_from_params(cls, params: Dict[str, Any]):
    """Build a query dataclass from loosely-typed string parameters
    (URL query strings, CLI remainders).  Unknown keys raise — a typo
    in a filter name must not silently widen the result set."""
    known = {f.name: f for f in fields(cls)}
    unknown = set(params) - set(known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} filter(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    coerced: Dict[str, Any] = {}
    for key, value in params.items():
        if value is None:
            continue
        spec = known[key]
        annotation = str(spec.type)
        if key in ("sources", "categories", "detectors"):
            if isinstance(value, str):
                value = tuple(v for v in value.split(",") if v)
            coerced[key] = tuple(value)
        elif "int" in annotation:
            coerced[key] = int(value)
        elif "float" in annotation:
            coerced[key] = float(value)
        elif "bool" in annotation:
            if isinstance(value, str):
                coerced[key] = value.lower() in ("1", "true", "yes", "on")
            else:
                coerced[key] = bool(value)
        else:
            coerced[key] = value
    return cls(**coerced)
