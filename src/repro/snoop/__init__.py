"""HCI dump tooling: the attack surface of the link key extraction.

* :mod:`repro.snoop.btsnoop` — the RFC 1761 / btsnoop capture file
  format used by Android's 'Bluetooth HCI snoop log' and BlueZ's
  hcidump.
* :mod:`repro.snoop.hcidump` — a live recorder that taps an HCI
  transport and writes btsnoop records, plus the tabular renderer that
  reproduces the paper's Fig. 3 / Fig. 12 views.
* :mod:`repro.snoop.extractor` — the link key extractor: scans a
  btsnoop capture for ``HCI_Link_Key_Request_Reply`` commands and
  ``HCI_Link_Key_Notification`` events and pulls out the 128-bit keys.
* :mod:`repro.snoop.usb_extract` — the USB-sniff variant: a Python
  port of the authors' binary-to-hex converter and the ``0b 04 16``
  signature scan of Fig. 11.
"""

from repro.snoop.btsnoop import (
    BTSNOOP_MAGIC,
    BtsnoopReader,
    BtsnoopRecord,
    BtsnoopWriter,
    DATALINK_H4,
)
from repro.snoop.hcidump import DumpEntry, HciDump, render_dump_table
from repro.snoop.extractor import LinkKeyFinding, extract_link_keys
from repro.snoop.usb_extract import (
    bin2hex,
    extract_link_keys_from_usb,
    scan_hex_for_link_keys,
)
from repro.snoop.pcap import (
    AirPcapWriter,
    hci_dump_to_pcap,
    parse_pcap,
    read_air_pcap,
)

__all__ = [
    "BTSNOOP_MAGIC",
    "BtsnoopReader",
    "BtsnoopRecord",
    "BtsnoopWriter",
    "DATALINK_H4",
    "DumpEntry",
    "HciDump",
    "render_dump_table",
    "LinkKeyFinding",
    "extract_link_keys",
    "bin2hex",
    "extract_link_keys_from_usb",
    "scan_hex_for_link_keys",
    "AirPcapWriter",
    "hci_dump_to_pcap",
    "parse_pcap",
    "read_air_pcap",
]
