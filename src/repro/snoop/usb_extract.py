"""USB-sniff link key extraction (paper §VI-B1, Fig. 11).

The Windows/CSR systems provide no HCI dump, so the paper sniffs the
USB bus instead.  Their pipeline, reproduced here:

1. Capture raw USB transfer records (``UsbSniffer.raw_stream()``).
2. Convert the binary stream to an ASCII hex string — a Python port of
   the authors' *BinaryToHex* converter.
3. Search the hex text for ``0b 04 16``: little-endian opcode 0x040B
   (HCI_Link_Key_Request_Reply) followed by the constant parameter
   length 0x16.  The six bytes after the signature are the peer
   BD_ADDR (little-endian) and the next sixteen are the link key
   (little-endian; the paper reads it back in big-endian order).
"""

from __future__ import annotations

from typing import List, Union

from repro.core.types import BdAddr, LinkKey
from repro.snoop.extractor import LinkKeyFinding
from repro.transport.usb import UsbSniffer

_SIGNATURE = "0b0416"


def bin2hex(raw: bytes, group: int = 1, line_width: int = 16) -> str:
    """Binary stream → ASCII hex text (the authors' converter [27]).

    ``group`` bytes are joined without spaces; groups are separated by
    a space and lines wrap every ``line_width`` bytes, mimicking the
    classic hex-dump text the authors grepped through.
    """
    if group < 1 or line_width < group:
        raise ValueError("invalid grouping")
    pieces: List[str] = []
    line: List[str] = []
    for offset in range(0, len(raw), group):
        line.append(raw[offset : offset + group].hex())
        if (offset + group) % line_width == 0:
            pieces.append(" ".join(line))
            line = []
    if line:
        pieces.append(" ".join(line))
    return "\n".join(pieces)


def scan_hex_for_link_keys(hex_text: str) -> List[LinkKeyFinding]:
    """Search hex text for the ``0b 04 16`` signature and decode hits."""
    compact = "".join(hex_text.split()).lower()
    findings: List[LinkKeyFinding] = []
    start = 0
    while True:
        index = compact.find(_SIGNATURE, start)
        if index == -1:
            break
        start = index + 2
        # Signatures must be byte-aligned in the hex text.
        if index % 2 != 0:
            continue
        body = compact[index + len(_SIGNATURE) :]
        if len(body) < (6 + 16) * 2:
            continue
        addr_hex = body[:12]
        key_hex = body[12 : 12 + 32]
        findings.append(
            LinkKeyFinding(
                frame=len(findings) + 1,
                timestamp=0.0,
                source="USB_sniff(0b 04 16)",
                peer=BdAddr.from_hci_bytes(bytes.fromhex(addr_hex)),
                link_key=LinkKey.from_hci_bytes(bytes.fromhex(key_hex)),
            )
        )
    return findings


def extract_link_keys_from_usb(
    capture: Union[UsbSniffer, bytes]
) -> List[LinkKeyFinding]:
    """Full pipeline: raw USB stream → hex text → signature scan."""
    raw = capture.raw_stream() if isinstance(capture, UsbSniffer) else bytes(capture)
    return scan_hex_for_link_keys(bin2hex(raw))
