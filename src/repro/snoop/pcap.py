"""pcap export: HCI dumps and air captures in Wireshark-readable form.

Two writers:

* :func:`hci_dump_to_pcap` — converts a btsnoop/HciDump capture into a
  classic pcap file with link type ``LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR``
  (201): each record is a 4-byte big-endian direction word followed by
  the H4 packet, which is exactly what Wireshark's BT dissector eats.
* :class:`AirPcapWriter` — serializes sniffed baseband frames (via
  :mod:`repro.controller.lmp_wire`) under a user-defined link type, so
  air transcripts survive as files instead of Python lists.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple

from repro.core.errors import StorageError
from repro.controller.lmp_wire import parse_lmp, serialize_lmp
from repro.snoop.hcidump import HciDump
from repro.snoop.btsnoop import BtsnoopReader, EPOCH_DELTA_US
from repro.transport.base import Direction

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.attacks.eavesdrop import AirCapture

_PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR = 201
LINKTYPE_USER0 = 147  # our air-frame container

_DIRECTION_SENT = 0
_DIRECTION_RECEIVED = 1


def _pcap_header(linktype: int) -> bytes:
    return struct.pack("<IHHiIII", _PCAP_MAGIC, 2, 4, 0, 0, 65535, linktype)


def _pcap_record(timestamp: float, payload: bytes) -> bytes:
    seconds = int(timestamp)
    micros = int((timestamp - seconds) * 1_000_000)
    return struct.pack("<IIII", seconds, micros, len(payload), len(payload)) + payload


def hci_dump_to_pcap(capture) -> bytes:
    """btsnoop bytes or an HciDump → pcap (linktype 201)."""
    if isinstance(capture, HciDump):
        records = capture.writer.records
    elif isinstance(capture, (bytes, bytearray)):
        records = BtsnoopReader(bytes(capture)).records()
    else:
        raise StorageError("expected btsnoop bytes or an HciDump")
    out = [_pcap_header(LINKTYPE_BLUETOOTH_HCI_H4_WITH_PHDR)]
    for record in records:
        direction = (
            _DIRECTION_RECEIVED
            if record.direction is Direction.CONTROLLER_TO_HOST
            else _DIRECTION_SENT
        )
        payload = direction.to_bytes(4, "big") + record.data
        # btsnoop counts microseconds since 0 AD; pcap wants Unix time.
        unix_us = max(0, record.timestamp_us - EPOCH_DELTA_US)
        out.append(_pcap_record(unix_us / 1_000_000, payload))
    return b"".join(out)


def parse_pcap(raw: bytes) -> Tuple[int, List[Tuple[float, bytes]]]:
    """Parse a pcap file → (linktype, [(timestamp, payload), ...])."""
    if len(raw) < 24:
        raise StorageError("not a pcap file (too short)")
    magic, _, _, _, _, _, linktype = struct.unpack("<IHHiIII", raw[:24])
    if magic != _PCAP_MAGIC:
        raise StorageError("not a pcap file (bad magic)")
    offset = 24
    packets: List[Tuple[float, bytes]] = []
    while offset < len(raw):
        if offset + 16 > len(raw):
            raise StorageError("truncated pcap record header")
        seconds, micros, incl, _orig = struct.unpack(
            "<IIII", raw[offset : offset + 16]
        )
        offset += 16
        payload = raw[offset : offset + incl]
        if len(payload) != incl:
            raise StorageError("truncated pcap record payload")
        offset += incl
        packets.append((seconds + micros / 1_000_000, payload))
    return linktype, packets


@dataclass
class AirPcapWriter:
    """Persist an :class:`AirCapture` as a pcap of LMP wire bytes.

    Record layout under LINKTYPE_USER0: ``link_id(2, BE) |
    sender_len(1) | sender | lmp_wire_bytes``.
    """

    frames: List[bytes] = field(default_factory=list)
    timestamps: List[float] = field(default_factory=list)

    def add_capture(self, capture: "AirCapture") -> "AirPcapWriter":
        for captured in capture.frames:
            payload = captured.frame.payload
            try:
                wire = serialize_lmp(payload)
            except Exception:
                continue  # frame kind without a wire form
            sender = captured.sender.encode("utf-8")[:255]
            record = (
                captured.link_id.to_bytes(2, "big")
                + bytes([len(sender)])
                + sender
                + wire
            )
            self.frames.append(record)
            self.timestamps.append(captured.time)
        return self

    def to_bytes(self) -> bytes:
        out = [_pcap_header(LINKTYPE_USER0)]
        for timestamp, frame in zip(self.timestamps, self.frames):
            out.append(_pcap_record(timestamp, frame))
        return b"".join(out)


def read_air_pcap(raw: bytes) -> List[Tuple[float, int, str, object]]:
    """Parse an AirPcapWriter file → [(time, link_id, sender, pdu)]."""
    linktype, packets = parse_pcap(raw)
    if linktype != LINKTYPE_USER0:
        raise StorageError(f"unexpected linktype {linktype} for an air pcap")
    frames = []
    for timestamp, payload in packets:
        link_id = int.from_bytes(payload[0:2], "big")
        sender_len = payload[2]
        sender = payload[3 : 3 + sender_len].decode("utf-8")
        pdu = parse_lmp(payload[3 + sender_len :])
        frames.append((timestamp, link_id, sender, pdu))
    return frames
