"""btsnoop capture file format (RFC 1761 snoop, Bluetooth profile).

This is the exact on-disk format of Android's 'Bluetooth HCI snoop
log' (``btsnoop_hci.log``) and BlueZ hcidump captures — the file the
paper's attacker pulls from the victim's paired accessory via an
Android bug report.

File layout:

* 8-byte magic ``b"btsnoop\\0"``
* 4-byte version (1)
* 4-byte datalink type (1002 = HCI UART H4)
* then records: original length (4), included length (4), packet flags
  (4), cumulative drops (4), timestamp in microseconds since 0 AD
  (8, signed), packet data.

Packet flags bit 0 is the direction (0 = host→controller) and bit 1 is
set for command/event (vs data) packets.  All header fields are
big-endian per RFC 1761.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List

from repro.core.errors import StorageError
from repro.hci.constants import PacketIndicator
from repro.transport.base import Direction

BTSNOOP_MAGIC = b"btsnoop\x00"
BTSNOOP_VERSION = 1
DATALINK_H4 = 1002

# Microseconds between 0 AD and the Unix epoch — btsnoop's odd epoch.
EPOCH_DELTA_US = 0x00DCDDB30F2F8000
_EPOCH_DELTA_US = EPOCH_DELTA_US


@dataclass(frozen=True)
class BtsnoopRecord:
    """One captured packet, H4 indicator byte included."""

    timestamp_us: int
    flags: int
    data: bytes
    drops: int = 0

    @property
    def direction(self) -> Direction:
        if self.flags & 0x01:
            return Direction.CONTROLLER_TO_HOST
        return Direction.HOST_TO_CONTROLLER

    @property
    def is_command_or_event(self) -> bool:
        return bool(self.flags & 0x02)

    @property
    def indicator(self) -> int:
        return self.data[0]

    @property
    def payload(self) -> bytes:
        return self.data[1:]


def flags_for(direction: Direction, indicator: int) -> int:
    """Compute the record flag word for a packet."""
    flags = 0
    if direction is Direction.CONTROLLER_TO_HOST:
        flags |= 0x01
    if indicator in (PacketIndicator.COMMAND, PacketIndicator.EVENT):
        flags |= 0x02
    return flags


class BtsnoopWriter:
    """Accumulates records and serializes the capture file."""

    def __init__(self, datalink: int = DATALINK_H4) -> None:
        self.datalink = datalink
        self.records: List[BtsnoopRecord] = []

    def append(
        self, timestamp_s: float, direction: Direction, h4_bytes: bytes
    ) -> None:
        """Record one packet (timestamp in simulated seconds)."""
        if not h4_bytes:
            raise StorageError("cannot record empty packet")
        timestamp_us = int(timestamp_s * 1_000_000) + _EPOCH_DELTA_US
        self.records.append(
            BtsnoopRecord(
                timestamp_us=timestamp_us,
                flags=flags_for(direction, h4_bytes[0]),
                data=h4_bytes,
            )
        )

    def to_bytes(self) -> bytes:
        """Serialize the full btsnoop file."""
        header = BTSNOOP_MAGIC + struct.pack(
            ">II", BTSNOOP_VERSION, self.datalink
        )
        chunks = [header]
        for record in self.records:
            chunks.append(
                struct.pack(
                    ">IIIIq",
                    len(record.data),
                    len(record.data),
                    record.flags,
                    record.drops,
                    record.timestamp_us,
                )
            )
            chunks.append(record.data)
        return b"".join(chunks)


class BtsnoopReader:
    """Parses a btsnoop capture file."""

    def __init__(self, raw: bytes) -> None:
        if len(raw) < 16 or raw[:8] != BTSNOOP_MAGIC:
            raise StorageError("not a btsnoop file (bad magic)")
        version, datalink = struct.unpack(">II", raw[8:16])
        if version != BTSNOOP_VERSION:
            raise StorageError(f"unsupported btsnoop version {version}")
        self.datalink = datalink
        self._raw = raw

    def __iter__(self) -> Iterator[BtsnoopRecord]:
        offset = 16
        raw = self._raw
        while offset < len(raw):
            if offset + 24 > len(raw):
                raise StorageError(f"truncated record header at offset {offset}")
            orig_len, incl_len, flags, drops, timestamp_us = struct.unpack(
                ">IIIIq", raw[offset : offset + 24]
            )
            offset += 24
            data = raw[offset : offset + incl_len]
            if len(data) != incl_len:
                raise StorageError(f"truncated record data at offset {offset}")
            offset += incl_len
            yield BtsnoopRecord(
                timestamp_us=timestamp_us, flags=flags, data=data, drops=drops
            )

    def records(self) -> List[BtsnoopRecord]:
        return list(self)
