"""The link key extractor — the paper's core forensic tool (§IV-A).

Given a btsnoop capture (the HCI dump pulled from the victim's paired
accessory), scan for the two packet kinds that carry 128-bit link keys
in plaintext:

* ``HCI_Link_Key_Request_Reply`` commands (host → controller, sent on
  every re-authentication of a bonded peer), and
* ``HCI_Link_Key_Notification`` events (controller → host, sent once
  when a pairing completes).

Each hit yields a :class:`LinkKeyFinding` identifying the peer
BD_ADDR, the key and where in the capture it appeared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.types import BdAddr, LinkKey
from repro.hci.commands import LinkKeyRequestReply, WriteStoredLinkKey
from repro.hci.events import LinkKeyNotification, ReturnLinkKeys
from repro.snoop.hcidump import DumpEntry, HciDump, entries_from_btsnoop


@dataclass(frozen=True)
class LinkKeyFinding:
    """One plaintext link key recovered from an HCI capture."""

    frame: int
    timestamp: float
    source: str  # "Link_Key_Request_Reply" or "Link_Key_Notification"
    peer: BdAddr
    link_key: LinkKey

    def __str__(self) -> str:
        return (
            f"frame {self.frame}: {self.source} peer={self.peer} "
            f"key={self.link_key.hex()}"
        )


def _scan(entries: Sequence[DumpEntry]) -> List[LinkKeyFinding]:
    findings = []
    for entry in entries:
        packet = entry.packet
        if isinstance(packet, LinkKeyRequestReply):
            findings.append(
                LinkKeyFinding(
                    frame=entry.frame,
                    timestamp=entry.timestamp,
                    source="Link_Key_Request_Reply",
                    peer=packet.bd_addr,
                    link_key=packet.link_key,
                )
            )
        elif isinstance(packet, LinkKeyNotification):
            findings.append(
                LinkKeyFinding(
                    frame=entry.frame,
                    timestamp=entry.timestamp,
                    source="Link_Key_Notification",
                    peer=packet.bd_addr,
                    link_key=packet.link_key,
                )
            )
        elif isinstance(packet, WriteStoredLinkKey):
            findings.append(
                LinkKeyFinding(
                    frame=entry.frame,
                    timestamp=entry.timestamp,
                    source="Write_Stored_Link_Key",
                    peer=packet.bd_addr,
                    link_key=packet.link_key,
                )
            )
        elif isinstance(packet, ReturnLinkKeys):
            findings.append(
                LinkKeyFinding(
                    frame=entry.frame,
                    timestamp=entry.timestamp,
                    source="Return_Link_Keys",
                    peer=packet.bd_addr,
                    link_key=packet.link_key,
                )
            )
    return findings


def extract_link_keys(capture) -> List[LinkKeyFinding]:
    """Extract link keys from a capture.

    ``capture`` may be raw btsnoop bytes, an :class:`HciDump`, or a
    sequence of :class:`DumpEntry`.
    """
    if isinstance(capture, (bytes, bytearray)):
        entries = entries_from_btsnoop(bytes(capture))
    elif isinstance(capture, HciDump):
        entries = capture.entries()
    else:
        entries = list(capture)
    return _scan(entries)


def latest_key_for(
    capture, peer: BdAddr
) -> Optional[LinkKeyFinding]:
    """The most recent key observed for a specific peer, if any."""
    candidates = [f for f in extract_link_keys(capture) if f.peer == peer]
    return candidates[-1] if candidates else None


def keys_by_peer(capture) -> Dict[BdAddr, LinkKey]:
    """Map each peer address to the most recently seen key."""
    result: Dict[BdAddr, LinkKey] = {}
    for finding in extract_link_keys(capture):
        result[finding.peer] = finding.link_key
    return result
