"""Live HCI dump recorder and the Fig. 3 / Fig. 12 table renderer.

:class:`HciDump` taps an HCI transport (any transport — UART in a
phone, USB on a PC) and records every packet with timestamp and
direction.  It can serialize to a genuine btsnoop file, which is what
lands in ``/data/misc/bluetooth/logs/btsnoop_hci.log`` on the simulated
Android devices.

:func:`render_dump_table` reproduces the frame table the paper shows
in Fig. 12 — columns ``Fra | Type | Opcode Command | Event | Handle |
Status`` — and is what the page blocking benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hci.constants import ErrorCode, EventCode, opcode_name
from repro.hci.packets import HciAclData, HciCommand, HciEvent, HciPacket
from repro.hci.parser import parse_packet
from repro.snoop.btsnoop import BtsnoopReader, BtsnoopWriter
from repro.transport.base import Direction, HciTransport


@dataclass
class DumpEntry:
    """One parsed dump line."""

    frame: int
    timestamp: float
    direction: Direction
    packet: HciPacket

    @property
    def packet_type(self) -> str:
        if isinstance(self.packet, HciCommand):
            return "Command"
        if isinstance(self.packet, HciEvent):
            return "Event"
        return "ACL"


class HciDump:
    """A protocol tracker recording all HCI data, RFC 1761 style."""

    def __init__(self, name: str = "hcidump") -> None:
        self.name = name
        self.writer = BtsnoopWriter()
        self.enabled = True
        self._transport: Optional[HciTransport] = None

    # -- capture ----------------------------------------------------------

    def attach(self, transport: HciTransport) -> "HciDump":
        """Start capturing from a transport."""
        self._transport = transport
        transport.add_tap(self._tap)
        return self

    def detach(self) -> None:
        if self._transport is not None:
            self._transport.remove_tap(self._tap)
            self._transport = None

    def _tap(self, timestamp: float, direction: Direction, raw: bytes) -> None:
        if self.enabled:
            self.writer.append(timestamp, direction, raw)

    # -- output -----------------------------------------------------------

    def to_btsnoop_bytes(self) -> bytes:
        """The capture as an on-disk btsnoop file."""
        return self.writer.to_bytes()

    def entries(self) -> List[DumpEntry]:
        """Parse recorded packets into typed dump entries."""
        entries = []
        for frame, record in enumerate(self.writer.records, start=1):
            packet = parse_packet(record.indicator, record.payload)
            entries.append(
                DumpEntry(
                    frame=frame,
                    timestamp=record.timestamp_us / 1_000_000,
                    direction=record.direction,
                    packet=packet,
                )
            )
        return entries

    def __len__(self) -> int:
        return len(self.writer.records)


def entries_from_btsnoop(raw: bytes) -> List[DumpEntry]:
    """Parse an on-disk btsnoop file into dump entries."""
    entries = []
    for frame, record in enumerate(BtsnoopReader(raw), start=1):
        packet = parse_packet(record.indicator, record.payload)
        entries.append(
            DumpEntry(
                frame=frame,
                timestamp=record.timestamp_us / 1_000_000,
                direction=record.direction,
                packet=packet,
            )
        )
    return entries


def _status_text(packet: HciPacket) -> str:
    status: Optional[int] = None
    if isinstance(packet, HciEvent):
        if hasattr(packet, "status"):
            status = getattr(packet, "status")
    if status is None:
        return ""
    try:
        return "Success" if status == 0 else ErrorCode(status).describe()
    except ValueError:
        return f"Error {status:#04x}"


def _handle_text(packet: HciPacket) -> str:
    handle = getattr(packet, "connection_handle", None)
    if handle is None and isinstance(packet, HciAclData):
        handle = packet.handle
    return f"0x{handle:04x}" if handle is not None else ""


def render_dump_table(
    entries: Sequence[DumpEntry],
    include_acl: bool = False,
    max_rows: Optional[int] = None,
) -> str:
    """Render entries as the paper's Fig. 12 frame table."""
    header = (
        f"{'Fra':>4} {'Type':<8} {'Opcode Command':<44} "
        f"{'Event':<36} {'Handle':<8} {'Status'}"
    )
    lines = [header, "-" * len(header)]
    shown = 0
    for entry in entries:
        packet = entry.packet
        if isinstance(packet, HciAclData) and not include_acl:
            continue
        command_col = ""
        event_col = ""
        if isinstance(packet, HciCommand):
            command_col = packet.display_name
        elif isinstance(packet, HciEvent):
            if packet.event_code in (
                EventCode.COMMAND_STATUS,
                EventCode.COMMAND_COMPLETE,
            ):
                command_col = opcode_name(getattr(packet, "command_opcode"))
            event_col = packet.display_name
        else:
            command_col = packet.display_name
        lines.append(
            f"{entry.frame:>4} {entry.packet_type:<8} {command_col:<44} "
            f"{event_col:<36} {_handle_text(packet):<8} {_status_text(packet)}"
        )
        shown += 1
        if max_rows is not None and shown >= max_rows:
            break
    return "\n".join(lines)
