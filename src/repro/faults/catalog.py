"""The injection-point catalogue: every place a fault can land.

Each :class:`InjectionPoint` names one failure mode a layer of the
stack has agreed to model — the radio medium, the HCI transports, the
controller firmware and the host stack.  A
:class:`~repro.faults.spec.FaultSpec` is only valid if it references a
catalogued point with one of that point's supported scheduling modes
and documented parameters, so plans fail loudly at construction time
instead of silently doing nothing mid-campaign.

Scopes:

* ``medium`` — the fault lives on the shared radio channel and needs
  no device target (``phy.*``);
* ``device`` — the fault attaches to one device's transport,
  controller or host; ``FaultSpec.target`` selects a role (``"M"``,
  ``"C"``, ``"A"``) or, when ``None``, every device in the world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

#: scheduling modes a spec may use (see repro.faults.spec)
MODE_ONESHOT = "oneshot"
MODE_WINDOW = "window"
MODE_PROBABILISTIC = "probabilistic"

ALL_MODES = (MODE_ONESHOT, MODE_WINDOW, MODE_PROBABILISTIC)


@dataclass(frozen=True)
class InjectionPoint:
    """One named fault hook a layer exposes."""

    name: str  # e.g. "phy.frame_loss"
    layer: str  # phy | transport | controller | host
    scope: str  # "medium" | "device"
    modes: Tuple[str, ...]
    description: str
    params: Mapping[str, str] = field(default_factory=dict)


_POINTS = (
    InjectionPoint(
        name="phy.frame_loss",
        layer="phy",
        scope="medium",
        modes=(MODE_PROBABILISTIC, MODE_WINDOW),
        description=(
            "Drop baseband frames on the air. Lost frames still reach "
            "passive sniffers (they were transmitted) but never the "
            "intended receiver."
        ),
    ),
    InjectionPoint(
        name="phy.bit_flip",
        layer="phy",
        scope="medium",
        modes=(MODE_PROBABILISTIC, MODE_WINDOW),
        description=(
            "Corrupt a frame's payload in flight. Byte payloads (ACL "
            "user data) get real bit flips; structured LMP PDUs are "
            "dropped as a baseband CRC failure instead."
        ),
        params={"flips": "number of bit flips per corrupted frame (default 1)"},
    ),
    InjectionPoint(
        name="phy.latency_jitter",
        layer="phy",
        scope="medium",
        modes=(MODE_PROBABILISTIC, MODE_WINDOW),
        description=(
            "Add uniform extra propagation delay to affected frames — "
            "the knob that perturbs the page-response timing races."
        ),
        params={"jitter_s": "max extra one-way delay in seconds (default 0.001)"},
    ),
    InjectionPoint(
        name="phy.blackout",
        layer="phy",
        scope="medium",
        modes=(MODE_WINDOW,),
        description=(
            "Whole-channel blackout: every frame sent inside the window "
            "is lost (channel saturation / jamming)."
        ),
    ),
    InjectionPoint(
        name="transport.stall",
        layer="transport",
        scope="device",
        modes=(MODE_WINDOW,),
        description=(
            "UART/USB bus stall: packets sent inside the window are "
            "parked and delivered in order when the window closes; an "
            "open-ended stall (no end_s) drops them — the bus is dead."
        ),
        params={"direction": 'affected direction: "h2c", "c2h" or "both" (default)'},
    ),
    InjectionPoint(
        name="transport.truncate",
        layer="transport",
        scope="device",
        modes=(MODE_PROBABILISTIC, MODE_WINDOW),
        description=(
            "Deliver only the first keep_bytes of the wire packet — a "
            "transfer cut off mid-header. The receiver must drop the "
            "malformed remainder instead of wedging."
        ),
        params={
            "keep_bytes": "bytes of the packet that survive (default 2)",
            "direction": 'affected direction: "h2c", "c2h" or "both" (default)',
        },
    ),
    InjectionPoint(
        name="transport.garble",
        layer="transport",
        scope="device",
        modes=(MODE_PROBABILISTIC, MODE_WINDOW),
        description=(
            "Flip random bits in the delivered wire packet (line noise); "
            "parse failures at the receiving end are dropped, not fatal."
        ),
        params={
            "flips": "number of bit flips per garbled packet (default 8)",
            "direction": 'affected direction: "h2c", "c2h" or "both" (default)',
        },
    ),
    InjectionPoint(
        name="controller.hard_reset",
        layer="controller",
        scope="device",
        modes=(MODE_ONESHOT,),
        description=(
            "Firmware crash at at_s: every ACL link is torn down "
            "mid-procedure (the host sees disconnections), pending LMP "
            "state and the controller-side key cache are wiped."
        ),
    ),
    InjectionPoint(
        name="controller.lmp_hang",
        layer="controller",
        scope="device",
        modes=(MODE_WINDOW,),
        description=(
            "The LMP engine stops responding: incoming LMP PDUs are "
            "ignored for the window, so the peer's LMP response timeout "
            "fires (ACL data still flows — only link management hangs)."
        ),
    ),
    InjectionPoint(
        name="host.bond_corrupt",
        layer="host",
        scope="device",
        modes=(MODE_ONESHOT,),
        description=(
            "Bond-storage corruption at at_s: every persisted link key "
            "is overwritten with garbage and the live key database "
            "reloads from the damaged store."
        ),
    ),
    InjectionPoint(
        name="host.bond_loss",
        layer="host",
        scope="device",
        modes=(MODE_ONESHOT,),
        description=(
            "Bond-storage loss at at_s: the bonding store is emptied "
            "and the live key database reloads — all pairings forgotten."
        ),
    ),
    InjectionPoint(
        name="host.stack_restart",
        layer="host",
        scope="device",
        modes=(MODE_ONESHOT,),
        description=(
            "Host stack restart at at_s: queued/held HCI events and "
            "volatile state are dropped, bonds reload from persistent "
            "storage (Bluetooth off/on)."
        ),
    ),
)

INJECTION_POINTS: Dict[str, InjectionPoint] = {point.name: point for point in _POINTS}


def get_point(name: str) -> InjectionPoint:
    """Look a point up by name; raises with the known list on a miss."""
    try:
        return INJECTION_POINTS[name]
    except KeyError:
        raise KeyError(
            f"unknown injection point {name!r}; known: {sorted(INJECTION_POINTS)}"
        ) from None


def point_names() -> Tuple[str, ...]:
    return tuple(sorted(INJECTION_POINTS))
