"""Declarative fault plans: JSON-serialisable, validated, hashable.

A :class:`FaultSpec` pins one fault to one catalogued injection point
with one of three scheduling modes:

* ``oneshot`` — fires exactly once at ``at_s``;
* ``window`` — active for ``[start_s, end_s)`` (``end_s=None`` keeps
  it open forever);
* ``probabilistic`` — each opportunity inside ``[start_s, end_s)``
  fires with ``probability`` (the default window is the whole run).

A :class:`FaultPlan` is an ordered tuple of specs plus a name.  Plans
round-trip losslessly through JSON — they travel inside campaign
specs, across worker processes and into the disk-cache content hash —
and :meth:`FaultPlan.canonical_json` is the byte-stable form the cache
keys on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.faults.catalog import (
    MODE_ONESHOT,
    MODE_PROBABILISTIC,
    MODE_WINDOW,
    get_point,
)


class FaultPlanError(ValueError):
    """An invalid spec or plan (unknown point, bad mode, bad params)."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault, validated against the catalogue."""

    point: str
    mode: str = MODE_PROBABILISTIC
    at_s: Optional[float] = None
    start_s: float = 0.0
    end_s: Optional[float] = None
    probability: float = 1.0
    target: Optional[str] = None  # device role; None = all / medium-wide
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        try:
            point = get_point(self.point)
        except KeyError as exc:
            raise FaultPlanError(str(exc)) from None
        if self.mode not in point.modes:
            raise FaultPlanError(
                f"{self.point}: mode {self.mode!r} unsupported; "
                f"allowed: {list(point.modes)}"
            )
        if self.mode == MODE_ONESHOT:
            if self.at_s is None:
                raise FaultPlanError(f"{self.point}: oneshot mode requires at_s")
            if self.at_s < 0:
                raise FaultPlanError(f"{self.point}: at_s must be >= 0")
        elif self.at_s is not None:
            raise FaultPlanError(
                f"{self.point}: at_s only applies to oneshot mode"
            )
        if self.start_s < 0:
            raise FaultPlanError(f"{self.point}: start_s must be >= 0")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise FaultPlanError(
                f"{self.point}: end_s ({self.end_s}) must exceed "
                f"start_s ({self.start_s})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"{self.point}: probability {self.probability} outside [0, 1]"
            )
        unknown = set(self.params) - set(point.params)
        if unknown:
            raise FaultPlanError(
                f"{self.point}: unknown params {sorted(unknown)}; "
                f"known: {sorted(point.params)}"
            )

    # ------------------------------------------------------------ scheduling

    def active(self, now: float) -> bool:
        """Is the window/probabilistic spec live at ``now``?"""
        if self.mode == MODE_ONESHOT:
            return False  # oneshots are scheduled, not polled
        if now < self.start_s:
            return False
        return self.end_s is None or now < self.end_s

    def fires(self, now: float, rng) -> bool:
        """Does this opportunity at ``now`` trigger the fault?

        Window-mode specs fire on every opportunity inside the window;
        probabilistic specs draw from the dedicated fault stream.  No
        draw happens outside the active window or when the probability
        is pinned to 1 — stream alignment stays independent of how
        long the spec was dormant.
        """
        if not self.active(now):
            return False
        if self.mode == MODE_WINDOW or self.probability >= 1.0:
            return True
        return rng.random() < self.probability

    # ------------------------------------------------------------------ JSON

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "mode": self.mode,
            "at_s": self.at_s,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "probability": self.probability,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise FaultPlanError(f"fault spec must be an object, got {data!r}")
        if "point" not in data:
            raise FaultPlanError(f"fault spec missing 'point': {dict(data)!r}")
        known = {
            "point", "mode", "at_s", "start_s", "end_s",
            "probability", "target", "params",
        }
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"fault spec has unknown fields {sorted(unknown)}"
            )
        return cls(
            point=data["point"],
            mode=data.get("mode", MODE_PROBABILISTIC),
            at_s=data.get("at_s"),
            start_s=data.get("start_s", 0.0),
            end_s=data.get("end_s"),
            probability=data.get("probability", 1.0),
            target=data.get("target"),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, named collection of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()
    name: str = ""

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------ JSON

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "faults": [spec.to_jsonable() for spec in self.specs],
        }

    def canonical_json(self) -> str:
        """Byte-stable serialisation for content hashing."""
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_jsonable(cls, data: Any) -> "FaultPlan":
        if isinstance(data, Mapping):
            name = data.get("name", "")
            raw_specs = data.get("faults")
            if raw_specs is None:
                raise FaultPlanError(
                    "fault plan object needs a 'faults' list"
                )
        elif isinstance(data, Sequence) and not isinstance(data, (str, bytes)):
            name = ""
            raw_specs = data
        else:
            raise FaultPlanError(
                f"fault plan must be a list of specs or an object with "
                f"'faults', got {type(data).__name__}"
            )
        specs = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_jsonable(spec)
            for spec in raw_specs
        )
        return cls(specs=specs, name=str(name))

    @classmethod
    def coerce(
        cls, value: Union["FaultPlan", Sequence, Mapping, None]
    ) -> Optional["FaultPlan"]:
        """Normalise any accepted plan spelling; ``None``/empty -> ``None``."""
        if value is None:
            return None
        if isinstance(value, FaultPlan):
            return value if value.specs else None
        plan = cls.from_jsonable(value)
        return plan if plan.specs else None

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` format)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise FaultPlanError(f"{path}: invalid JSON: {exc}") from None
        plan = cls.from_jsonable(data)
        if not plan.name:
            plan = cls(specs=plan.specs, name=str(path))
        return plan
