"""Deterministic fault injection (``repro.faults``).

Declarative :class:`FaultPlan`\\ s target catalogued injection points
across the phy, transport, controller and host layers; an
:class:`InjectorRegistry` wires them into a live world with per-spec
seeded RNG streams, so every (seed, plan) pair replays identically.

Typical entrypoints::

    world = build_world(WorldConfig(seed=7, fault_plan=plan))
    # or, on an already-built world:
    apply_fault_plan(world, [{"point": "phy.frame_loss",
                              "probability": 0.1}])

See :mod:`repro.faults.catalog` for the injection-point catalogue and
``docs/faults.md`` for the schema and worked examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.catalog import (
    INJECTION_POINTS,
    InjectionPoint,
    get_point,
    point_names,
)
from repro.faults.registry import TRACE_SOURCE, InjectorRegistry
from repro.faults.spec import FaultPlan, FaultPlanError, FaultSpec

if TYPE_CHECKING:
    from repro.attacks.scenario import World
    from repro.phy.medium import RadioMedium

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectionPoint",
    "InjectorRegistry",
    "INJECTION_POINTS",
    "TRACE_SOURCE",
    "apply_fault_plan",
    "get_point",
    "point_names",
    "set_medium_loss_rate",
]


def apply_fault_plan(world: "World", plan) -> "InjectorRegistry":
    """Wire ``plan`` into ``world`` (idempotent registry creation).

    Accepts a :class:`FaultPlan`, a list of spec dicts/objects or a
    ``{"name": ..., "faults": [...]}`` mapping.  Creates the world's
    :class:`InjectorRegistry` on first use, attaches it to the medium
    and to every present and future device, then extends it with the
    plan's specs.  Returns the registry.
    """
    coerced = FaultPlan.coerce(plan)
    if world.faults is None:
        registry = InjectorRegistry(
            world.simulator,
            world.rng,
            world.tracer,
            metrics=world.obs.metrics,
            spans=world.obs.spans,
        )
        registry.attach_medium(world.medium)
        for role, device in world.devices.items():
            registry.on_device_added(role, device)
        world.faults = registry
    if coerced is not None:
        world.faults.extend(coerced)
    return world.faults


def set_medium_loss_rate(medium: "RadioMedium", probability: float) -> None:
    """Back-compat shim behind the deprecated ``RadioMedium.loss_rate``.

    Builds the equivalent probabilistic ``phy.frame_loss``
    :class:`FaultSpec` on a medium-private registry.  The shim draws
    from its own RNG stream prefix so it never perturbs a real fault
    plan attached to the same world.
    """
    if medium._loss_shim is not None:
        medium._loss_shim.detach_medium(medium)
        medium._loss_shim = None
    if probability > 0.0:
        registry = InjectorRegistry(
            medium.simulator,
            medium._rng_registry,
            medium.tracer,
            stream_prefix="faults-shim",
        )
        registry.extend(
            FaultPlan(
                specs=(
                    FaultSpec("phy.frame_loss", probability=probability),
                ),
                name="loss-rate-shim",
            )
        )
        registry.attach_medium(medium)
        medium._loss_shim = registry
