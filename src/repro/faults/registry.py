"""The injector registry: wires fault specs into a live world.

One :class:`InjectorRegistry` per world.  At attach time each spec
gets its own child RNG stream (``faults:<index>:<point>``) derived
from the world's seeded :class:`~repro.sim.rng.RngRegistry`, so

* the same (seed, plan) pair replays the identical fault sequence —
  including after a campaign retry rebuilds the world from scratch;
* adding a spec never perturbs the draws of any other stream.

Every injected fault is emitted on the shared tracer (source
``"faults"``, category ``"fault"``) and counted in the metrics
registry, so ``blap timeline`` interleaves faults with attack traffic
and campaign snapshots stay comparable.  Window faults additionally
open a span for the timeline's duration view.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.controller import lmp
from repro.faults.catalog import get_point
from repro.faults.spec import FaultPlan, FaultSpec
from repro.phy.medium import FrameFate
from repro.transport.base import Direction, TransportFate

if TYPE_CHECKING:
    from repro.devices.device import Device
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanTracker
    from repro.phy.medium import AirFrame, PhysicalLink, RadioMedium, RadioPeer
    from repro.sim.eventloop import Simulator
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import Tracer

#: trace source name for fault events in merged timelines
TRACE_SOURCE = "faults"

_DIRECTIONS = {
    "h2c": (Direction.HOST_TO_CONTROLLER,),
    "c2h": (Direction.CONTROLLER_TO_HOST,),
    "both": (Direction.HOST_TO_CONTROLLER, Direction.CONTROLLER_TO_HOST),
}

_DELIVER = FrameFate()
_PASS = TransportFate()


def _flip_bits(data: bytes, flips: int, rng) -> bytes:
    """Flip ``flips`` random bits of ``data`` (empty data unchanged)."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(max(1, flips)):
        position = rng.randrange(len(out) * 8)
        out[position // 8] ^= 1 << (position % 8)
    return bytes(out)


class _TransportInjector:
    """Per-device transport fault hook (``HciTransport.fault_injector``)."""

    def __init__(self, registry: "InjectorRegistry", role: str) -> None:
        self.registry = registry
        self.role = role
        self.indices: List[int] = []

    def __call__(
        self, now: float, name: str, direction: Direction, raw: bytes
    ) -> TransportFate:
        return self.registry._on_transport_packet(
            self, now, name, direction, raw
        )


class InjectorRegistry:
    """Wires a :class:`FaultPlan` into medium, transports and devices."""

    def __init__(
        self,
        simulator: "Simulator",
        rng: "RngRegistry",
        tracer: "Tracer",
        metrics: Optional["MetricsRegistry"] = None,
        spans: Optional["SpanTracker"] = None,
        stream_prefix: str = "faults",
    ) -> None:
        self.simulator = simulator
        self.rng = rng
        self.tracer = tracer
        self.spans = spans
        self.stream_prefix = stream_prefix
        if metrics is None:
            from repro.obs.metrics import get_global_registry

            metrics = get_global_registry()
        self._m_injected = metrics.counter("faults.injected")
        self.specs: List[FaultSpec] = []
        self._streams: List[Any] = []
        #: per-point injection counts (JSON-stable summary material)
        self.counts: Dict[str, int] = {}
        #: discrete fault events: oneshot firings and window edges
        self.events: List[Dict[str, Any]] = []
        self._phy_indices: List[int] = []
        self._device_indices: List[int] = []
        self._media: List["RadioMedium"] = []
        self._devices: Dict[str, "Device"] = {}
        self._wired: set = set()  # (spec_index, role) pairs already armed
        self._transport_injectors: Dict[str, _TransportInjector] = {}
        self._window_spans: Dict[int, Any] = {}

    # ------------------------------------------------------------- wiring

    def extend(self, plan: FaultPlan) -> None:
        """Add every spec of ``plan``; streams are index-derived."""
        for spec in plan:
            index = len(self.specs)
            self.specs.append(spec)
            self._streams.append(
                self.rng.stream(f"{self.stream_prefix}:{index}:{spec.point}")
            )
            point = get_point(spec.point)
            if point.scope == "medium":
                self._phy_indices.append(index)
                if spec.mode == "window":
                    self._schedule_window_marks(index)
            else:
                self._device_indices.append(index)
                for role, device in self._devices.items():
                    self._wire_device_spec(index, role, device)

    def attach_medium(self, medium: "RadioMedium") -> None:
        if medium not in self._media:
            self._media.append(medium)
            medium.add_frame_fault_filter(self._on_air_frame)

    def detach_medium(self, medium: "RadioMedium") -> None:
        if medium in self._media:
            self._media.remove(medium)
            medium.remove_frame_fault_filter(self._on_air_frame)

    def on_device_added(self, role: str, device: "Device") -> None:
        """World callback: arm device-scope specs for a new device."""
        self._devices[role] = device
        for index in self._device_indices:
            self._wire_device_spec(index, role, device)

    def _wire_device_spec(
        self, index: int, role: str, device: "Device"
    ) -> None:
        spec = self.specs[index]
        if spec.target is not None and spec.target != role:
            return
        if (index, role) in self._wired:
            return
        self._wired.add((index, role))
        layer = get_point(spec.point).layer
        if layer == "transport":
            injector = self._transport_injectors.get(role)
            if injector is None:
                injector = _TransportInjector(self, role)
                device.transport.fault_injector = injector
                self._transport_injectors[role] = injector
            injector.indices.append(index)
            if spec.mode == "window":
                self._schedule_window_marks(index, role=role)
            return
        now = self.simulator.now
        if spec.point == "controller.hard_reset":
            self.simulator.schedule(
                max(0.0, spec.at_s - now), self._fire_hard_reset, index, role
            )
        elif spec.point == "controller.lmp_hang":
            self.simulator.schedule(
                max(0.0, spec.start_s - now), self._open_lmp_hang, index, role
            )
        elif spec.point in ("host.bond_corrupt", "host.bond_loss",
                            "host.stack_restart"):
            self.simulator.schedule(
                max(0.0, spec.at_s - now), self._fire_host_fault, index, role
            )

    # ---------------------------------------------------------- recording

    def _record(
        self,
        point: str,
        message: str,
        target: str = "",
        event: bool = False,
        **detail: Any,
    ) -> None:
        self.counts[point] = self.counts.get(point, 0) + 1
        self._m_injected.inc()
        now = self.simulator.now
        self.tracer.emit(
            now,
            TRACE_SOURCE,
            "fault",
            message,
            point=point,
            **({"target": target} if target else {}),
        )
        if event:
            entry: Dict[str, Any] = {"t": now, "point": point, "info": message}
            if target:
                entry["target"] = target
            entry.update(detail)
            self.events.append(entry)

    def summary(self) -> Dict[str, Any]:
        """JSON-stable digest for ``TrialResult.detail``."""
        return {
            "counts": {point: self.counts[point] for point in sorted(self.counts)},
            "events": [dict(entry) for entry in self.events],
        }

    # ------------------------------------------------------- window marks

    def _schedule_window_marks(self, index: int, role: str = "") -> None:
        spec = self.specs[index]
        now = self.simulator.now
        if spec.end_s is not None and spec.end_s <= now:
            return  # the whole window is already in the past
        self.simulator.schedule(
            max(0.0, spec.start_s - now), self._open_window, index, role
        )
        if spec.end_s is not None:
            self.simulator.schedule(
                spec.end_s - now, self._close_window, index, role
            )

    def _open_window(self, index: int, role: str) -> None:
        spec = self.specs[index]
        until = "forever" if spec.end_s is None else f"until {spec.end_s:.3f}s"
        self._record(
            spec.point,
            f"{spec.point} window opens ({until})",
            target=role,
            event=True,
            edge="open",
        )
        if self.spans is not None and spec.end_s is not None:
            self._window_spans[(index, role)] = self.spans.begin(
                f"fault:{spec.point}",
                source=TRACE_SOURCE,
                **({"target": role} if role else {}),
            )

    def _close_window(self, index: int, role: str) -> None:
        spec = self.specs[index]
        self._record(
            spec.point,
            f"{spec.point} window closes",
            target=role,
            event=True,
            edge="close",
        )
        span = self._window_spans.pop((index, role), None)
        if span is not None and self.spans is not None:
            self.spans.finish(span)

    # ------------------------------------------------------------ phy hook

    def _on_air_frame(
        self,
        now: float,
        link: "PhysicalLink",
        sender: "RadioPeer",
        frame: "AirFrame",
    ) -> FrameFate:
        extra = 0.0
        payload = None
        for index in self._phy_indices:
            spec = self.specs[index]
            stream = self._streams[index]
            if not spec.fires(now, stream):
                continue
            point = spec.point
            if point == "phy.blackout":
                self._record(point, f"blackout swallows {frame.kind} frame")
                return FrameFate(action="drop")
            if point == "phy.frame_loss":
                self._record(point, f"{frame.kind} frame lost on the air")
                return FrameFate(action="drop")
            if point == "phy.bit_flip":
                flips = int(spec.params.get("flips", 1))
                raw = frame.payload
                if isinstance(raw, bytes):
                    payload = _flip_bits(raw, flips, stream)
                    self._record(point, f"{flips}-bit corruption in {frame.kind} frame")
                elif isinstance(raw, lmp.AclPayload):
                    payload = lmp.AclPayload(_flip_bits(raw.data, flips, stream))
                    self._record(point, f"{flips}-bit corruption in ACL payload")
                else:
                    # Structured LMP PDUs have no byte image to flip; a
                    # corrupted PDU fails the baseband CRC and is lost.
                    self._record(
                        point, f"corrupted {frame.kind} frame dropped (CRC)"
                    )
                    return FrameFate(action="drop")
            elif point == "phy.latency_jitter":
                jitter = float(spec.params.get("jitter_s", 0.001))
                delay = stream.uniform(0.0, jitter)
                extra += delay
                self._record(
                    point, f"+{delay * 1000:.3f}ms jitter on {frame.kind} frame"
                )
        if payload is not None:
            return FrameFate(action="mutate", payload=payload, extra_delay_s=extra)
        if extra > 0.0:
            return FrameFate(extra_delay_s=extra)
        return _DELIVER

    # ------------------------------------------------------ transport hook

    def _spec_directions(self, spec: FaultSpec) -> Tuple[Direction, ...]:
        return _DIRECTIONS[str(spec.params.get("direction", "both"))]

    def _on_transport_packet(
        self,
        injector: _TransportInjector,
        now: float,
        name: str,
        direction: Direction,
        raw: bytes,
    ) -> TransportFate:
        extra = 0.0
        mutated: Optional[bytes] = None
        for index in injector.indices:
            spec = self.specs[index]
            stream = self._streams[index]
            if direction not in self._spec_directions(spec):
                continue
            if not spec.fires(now, stream):
                continue
            point = spec.point
            data = raw if mutated is None else mutated
            if point == "transport.stall":
                if spec.end_s is None:
                    self._record(
                        point,
                        f"{name}: bus dead, {direction.value} packet lost",
                        target=injector.role,
                    )
                    return TransportFate(action="drop")
                extra = max(extra, spec.end_s - now)
                self._record(
                    point,
                    f"{name}: {direction.value} packet stalled "
                    f"until {spec.end_s:.3f}s",
                    target=injector.role,
                )
            elif point == "transport.truncate":
                keep = int(spec.params.get("keep_bytes", 2))
                mutated = data[: max(0, keep)]
                self._record(
                    point,
                    f"{name}: {direction.value} packet cut to "
                    f"{len(mutated)}/{len(raw)} bytes",
                    target=injector.role,
                )
            elif point == "transport.garble":
                flips = int(spec.params.get("flips", 8))
                mutated = _flip_bits(data, flips, stream)
                self._record(
                    point,
                    f"{name}: {flips} bits flipped in {direction.value} packet",
                    target=injector.role,
                )
        if mutated is not None:
            return TransportFate(
                action="mutate", raw=mutated, extra_delay_s=extra
            )
        if extra > 0.0:
            return TransportFate(extra_delay_s=extra)
        return _PASS

    # ------------------------------------------------- controller / host

    def _fire_hard_reset(self, index: int, role: str) -> None:
        spec = self.specs[index]
        device = self._devices.get(role)
        if device is None:
            return
        links = len(device.controller._links_by_handle)
        self._record(
            spec.point,
            f"{role}: controller firmware crash ({links} links torn down)",
            target=role,
            event=True,
        )
        device.controller.hard_reset()

    def _open_lmp_hang(self, index: int, role: str) -> None:
        spec = self.specs[index]
        device = self._devices.get(role)
        if device is None:
            return
        until = spec.end_s if spec.end_s is not None else math.inf
        device.controller.lmp_silence_until = until
        label = "forever" if until == math.inf else f"until {until:.3f}s"
        self._record(
            spec.point,
            f"{role}: LMP engine hangs ({label})",
            target=role,
            event=True,
            edge="open",
        )
        if self.spans is not None and spec.end_s is not None:
            self._window_spans[(index, role)] = self.spans.begin(
                "fault:controller.lmp_hang", source=TRACE_SOURCE, target=role
            )
        if spec.end_s is not None:
            self.simulator.schedule(
                spec.end_s - self.simulator.now, self._close_window, index, role
            )

    def _fire_host_fault(self, index: int, role: str) -> None:
        spec = self.specs[index]
        device = self._devices.get(role)
        if device is None:
            return
        stream = self._streams[index]
        if spec.point == "host.bond_corrupt":
            touched = device.host.security.corrupt_bonds(stream)
            message = f"{role}: bond storage corrupted ({touched} keys trashed)"
        elif spec.point == "host.bond_loss":
            dropped = device.host.security.drop_all_bonds()
            message = f"{role}: bond storage lost ({dropped} bonds forgotten)"
        else:  # host.stack_restart
            device.host.restart()
            message = f"{role}: host stack restarted (bonds reloaded)"
        self._record(spec.point, message, target=role, event=True)
